"""Setup shim for environments without the `wheel` package (offline).

`pip install -e . --no-build-isolation` needs `wheel` for PEP 660
editable builds; `python setup.py develop` works with plain setuptools.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
