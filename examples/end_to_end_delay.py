"""End-to-end delay composition (§4.1-4.2): E = g + Q + C + d.

Application tasks on the cell controller generate the message requests;
messages inherit release jitter from the sender tasks' response times
(preemptive fixed-priority processor), the network analysis consumes
that jitter, and delivery processing adds the final term.

Run:  python examples/end_to_end_delay.py
"""

from repro.apsched import TaskModel, end_to_end_analysis, sender_response_times
from repro.core import Task
from repro.scenarios import factory_cell_network

network = factory_cell_network()
phy = network.phy

# The cell controller's application tasks (processor time in bit-time
# units for a common clock: 1 ms = 1500 "bits" at 1.5 Mbit/s).
MS = 1500
cell_tasks = TaskModel(
    sender_tasks={
        # stream name -> the task (part) that enqueues its requests
        "axis-setpoint": Task(C=int(0.2 * MS), T=50 * MS, D=2 * MS,
                              name="snd-axis"),
        "alarm-poll": Task(C=int(0.4 * MS), T=80 * MS, D=4 * MS,
                           name="snd-alarm"),
        "cell-status": Task(C=int(1.0 * MS), T=100 * MS, D=20 * MS,
                            name="snd-status"),
    },
    scheduler="fp",
    model="combined",
)

print("sender-task response times (= message release jitter, §4.1):")
for stream, r in sender_response_times(cell_tasks).items():
    print(f"  {stream:<16} J = {r} bits ({phy.ms(r):.2f} ms)")

delivery = {
    "cell/axis-setpoint": int(0.1 * MS),
    "cell/alarm-poll": int(0.5 * MS),
    "cell/cell-status": int(1.0 * MS),
}

for policy in ("dm", "edf"):
    report = end_to_end_analysis(
        network, {"cell": cell_tasks}, policy=policy,
        delivery_delays=delivery,
    )
    print(f"\nend-to-end bounds, {policy.upper()} message dispatching "
          f"(Tcycle = {phy.ms(report.tcycle):.2f} ms):")
    print(f"{'stream':<26}{'g':>8}{'Q+C':>8}{'d':>8}{'E (ms)':>9}")
    for row in report.rows:
        if row.master != "cell":
            continue
        print(f"{row.master + '/' + row.stream:<26}"
              f"{phy.ms(row.g):>8.2f}{phy.ms(row.qc):>8.2f}"
              f"{phy.ms(row.d):>8.2f}{phy.ms(row.total):>9.2f}")
