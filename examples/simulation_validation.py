"""Validate the analytic bounds against the token-bus simulator.

Runs the factory cell for 4 simulated seconds per policy, with the MAC
implementing the §3.1 pseudocode bit-for-bit, and compares each stream's
worst *observed* response time against the analytic bound (eqs. 11/16/17).
Soundness means observed ≤ bound for every stream; the tightness column
shows how conservative each bound is under synchronous phasing.

Run:  python examples/simulation_validation.py
"""

from repro.profibus.timing import longest_cycle
from repro.scenarios import factory_cell_network
from repro.sim import TokenBusConfig, simulate_token_bus, validate_network
from repro.profibus import tcycle

network = factory_cell_network()
phy = network.phy
HORIZON = 4 * phy.baud_rate  # 4 seconds of bus time

for policy in ("fcfs", "dm", "edf"):
    report = validate_network(network, policy, horizon=HORIZON)
    print(f"\n=== {policy.upper()} ===  "
          f"(events={report.detail['events']}, "
          f"max TRR {report.detail['max_trr_observed']} "
          f"≤ Tcycle bound {report.detail['tcycle_bound']})")
    print(f"{'stream':<26}{'bound ms':>9}{'observed ms':>12}{'tightness':>10}")
    for row in report.rows:
        tight = f"{row.tightness:.2f}" if row.tightness else "-"
        print(f"{row.name:<26}{phy.ms(row.bound):>9.2f}"
              f"{phy.ms(row.observed):>12.2f}{tight:>10}")
    print(f"all bounds sound: {report.all_sound}")

# --- stress the Tcycle bound itself with saturating background lows ------
print("\n=== token-rotation stress (saturating low-priority traffic) ===")
lap = {m.name: longest_cycle(m, phy) for m in network.masters}
res = simulate_token_bus(
    network, HORIZON, config=TokenBusConfig(low_always_pending=lap)
)
bound = tcycle(network)
print(f"max observed TRR {res.max_trr} bits vs eq.(14) bound {bound} bits "
      f"-> {'sound' if res.max_trr <= bound else 'VIOLATED'}")
for name, ms_ in res.masters.items():
    print(f"  {name:<12} visits={ms_.token_visits:>5} "
          f"tth_overruns={ms_.tth_overruns:>5} max_overrun={ms_.max_overrun}")
