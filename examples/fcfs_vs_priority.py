"""FCFS vs priority dispatching: response times as deadlines tighten.

Isolates the queueing-policy effect on a single master (no multi-master
token dynamics): with n high-priority streams, FCFS gives every stream
the same worst case ``n·Tcycle`` (eq. 11), while DM/EDF grade response
times by urgency (eqs. 16-17).  The sweep shows the deadline range where
only the priority architectures survive.

Run:  python examples/fcfs_vs_priority.py
"""

from repro.profibus import Master, MessageStream, Network, PhyParameters, analyse, tcycle

phy = PhyParameters(baud_rate=500_000)
MS = 500

def build(tight_deadline_ms: float) -> Network:
    """5 streams; stream s0's deadline is the sweep variable."""
    streams = [
        MessageStream("s0", T=100 * MS, D=int(tight_deadline_ms * MS), C_bits=500)
    ] + [
        MessageStream(f"s{i}", T=(100 + 20 * i) * MS, D=(40 + 20 * i) * MS,
                      C_bits=500)
        for i in range(1, 5)
    ]
    return Network(masters=(Master(1, tuple(streams)),), phy=phy, ttr=1000)


net = build(30)
tc = tcycle(net)
print(f"single master, 5 streams, Tcycle = {tc} bits ({phy.ms(tc):.2f} ms)")
print(f"FCFS worst case for every stream: 5·Tcycle = {phy.ms(5 * tc):.2f} ms\n")

print(f"{'D(s0) ms':>9} | {'FCFS':>6} {'DM':>6} {'EDF':>6}   (schedulable?)")
for d_ms in (40, 30, 25, 20, 15, 12, 10, 8, 6, 5, 4, 3):
    net = build(d_ms)
    verdicts = []
    for policy in ("fcfs", "dm", "edf"):
        verdicts.append("yes" if analyse(net, policy).schedulable else "no")
    print(f"{d_ms:>9} | {verdicts[0]:>6} {verdicts[1]:>6} {verdicts[2]:>6}")

print("\nper-stream detail at D(s0) = 15 ms:")
net = build(15)
for policy in ("fcfs", "dm", "edf"):
    res = analyse(net, policy)
    rs = ", ".join(
        f"{sr.stream.name}={phy.ms(sr.R):.1f}ms" for sr in res.per_stream
    )
    print(f"  {policy:<5} {rs}")
