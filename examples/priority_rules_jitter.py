"""Priority rules under release jitter: when DM stops being optimal.

Messages inherit release jitter from their sending tasks (§4.1).  Once
jitter is in play, ordering the AP queue by plain relative deadline (DM)
is no longer optimal — a stream that loses most of its deadline to
jitter is effectively more urgent than its D suggests.  This example
shows a concrete network where DM misses a deadline while the
(D−J)-monotonic rule and Audsley's optimal priority assignment schedule
everything (library extensions; see DESIGN.md X6).

Run:  python examples/priority_rules_jitter.py
"""

from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    djm_analysis,
    dm_analysis,
    edf_analysis,
    opa_analysis,
    tcycle,
)

phy = PhyParameters(baud_rate=500_000)

# Four streams on one master.  s2/s3 inherit large jitter from slow
# sender tasks; their deadlines look lax (8 ms) but most of that budget
# is already gone by the time the request is queued.
network = Network(
    masters=(Master(1, (
        MessageStream("s0", T=59_000, D=5_000, J=0, C_bits=500),
        MessageStream("s1", T=31_000, D=8_000, J=0, C_bits=500),
        MessageStream("s2", T=52_000, D=8_000, J=4_000, C_bits=500),
        MessageStream("s3", T=41_000, D=8_000, J=5_000, C_bits=500),
    )),),
    phy=phy,
    ttr=500,
)

print(f"Tcycle = {tcycle(network)} bits "
      f"({phy.ms(tcycle(network)):.2f} ms)\n")

analyses = {
    "DM (paper §4)": dm_analysis(network),
    "(D−J)-monotonic": djm_analysis(network),
    "Audsley OPA": opa_analysis(network),
    "EDF (paper §4)": edf_analysis(network),
}

header = f"{'stream':<8}{'D':>7}{'J':>7}" + "".join(
    f"{name:>18}" for name in analyses
)
print(header)
print("-" * len(header))
for idx, s in enumerate(network.masters[0].high_streams):
    row = f"{s.name:<8}{s.D:>7}{s.J:>7}"
    for res in analyses.values():
        sr = res.per_stream[idx]
        cell = "miss" if sr.R is None or not sr.schedulable else str(sr.R)
        row += f"{cell:>18}"
    print(row)

print()
for name, res in analyses.items():
    print(f"{name:<18} schedulable: {res.schedulable}")

print(
    "\nThe high-jitter stream s3 is unschedulable under DM (its lax-"
    "looking 8 ms deadline hides 5 ms of jitter) but schedulable once "
    "priorities account for D−J.  Audsley's OPA finds a feasible order "
    "whenever any fixed-priority order exists."
)
