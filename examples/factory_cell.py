"""Factory-cell walkthrough: the paper's §5 claim on a realistic network.

A 4-master cell (controller, PLC, robot, supervisor) at 1.5 Mbit/s where
the stock FCFS queue misses the axis set-point deadline while the §4
AP-level priority queues (DM and EDF) meet every deadline — and allow a
~4x larger TTR, leaving real bandwidth for background traffic.

Run:  python examples/factory_cell.py
"""

from repro.profibus import analyse, token_cycle_report, ttr_advantage
from repro.scenarios import FACTORY_CELL_TTR, factory_cell_network

network = factory_cell_network()
phy = network.phy

print(f"factory cell @ {phy.baud_rate // 1000} kbit/s, "
      f"TTR = {FACTORY_CELL_TTR} bits ({phy.ms(FACTORY_CELL_TTR):.2f} ms)")

rep = token_cycle_report(network)
print(f"Tdel = {rep.tdel_aggregate} bits, "
      f"Tcycle = {rep.tcycle_aggregate} bits "
      f"({phy.ms(rep.tcycle_aggregate):.2f} ms)\n")

# ---- per-stream response times, the three policies side by side --------
results = {p: analyse(network, p) for p in ("fcfs", "dm", "edf")}
streams = [(sr.master, sr.stream) for sr in results["fcfs"].per_stream]

header = f"{'stream':<24}{'D (ms)':>8}" + "".join(
    f"{p.upper() + ' R(ms)':>12}" for p in results
)
print(header)
print("-" * len(header))
for master, stream in streams:
    row = f"{master + '/' + stream.name:<24}{phy.ms(stream.D):>8.1f}"
    for p, res in results.items():
        sr = res.response(master, stream.name)
        mark = "" if sr.schedulable else "*"
        row += f"{phy.ms(sr.R):>11.1f}{mark or ' '}"
    print(row)
print("(* = deadline miss)\n")

for p, res in results.items():
    print(f"{p.upper():<5} schedulable: {res.schedulable}")

# ---- the TTR angle: how much rotation budget each policy leaves ---------
adv = ttr_advantage(network)
print("\nmaximum feasible TTR (more = more low-priority bandwidth):")
for p, v in adv.items():
    print(f"  {p:<5} " + (f"{v} bits ({phy.ms(v):.2f} ms)" if v else "infeasible"))
if adv["fcfs"] and adv["dm"]:
    print(f"\nDM allows a {adv['dm'] / adv['fcfs']:.1f}x larger TTR than FCFS "
          f"on this cell — the paper's §5 conclusion, quantified.")
