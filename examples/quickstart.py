"""Quickstart: define a PROFIBUS network, bound its token cycle, and
check message schedulability under the stock FCFS queue and the
paper's AP-level priority architectures.

Run:  python examples/quickstart.py
"""

from repro.profibus import (
    Master,
    MessageCycleSpec,
    MessageStream,
    Network,
    PhyParameters,
    Slave,
    analyse,
    max_feasible_ttr,
    token_cycle_report,
)

# --- 1. describe the network (times in bit times; 500 kbit/s here) ------
phy = PhyParameters(baud_rate=500_000, max_retry=1)
MS = 500  # bit times per millisecond at 500 kbit/s

controller = Master(
    address=1,
    name="controller",
    streams=(
        # poll a pressure sensor every 50 ms, answer within 20 ms
        MessageStream("pressure", T=50 * MS, D=20 * MS,
                      spec=MessageCycleSpec(req_payload=0, resp_payload=8)),
        # update a valve every 80 ms, 30 ms deadline
        MessageStream("valve", T=80 * MS, D=30 * MS,
                      spec=MessageCycleSpec(req_payload=4, short_ack=True)),
        # slow status exchange
        MessageStream("status", T=200 * MS, D=200 * MS,
                      spec=MessageCycleSpec(req_payload=16, resp_payload=16)),
    ),
)
logger = Master(
    address=2,
    name="logger",
    streams=(
        MessageStream("trend", T=100 * MS, D=100 * MS,
                      spec=MessageCycleSpec(req_payload=0, resp_payload=32)),
        # background bulk upload — low priority, long frames
        MessageStream("bulk", T=500 * MS, high_priority=False,
                      spec=MessageCycleSpec(req_payload=64, resp_payload=8)),
    ),
)
network = Network(
    masters=(controller, logger),
    slaves=(Slave(10), Slave(11), Slave(12)),
    phy=phy,
    ttr=1000,  # target token rotation time, bit times (2 ms)
)

# --- 2. token-cycle bound: eqs. (13)-(14) --------------------------------
report = token_cycle_report(network)
print("token cycle breakdown")
print(f"  ring latency : {report.ring_latency} bits")
print(f"  Tdel (eq.13) : {report.tdel_aggregate} bits")
print(f"  Tcycle(eq.14): {report.tcycle_aggregate} bits "
      f"= {phy.ms(report.tcycle_aggregate):.2f} ms")

# --- 3. message response times under the three policies ------------------
for policy in ("fcfs", "dm", "edf"):
    result = analyse(network, policy)
    print(f"\n{policy.upper()} (eq. {'11' if policy == 'fcfs' else '16' if policy == 'dm' else '17'}):"
          f" schedulable={result.schedulable}")
    for sr in result.per_stream:
        print(f"  {sr.master}/{sr.stream.name:<10} R={phy.ms(sr.R):6.2f} ms  "
              f"D={phy.ms(sr.stream.D):6.2f} ms  "
              f"{'ok' if sr.schedulable else 'MISS'}")

# --- 4. how large can TTR be per policy (eq. 15 + generalisation)? -------
print("\nmaximum feasible TTR per policy:")
for policy in ("fcfs", "dm", "edf"):
    best = max_feasible_ttr(network, policy)
    print(f"  {policy:<5} "
          + (f"{best} bits ({phy.ms(best):.2f} ms)" if best else "infeasible"))
