#!/usr/bin/env python
"""CI smoke driver for the trace monitoring mode.

End-to-end over the real CLI and transport layers, for every seeded
scenario × policy pair:

* run the simulator with a tracer attached and collect the offline
  ``validate_network`` report (the reference),
* export the trace through ``repro-cli simulate --export-trace`` (the
  same seeded run, re-executed by the CLI process),
* ingest the file with ``repro-cli monitor --json`` and compare the
  monitoring rows against the offline rows **byte-for-byte** (the
  serialised row documents must be equal as JSON bytes),
* repeat through the ``monitor`` op of the ``repro.api`` facade
  in-process, which must agree byte-for-byte too,
* finally check the degradation path: a deliberately truncated
  recorder must yield no positively-``sound`` row and a non-zero
  ``repro-cli monitor`` exit code.

Exits nonzero with a message on the first violated expectation.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import api
from repro.monitor import monitor_trace, trace_doc, trace_from_doc, validation_row_doc
from repro.scenarios import (
    factory_cell_network,
    paper_illustration_network,
    single_master_network,
)
from repro.sim import BusTrace, TokenBusConfig, validate_network
from repro.sim.validate import _POLICY_TO_SIM

HORIZON_MS = 200.0

SCENARIOS = {
    "factory-cell": factory_cell_network,
    "paper-illustration": lambda: paper_illustration_network().with_ttr(3000),
    "single-master": single_master_network,
}


def fail(message):
    print(f"monitor smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def row_bytes(row_docs):
    return json.dumps(row_docs, sort_keys=True).encode()


def cli(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, **kwargs,
    )


def check_pair(workdir, scenario, policy):
    net = SCENARIOS[scenario]()
    horizon = int(HORIZON_MS * net.phy.baud_rate / 1000)

    # Offline reference: simulate with a tracer in this process.
    tracer = BusTrace(max_events=1_000_000)
    ref = validate_network(
        net, policy, horizon,
        config=TokenBusConfig(policy=_POLICY_TO_SIM[policy], tracer=tracer),
    )
    ref_rows = row_bytes([validation_row_doc(r) for r in ref.rows])

    # The same seeded run exported by the CLI (determinism is part of
    # the contract: the CLI's run must equal this process's run).
    trace_path = Path(workdir) / f"{scenario}-{policy}.jsonl"
    out = cli(["simulate", "--scenario", scenario, "--policy", policy,
               "--horizon-ms", str(HORIZON_MS),
               "--export-trace", str(trace_path)])
    if out.returncode not in (0, 1):  # 1 = a legitimately unsound policy
        fail(f"simulate --export-trace failed for {scenario}/{policy}: "
             f"{out.stdout}{out.stderr}")

    # Ingest through the CLI; verdicts must agree byte-for-byte.
    out = cli(["monitor", "--scenario", scenario, "--policy", policy,
               "--trace", str(trace_path), "--json"])
    if out.returncode not in (0, 1):
        fail(f"monitor exited {out.returncode} for {scenario}/{policy}: "
             f"{out.stderr}")
    doc = json.loads(out.stdout)
    if row_bytes(doc["rows"]) != ref_rows:
        fail(f"CLI monitoring rows differ from offline validation for "
             f"{scenario}/{policy}")
    clear = (all(r["verdict"] == "sound" for r in doc["rows"])
             and all(m["verdict"] == "sound"
                     for m in doc["masters"].values()))
    if (out.returncode == 0) != clear:
        fail(f"monitor exit code {out.returncode} disagrees with the "
             f"verdicts for {scenario}/{policy}")

    # Same question through the api facade, in-process.
    result = api.monitor_check(net, trace_doc(tracer, horizon=horizon),
                               policy=policy)
    api_rows = row_bytes(result.payload["report"]["rows"])
    if api_rows != ref_rows:
        fail(f"api monitor rows differ from offline validation for "
             f"{scenario}/{policy}")
    print(f"monitor smoke: {scenario}/{policy}: "
          f"{len(ref.rows)} rows byte-identical across "
          f"offline/CLI/api paths")


def check_degradation(workdir):
    net = factory_cell_network()
    horizon = int(HORIZON_MS * net.phy.baud_rate / 1000)
    tracer = BusTrace(max_events=300)
    validate_network(
        net, "dm", horizon,
        config=TokenBusConfig(policy=_POLICY_TO_SIM["dm"], tracer=tracer),
    )
    if not tracer.truncated:
        fail("expected the capped recorder to truncate")
    report = monitor_trace(
        net, trace_from_doc(trace_doc(tracer, horizon=horizon)), "dm",
    )
    if any(r.verdict == "sound" for r in report.rows):
        fail("truncated trace produced a positively-sound row")
    trace_path = Path(workdir) / "truncated.jsonl"
    from repro.monitor import write_trace_jsonl

    write_trace_jsonl(tracer, trace_path, horizon=horizon)
    out = cli(["monitor", "--scenario", "factory-cell", "--policy", "dm",
               "--trace", str(trace_path)])
    if out.returncode == 0:
        fail("monitor exited 0 over a truncated trace")
    if "degraded" not in out.stdout:
        fail("monitor output over a truncated trace never says 'degraded'")
    print("monitor smoke: truncated trace degrades verdicts and exit code")


def main():
    with tempfile.TemporaryDirectory() as workdir:
        for scenario in sorted(SCENARIOS):
            for policy in ("fcfs", "dm", "edf"):
                check_pair(workdir, scenario, policy)
        check_degradation(workdir)
    print("monitor smoke: OK")


if __name__ == "__main__":
    main()
