#!/usr/bin/env python
"""CI smoke driver for the analysis service.

Launches the real daemon (``repro-cli serve --port 0``) as a
subprocess, parses the kernel-assigned port off its banner line, then
drives **four concurrent clients** at it:

* all four send the same factory-cell analysis request (one warm-up
  first, so the duplicates deterministically hit the shared cache),
* one also sends a mutated variant (TTR override — a different value
  key, so it must miss),
* every verdict is compared **bit-exactly** against the offline
  ``repro.api`` path computed in this process,
* the final ``stats`` document must show nonzero cache hits and one
  session per client,
* a ``shutdown`` request must stop the daemon cleanly (exit code 0).

Exits nonzero with a message on the first violated expectation.
"""

import json
import subprocess
import sys
import threading

from repro import api
from repro.profibus import network_to_dict
from repro.scenarios import factory_cell_network
from repro.service import ServiceClient

N_CLIENTS = 4


def fail(message):
    print(f"service smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    base = api.AnalysisRequest(
        op="analyse", network=network_to_dict(factory_cell_network())
    ).to_dict()
    variant = dict(base, ttr=50_000)
    offline_base = api.execute_request_doc(base)
    offline_variant = api.execute_request_doc(variant)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        if not banner.startswith("listening on "):
            fail(f"unexpected server banner {banner!r}")
        host, _, port = banner.removeprefix("listening on ").rpartition(":")
        address = (host, int(port))
        print(f"service smoke: daemon up at {host}:{port}")

        with ServiceClient(*address) as warmup:
            reply = warmup.analyse(base)
            if reply.cached:
                fail("warm-up request cannot be a cache hit")
            if reply.result != offline_base:
                fail("warm-up verdict differs from offline repro.api")

        replies = {}
        errors = []

        def drive(name, docs):
            try:
                with ServiceClient(*address) as client:
                    client.ping()
                    replies[name] = [client.analyse(d) for d in docs]
            except Exception as exc:  # noqa: BLE001 — reported below
                errors.append(f"{name}: {exc}")

        jobs = [(f"client-{i}", [base]) for i in range(N_CLIENTS - 1)]
        jobs.append(("client-variant", [base, variant]))
        threads = [threading.Thread(target=drive, args=job) for job in jobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        if errors:
            fail("; ".join(errors))

        for name, _ in jobs:
            dup = replies[name][0]
            if dup.result != offline_base:
                fail(f"{name}: duplicate verdict differs from offline path")
            if not dup.cached:
                fail(f"{name}: duplicate request missed the shared cache")
        mutated = replies["client-variant"][1]
        if mutated.result != offline_variant:
            fail("variant verdict differs from offline path")
        if mutated.cached:
            fail("mutated variant must be a cache miss")

        with ServiceClient(*address) as monitor:
            stats = monitor.stats()
            cache = stats["cache"]
            if cache["hits"] < N_CLIENTS:
                fail(f"expected >= {N_CLIENTS} cache hits, got {cache!r}")
            if cache["misses"] != 2:
                fail(f"expected exactly 2 misses (base + variant): {cache!r}")
            sessions = stats["sessions"]
            if sessions["total_clients"] != N_CLIENTS + 2:  # + warmup, monitor
                fail(f"expected {N_CLIENTS + 2} sessions: {sessions!r}")
            if any(s["errors"] for s in sessions["sessions"].values()):
                fail(f"a session recorded errors: {sessions!r}")
            monitor.shutdown()

        if proc.wait(timeout=30) != 0:
            fail(f"daemon exited with {proc.returncode}")
        print("service smoke: OK —",
              json.dumps({"cache": cache, "clients": N_CLIENTS}))
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10)


if __name__ == "__main__":
    main()
