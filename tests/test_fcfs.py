"""Unit tests for the FCFS message analysis (eqs. (11), (12), (15))."""

import pytest

from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    fcfs_analysis,
    fcfs_max_feasible_ttr,
    tcycle,
    tdel,
)


def _net(ttr=10_000, d1=50_000, d2=80_000):
    phy = PhyParameters()
    m1 = Master(1, (
        MessageStream("a", T=100_000, D=d1, C_bits=500),
        MessageStream("b", T=120_000, D=d2, C_bits=700),
    ))
    m2 = Master(2, (MessageStream("c", T=90_000, D=60_000, C_bits=600),))
    return Network(masters=(m1, m2), phy=phy, ttr=ttr)


class TestEq11:
    def test_r_is_nh_times_tcycle(self):
        net = _net()
        tc = tcycle(net)
        res = fcfs_analysis(net)
        assert res.response("M1", "a").R == 2 * tc
        assert res.response("M1", "b").R == 2 * tc
        assert res.response("M2", "c").R == 1 * tc

    def test_q_subtracts_own_cycle(self):
        net = _net()
        tc = tcycle(net)
        res = fcfs_analysis(net)
        assert res.response("M1", "a").Q == 2 * tc - 500
        assert res.response("M2", "c").Q == tc - 600

    def test_low_priority_not_analysed(self):
        phy = PhyParameters()
        m = Master(1, (
            MessageStream("h", T=100_000, C_bits=400),
            MessageStream("l", T=100_000, C_bits=400, high_priority=False),
        ))
        net = Network(masters=(m,), phy=phy, ttr=5_000)
        res = fcfs_analysis(net)
        assert [sr.stream.name for sr in res.per_stream] == ["h"]


class TestEq12:
    def test_schedulable_iff_deadlines_cover_r(self):
        ok = _net(ttr=10_000, d1=50_000)
        assert fcfs_analysis(ok).schedulable
        tight = _net(ttr=10_000, d1=10_000)
        assert not fcfs_analysis(tight).schedulable

    def test_boundary_equality_is_schedulable(self):
        net = _net(ttr=10_000)
        tc = tcycle(net)
        boundary = _net(ttr=10_000, d1=2 * tc)
        assert fcfs_analysis(boundary).schedulable


class TestEq15:
    def test_closed_form(self):
        net = _net()
        # TTR <= min(D/nh) - Tdel = min(50000/2, 80000/2, 60000/1) - Tdel
        expected = 25_000 - tdel(net)
        assert fcfs_max_feasible_ttr(net) == expected

    def test_setting_at_bound_is_schedulable(self):
        net = _net()
        best = fcfs_max_feasible_ttr(net)
        assert fcfs_analysis(net.with_ttr(best)).schedulable
        assert not fcfs_analysis(net.with_ttr(best + 1)).schedulable

    def test_infeasible_returns_none(self):
        net = _net(d1=1_000)  # deadline below Tdel: hopeless
        assert fcfs_max_feasible_ttr(net) is None

    def test_refined_allows_larger_ttr(self):
        phy = PhyParameters()
        # two masters with long low cycles: refined Tdel strictly smaller
        m1 = Master(1, (
            MessageStream("h1", T=100_000, D=40_000, C_bits=300),
            MessageStream("l1", T=100_000, C_bits=3_000, high_priority=False),
        ))
        m2 = Master(2, (
            MessageStream("h2", T=100_000, D=40_000, C_bits=300),
            MessageStream("l2", T=100_000, C_bits=3_000, high_priority=False),
        ))
        net = Network(masters=(m1, m2), phy=phy)
        agg = fcfs_max_feasible_ttr(net, refined=False)
        ref = fcfs_max_feasible_ttr(net, refined=True)
        assert ref > agg
