"""Tests for bus event tracing and the ASCII timeline."""

import pytest

from repro.sim import (
    CYCLE_END,
    CYCLE_START,
    RELEASE,
    TOKEN_ARRIVAL,
    BusEvent,
    BusTrace,
    TokenBusConfig,
    render_timeline,
    simulate_token_bus,
)


def _traced_run(net, horizon=200_000, policy="stock-fcfs"):
    trace = BusTrace()
    cfg = TokenBusConfig(policy=policy, tracer=trace)
    result = simulate_token_bus(net, horizon, config=cfg)
    return trace, result


class TestTraceRecording:
    def test_records_token_arrivals(self, single_master):
        trace, result = _traced_run(single_master)
        arrivals = trace.token_arrivals("M1")
        assert len(arrivals) == result.masters["M1"].token_visits

    def test_trr_values_match_stats(self, single_master):
        trace, result = _traced_run(single_master)
        trrs = [e.value for e in trace.token_arrivals("M1")][1:]  # skip first
        assert max(trrs) == result.masters["M1"].max_trr

    def test_cycles_paired(self, single_master):
        trace, result = _traced_run(single_master)
        cycles = trace.cycles("M1")
        sent = result.masters["M1"].high_sent + result.masters["M1"].low_sent
        # completed cycles traced as start/end pairs (an in-flight cycle
        # at the horizon has no end event)
        assert sent <= len(cycles) + 1
        for start, end in cycles:
            assert end.time - start.time == start.value

    def test_stream_names_recorded(self, single_master):
        trace, _ = _traced_run(single_master)
        names = {e.stream for e in trace.of_kind(CYCLE_START)}
        assert "s0" in names

    def test_bounded_memory(self, single_master):
        trace = BusTrace(max_events=10)
        cfg = TokenBusConfig(tracer=trace)
        simulate_token_bus(single_master, 500_000, config=cfg)
        assert len(trace.events) == 10
        assert trace.dropped > 0

    def test_bus_utilisation_in_unit_interval(self, single_master):
        trace, _ = _traced_run(single_master)
        assert 0.0 <= trace.bus_utilisation() <= 1.0

    def test_events_time_ordered(self, factory_cell):
        trace, _ = _traced_run(factory_cell, horizon=300_000)
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_records_releases(self, single_master):
        trace, result = _traced_run(single_master)
        releases = trace.releases("M1")
        assert releases  # the stream released work inside the horizon
        total = sum(s.released for s in result.streams.values())
        assert len(releases) == total


class TestCyclePairing:
    """Regression suite for the per-master ``cycles()`` pairing (a single
    shared open slot used to mispair interleaved multi-master traces)."""

    @staticmethod
    def _interleaved_trace():
        # M1's cycle [0, 10] and M2's cycle [5, 15] overlap in time:
        # a PROFIBUS bus would never interleave transmissions, but a
        # merged foreign log (or per-segment clocks) can — and the old
        # single-slot pairing corrupted even well-formed queries over it.
        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=CYCLE_START, master="M1",
                              stream="a", value=10))
        trace.record(BusEvent(time=5, kind=CYCLE_START, master="M2",
                              stream="b", value=10))
        trace.record(BusEvent(time=10, kind=CYCLE_END, master="M1",
                              stream="a", value=10))
        trace.record(BusEvent(time=15, kind=CYCLE_END, master="M2",
                              stream="b", value=10))
        return trace

    def test_interleaved_two_master_pairing(self):
        # Pre-fix: M2's start overwrote M1's in the shared slot, M1's
        # end then paired with M2's start — one bogus (M2@5, end@10)
        # cycle and M2's real cycle lost.  Post-fix: two cycles, each
        # start/end on the same master, durations 10 each.
        cycles = self._interleaved_trace().cycles()
        assert len(cycles) == 2
        for start, end in cycles:
            assert start.master == end.master
            assert end.time - start.time == 10
        assert {s.master for s, _ in cycles} == {"M1", "M2"}

    def test_interleaved_filter_by_master(self):
        trace = self._interleaved_trace()
        for m in ("M1", "M2"):
            cycles = trace.cycles(m)
            assert len(cycles) == 1
            assert cycles[0][0].master == m

    def test_unfinished_cycle_does_not_steal_later_end(self):
        # A start with no end (cut off by the horizon/recorder) must
        # stay unpaired; the next cycle's end must pair with its own
        # start, not the stale one.
        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=CYCLE_START, master="M1",
                              stream="a", value=100))
        trace.record(BusEvent(time=200, kind=CYCLE_START, master="M1",
                              stream="a", value=10))
        trace.record(BusEvent(time=210, kind=CYCLE_END, master="M1",
                              stream="a", value=10))
        cycles = trace.cycles()
        assert len(cycles) == 1
        assert (cycles[0][0].time, cycles[0][1].time) == (200, 210)

    def test_simulated_multi_master_pairs_match_durations(self, factory_cell):
        trace, _ = _traced_run(factory_cell, horizon=200_000)
        cycles = trace.cycles()
        assert cycles
        for start, end in cycles:
            assert start.master == end.master
            assert end.time - start.time == start.value

    def test_bus_utilisation_inherits_fix(self, factory_cell):
        # Per-master pairing means utilisation sums every master's
        # cycles; the single-slot version lost/mispaired overlapping
        # ones and could only undercount on multi-master traces.
        trace, _ = _traced_run(factory_cell, horizon=200_000)
        per_master_busy = sum(
            end.time - start.time
            for m in {e.master for e in trace.events}
            for start, end in trace.cycles(m)
        )
        span = trace.events[-1].time - trace.events[0].time
        assert trace.bus_utilisation() == per_master_busy / span
        assert 0.0 < trace.bus_utilisation() <= 1.0


class TestTimeline:
    def test_render_contains_masters_and_tokens(self, factory_cell):
        trace, _ = _traced_run(factory_cell, horizon=100_000)
        art = render_timeline(trace, 0, 60_000, width=80)
        for m in factory_cell.masters:
            assert m.name in art
        assert "|" in art
        assert "#" in art  # high-priority cycles visible

    def test_empty_window(self, single_master):
        trace, _ = _traced_run(single_master, horizon=50_000)
        assert render_timeline(trace, 10**9, 10**9 + 5) == "(empty trace window)"

    def test_low_priority_marker(self):
        # build a trace manually with a low-priority cycle
        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=TOKEN_ARRIVAL, master="M1"))
        trace.record(BusEvent(time=10, kind=CYCLE_START, master="M1",
                              stream="bulk", high_priority=False, value=50))
        trace.record(BusEvent(time=60, kind=CYCLE_END, master="M1",
                              stream="bulk", high_priority=False, value=50))
        art = render_timeline(trace, 0, 100, width=50)
        assert "." in art

    def test_straddling_cycle_rendered(self):
        # Cycle [0, 100] vs window [50, 80]: the window filter used to
        # drop the CYCLE_START and lose the cycle entirely; now the
        # in-window part renders, clamped to the window edges.
        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=CYCLE_START, master="M1",
                              stream="a", value=100))
        trace.record(BusEvent(time=100, kind=CYCLE_END, master="M1",
                              stream="a", value=100))
        art = render_timeline(trace, 50, 80, width=30)
        assert art != "(empty trace window)"
        assert "#" in art
        assert "M1" in art

    def test_cycle_spanning_whole_window_rendered(self):
        # Both edges outside the window — no event passes the filter at
        # all, but the bus was busy the whole time.
        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=CYCLE_START, master="M1",
                              stream="a", high_priority=False, value=1000))
        trace.record(BusEvent(time=1000, kind=CYCLE_END, master="M1",
                              stream="a", high_priority=False, value=1000))
        art = render_timeline(trace, 400, 600, width=20)
        row = [l for l in art.splitlines() if l.startswith("M1")][0]
        assert set(row.split()[1]) == {"."}  # fully filled with low marks

    def test_straddle_clamp_stays_inside_window(self):
        # The straddling cycle must not paint columns before the window
        # start: column 0 belongs to t=start, and a cycle entering from
        # the left starts painting there, not at a negative column.
        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=CYCLE_START, master="M1",
                              stream="a", value=60))
        trace.record(BusEvent(time=60, kind=CYCLE_END, master="M1",
                              stream="a", value=60))
        trace.record(BusEvent(time=90, kind=TOKEN_ARRIVAL, master="M1"))
        art = render_timeline(trace, 50, 100, width=10)
        row = [l for l in art.splitlines() if l.startswith("M1")][0]
        cells = row[len("M1 "):]
        assert cells[0] == "#"  # clamped to the window start
        assert "|" in cells

    def test_truncated_trace_annotated(self, single_master):
        trace = BusTrace(max_events=50)
        cfg = TokenBusConfig(tracer=trace)
        simulate_token_bus(single_master, 500_000, config=cfg)
        assert trace.truncated
        art = render_timeline(trace, 0, 50_000, width=60)
        assert f"trace truncated: {trace.dropped} events dropped" in art

    def test_untruncated_trace_not_annotated(self, single_master):
        trace, _ = _traced_run(single_master, horizon=50_000)
        art = render_timeline(trace, 0, 50_000, width=60)
        assert "truncated" not in art
