"""Tests for bus event tracing and the ASCII timeline."""

import pytest

from repro.sim import (
    CYCLE_END,
    CYCLE_START,
    TOKEN_ARRIVAL,
    BusEvent,
    BusTrace,
    TokenBusConfig,
    render_timeline,
    simulate_token_bus,
)


def _traced_run(net, horizon=200_000, policy="stock-fcfs"):
    trace = BusTrace()
    cfg = TokenBusConfig(policy=policy, tracer=trace)
    result = simulate_token_bus(net, horizon, config=cfg)
    return trace, result


class TestTraceRecording:
    def test_records_token_arrivals(self, single_master):
        trace, result = _traced_run(single_master)
        arrivals = trace.token_arrivals("M1")
        assert len(arrivals) == result.masters["M1"].token_visits

    def test_trr_values_match_stats(self, single_master):
        trace, result = _traced_run(single_master)
        trrs = [e.value for e in trace.token_arrivals("M1")][1:]  # skip first
        assert max(trrs) == result.masters["M1"].max_trr

    def test_cycles_paired(self, single_master):
        trace, result = _traced_run(single_master)
        cycles = trace.cycles("M1")
        sent = result.masters["M1"].high_sent + result.masters["M1"].low_sent
        # completed cycles traced as start/end pairs (an in-flight cycle
        # at the horizon has no end event)
        assert sent <= len(cycles) + 1
        for start, end in cycles:
            assert end.time - start.time == start.value

    def test_stream_names_recorded(self, single_master):
        trace, _ = _traced_run(single_master)
        names = {e.stream for e in trace.of_kind(CYCLE_START)}
        assert "s0" in names

    def test_bounded_memory(self, single_master):
        trace = BusTrace(max_events=10)
        cfg = TokenBusConfig(tracer=trace)
        simulate_token_bus(single_master, 500_000, config=cfg)
        assert len(trace.events) == 10
        assert trace.dropped > 0

    def test_bus_utilisation_in_unit_interval(self, single_master):
        trace, _ = _traced_run(single_master)
        assert 0.0 <= trace.bus_utilisation() <= 1.0

    def test_events_time_ordered(self, factory_cell):
        trace, _ = _traced_run(factory_cell, horizon=300_000)
        times = [e.time for e in trace.events]
        assert times == sorted(times)


class TestTimeline:
    def test_render_contains_masters_and_tokens(self, factory_cell):
        trace, _ = _traced_run(factory_cell, horizon=100_000)
        art = render_timeline(trace, 0, 60_000, width=80)
        for m in factory_cell.masters:
            assert m.name in art
        assert "|" in art
        assert "#" in art  # high-priority cycles visible

    def test_empty_window(self, single_master):
        trace, _ = _traced_run(single_master, horizon=50_000)
        assert render_timeline(trace, 10**9, 10**9 + 5) == "(empty trace window)"

    def test_low_priority_marker(self):
        # build a trace manually with a low-priority cycle
        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=TOKEN_ARRIVAL, master="M1"))
        trace.record(BusEvent(time=10, kind=CYCLE_START, master="M1",
                              stream="bulk", high_priority=False, value=50))
        trace.record(BusEvent(time=60, kind=CYCLE_END, master="M1",
                              stream="bulk", high_priority=False, value=50))
        art = render_timeline(trace, 0, 100, width=50)
        assert "." in art
