"""Unit tests for busy-period and demand-horizon computations."""

import pytest

from repro.core import (
    Task,
    TaskSet,
    demand_horizon,
    make_taskset,
    synchronous_busy_period,
)


class TestSynchronousBusyPeriod:
    def test_single_task(self):
        assert synchronous_busy_period(make_taskset([(2, 10)])) == 2

    def test_classic_example(self):
        # C=(1,2,3), T=(4,6,10): L solves L = ceil(L/4)+2ceil(L/6)+3ceil(L/10)
        # L=6: 2+2·1+3·1=7; L=7: 2+4+3=9; L=9: 3+4+3=10; L=10: 3+4+3=10 ✓
        assert synchronous_busy_period(make_taskset([(1, 4), (2, 6), (3, 10)])) == 10

    def test_full_utilization_converges(self):
        # U = 1 harmonic: busy period = hyperperiod
        ts = make_taskset([(1, 2), (1, 4), (2, 8)])
        assert synchronous_busy_period(ts) == 8

    def test_blocking_seed_extends(self):
        ts = make_taskset([(1, 4), (2, 6)])
        plain = synchronous_busy_period(ts)
        seeded = synchronous_busy_period(ts, blocking=3)
        assert seeded > plain

    def test_jitter_extends(self):
        ts = TaskSet([Task(C=1, T=4, J=3, name="a"), Task(C=2, T=6, name="b")])
        assert synchronous_busy_period(ts, include_jitter=True) >= (
            synchronous_busy_period(ts, include_jitter=False)
        )

    def test_overutilized_rejected(self):
        with pytest.raises(ValueError):
            synchronous_busy_period(make_taskset([(3, 4), (3, 4)]))


class TestDemandHorizon:
    def test_at_least_max_deadline(self):
        ts = make_taskset([(1, 100, 90), (1, 50, 40)])
        assert demand_horizon(ts) >= 90

    def test_bounded_by_busy_period_when_small(self):
        ts = make_taskset([(1, 4), (2, 6), (3, 10)])
        bp = synchronous_busy_period(ts)
        assert demand_horizon(ts) <= max(bp, max(t.D for t in ts))

    def test_full_utilization_uses_busy_period(self):
        ts = make_taskset([(1, 2), (1, 4), (2, 8)])
        assert demand_horizon(ts) == 8
