"""Unit tests for PROFIBUS telegram formats."""

import pytest

from repro.profibus import (
    SD2_MAX_PAYLOAD,
    SHORT_ACK,
    TOKEN_FRAME,
    Frame,
    FrameType,
    frame_for_payload,
)


class TestFrameLengths:
    def test_sd1_six_chars(self):
        assert Frame(FrameType.SD1).chars == 6
        assert Frame(FrameType.SD1).bits == 66

    def test_sd2_overhead_plus_payload(self):
        assert Frame(FrameType.SD2, 10).chars == 19
        assert Frame(FrameType.SD2, 1).chars == 10

    def test_sd3_fixed_fourteen(self):
        assert Frame(FrameType.SD3, 8).chars == 14

    def test_token_three_chars(self):
        assert TOKEN_FRAME.chars == 3
        assert TOKEN_FRAME.bits == 33

    def test_short_ack_single_char(self):
        assert SHORT_ACK.chars == 1
        assert SHORT_ACK.bits == 11


class TestFrameValidation:
    def test_sd2_payload_cap(self):
        Frame(FrameType.SD2, SD2_MAX_PAYLOAD)  # ok
        with pytest.raises(ValueError):
            Frame(FrameType.SD2, SD2_MAX_PAYLOAD + 1)

    def test_sd3_requires_exactly_eight(self):
        with pytest.raises(ValueError):
            Frame(FrameType.SD3, 7)

    def test_no_payload_frames_reject_payload(self):
        with pytest.raises(ValueError):
            Frame(FrameType.SD1, 1)
        with pytest.raises(ValueError):
            Frame(FrameType.SD4, 1)

    def test_negative_payload(self):
        with pytest.raises(ValueError):
            Frame(FrameType.SD2, -1)


class TestFrameForPayload:
    def test_zero_is_sd1(self):
        assert frame_for_payload(0).frame_type is FrameType.SD1

    def test_eight_is_sd3(self):
        f = frame_for_payload(8)
        assert f.frame_type is FrameType.SD3
        # SD3 (14 chars) must beat SD2 with 8 bytes (17 chars)
        assert f.chars < Frame(FrameType.SD2, 8).chars

    def test_other_sizes_are_sd2(self):
        assert frame_for_payload(1).frame_type is FrameType.SD2
        assert frame_for_payload(100).frame_type is FrameType.SD2

    def test_monotone_in_payload_except_sd3_dip(self):
        lengths = [frame_for_payload(p).chars for p in range(0, 30)]
        # remove the SD3 special case and check monotonicity
        del lengths[8]
        assert all(a <= b for a, b in zip(lengths, lengths[1:]))
