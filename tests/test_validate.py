"""Tests for the analysis-vs-simulation validation harness (E4/E6 core)."""

import pytest

from repro.core import nonpreemptive_rta, preemptive_rta
from repro.sim import validate_network, validate_uniproc
from repro.sim.token import TokenBusConfig
from repro.sim.traffic import staggered_offsets, synchronous_offsets


class TestValidateNetwork:
    @pytest.mark.parametrize("policy", ["fcfs", "dm", "edf"])
    def test_factory_cell_sound(self, factory_cell, policy):
        rep = validate_network(factory_cell, policy, horizon=2_000_000)
        assert rep.all_sound
        assert rep.worst_tightness is None or rep.worst_tightness <= 1.0

    @pytest.mark.parametrize("policy", ["fcfs", "dm", "edf"])
    def test_single_master_sound(self, single_master, policy):
        rep = validate_network(single_master, policy, horizon=2_000_000)
        assert rep.all_sound

    def test_staggered_traffic_sound(self, factory_cell):
        rep = validate_network(
            factory_cell, "dm", horizon=2_000_000,
            traffic=staggered_offsets(factory_cell, seed=5),
        )
        assert rep.all_sound

    def test_rows_carry_counts(self, single_master):
        rep = validate_network(single_master, "fcfs", horizon=1_000_000)
        for row in rep.rows:
            assert row.completed > 0
            assert row.bound is not None

    def test_detail_fields(self, single_master):
        rep = validate_network(single_master, "edf", horizon=500_000)
        assert rep.detail["policy"] == "edf"
        assert rep.detail["max_trr_observed"] <= rep.detail["tcycle_bound"]

    def test_row_lookup(self, single_master):
        rep = validate_network(single_master, "fcfs", horizon=500_000)
        assert rep.row("M1/s0").name == "M1/s0"
        with pytest.raises(KeyError):
            rep.row("nope")


class TestValidateUniproc:
    def test_preemptive_bounds_hold(self, basic_dm_taskset):
        analysis = preemptive_rta(basic_dm_taskset)
        bounds = {rt.task.name: rt.value for rt in analysis.per_task}
        rep = validate_uniproc(basic_dm_taskset, bounds, horizon=300)
        assert rep.all_sound
        # synchronous release is tight for preemptive FP
        assert rep.worst_tightness == pytest.approx(1.0)

    def test_nonpreemptive_bounds_hold(self, basic_dm_taskset):
        analysis = nonpreemptive_rta(basic_dm_taskset)
        bounds = {rt.task.name: rt.value for rt in analysis.per_task}
        rep = validate_uniproc(
            basic_dm_taskset, bounds, horizon=300, preemptive=False
        )
        assert rep.all_sound

    def test_none_bound_is_vacuously_sound(self, basic_dm_taskset):
        rep = validate_uniproc(
            basic_dm_taskset, {"t0": None, "t1": None, "t2": None}, horizon=100
        )
        assert rep.all_sound
        assert rep.worst_tightness is None


class TestUnfinishedReleases:
    """Regression: a message that never finishes inside the horizon must
    not vacuously pass its bound (the old `completed == 0` hole)."""

    def test_row_verdict_properties(self):
        from repro.sim.validate import (
            VERDICT_INCOMPLETE,
            VERDICT_SOUND,
            VERDICT_UNSOUND,
            ValidationRow,
        )

        # nothing completed, pending work younger than the bound:
        # incomplete, and NOT sound
        row = ValidationRow("s", bound=100, observed=0, completed=0,
                            released=2, unfinished=2, pending_age=50)
        assert row.verdict == VERDICT_INCOMPLETE
        assert not row.sound

        # a pending request older than the bound is direct evidence of
        # unsoundness — counted against the bound, not ignored
        row = ValidationRow("s", bound=100, observed=0, completed=0,
                            released=1, unfinished=1, pending_age=150)
        assert row.verdict == VERDICT_UNSOUND
        assert row.effective_observed == 150
        assert not row.sound

        # completions within the bound with young pending work: sound
        row = ValidationRow("s", bound=100, observed=80, completed=5,
                            released=6, unfinished=1, pending_age=20)
        assert row.verdict == VERDICT_SOUND
        assert row.sound

        # no bound claimed: nothing to contradict
        row = ValidationRow("s", bound=None, observed=0, completed=0,
                            released=3, unfinished=3, pending_age=999)
        assert row.sound

    def test_short_horizon_network_is_not_vacuously_sound(self, single_master):
        # 100 bit times: the first cycle cannot complete, so every stream
        # has released-but-unfinished work and no observations at all
        rep = validate_network(single_master, "dm", horizon=100)
        assert all(r.completed == 0 for r in rep.rows)
        assert all(r.released > 0 for r in rep.rows)
        assert not rep.all_sound
        assert rep.incomplete_rows or rep.unsound_rows

    def test_report_partitions_failures(self, single_master):
        rep = validate_network(single_master, "dm", horizon=100)
        failing = {r.name for r in rep.incomplete_rows} | {
            r.name for r in rep.unsound_rows
        }
        assert failing == {r.name for r in rep.rows if not r.sound}

    def test_long_horizon_still_sound(self, single_master):
        rep = validate_network(single_master, "dm", horizon=2_000_000)
        assert rep.all_sound
        for r in rep.rows:
            assert r.released >= r.completed
            assert r.verdict == "sound"


class TestMissingStreams:
    """Regression: an analysis stream absent from the simulation results
    (a key mismatch between the layers) used to get ``released=0`` and a
    vacuous ``sound`` verdict."""

    def test_row_missing_verdict(self):
        from repro.sim.validate import VERDICT_MISSING, ValidationRow

        row = ValidationRow("M1/s0", bound=100, observed=0, completed=0,
                            missing=True)
        assert row.verdict == VERDICT_MISSING
        assert not row.sound
        # missing wins even where no bound is claimed: the harness is
        # broken either way
        row = ValidationRow("M1/s0", bound=None, observed=0, completed=0,
                            missing=True)
        assert row.verdict == VERDICT_MISSING

    def test_validate_network_flags_absent_stream(self, single_master,
                                                  monkeypatch):
        from repro.sim import validate as validate_mod
        from repro.sim.token import simulate_token_bus

        real = simulate_token_bus

        def dropping_sim(network, horizon, traffic=None, config=None,
                         ttr=None):
            result = real(network, horizon, traffic, config, ttr)
            key = next(iter(result.streams))
            del result.streams[key]  # simulate a naming mismatch
            return result

        monkeypatch.setattr(validate_mod, "simulate_token_bus", dropping_sim)
        rep = validate_mod.validate_network(single_master, "dm",
                                            horizon=1_000_000)
        assert len(rep.missing_rows) == 1
        assert not rep.all_sound
        missing = rep.missing_rows[0]
        assert missing.released == 0 and missing.completed == 0

    def test_all_streams_present_has_no_missing_rows(self, single_master):
        from repro.sim import validate_network

        rep = validate_network(single_master, "dm", horizon=1_000_000)
        assert rep.missing_rows == []
        assert all(not r.missing for r in rep.rows)


class TestUniprocUnfinished:
    def test_uniproc_unfinished_detected(self):
        from repro.core import Task, TaskSet

        # the high-priority hog runs past the horizon, so "starved" never
        # executes: released but unfinished — must not pass vacuously
        ts = TaskSet((
            Task(C=60, T=100, D=100, priority=1, name="hog"),
            Task(C=50, T=100, D=100, priority=2, name="starved"),
        ))
        rep = validate_uniproc(ts, {"hog": 200, "starved": 100}, horizon=40)
        row = rep.row("starved")
        assert row.completed == 0 and row.released == 1
        assert row.unfinished == 1
        assert not row.sound
        assert not rep.all_sound
