"""Tests for the analysis-vs-simulation validation harness (E4/E6 core)."""

import pytest

from repro.core import nonpreemptive_rta, preemptive_rta
from repro.sim import validate_network, validate_uniproc
from repro.sim.token import TokenBusConfig
from repro.sim.traffic import staggered_offsets, synchronous_offsets


class TestValidateNetwork:
    @pytest.mark.parametrize("policy", ["fcfs", "dm", "edf"])
    def test_factory_cell_sound(self, factory_cell, policy):
        rep = validate_network(factory_cell, policy, horizon=2_000_000)
        assert rep.all_sound
        assert rep.worst_tightness is None or rep.worst_tightness <= 1.0

    @pytest.mark.parametrize("policy", ["fcfs", "dm", "edf"])
    def test_single_master_sound(self, single_master, policy):
        rep = validate_network(single_master, policy, horizon=2_000_000)
        assert rep.all_sound

    def test_staggered_traffic_sound(self, factory_cell):
        rep = validate_network(
            factory_cell, "dm", horizon=2_000_000,
            traffic=staggered_offsets(factory_cell, seed=5),
        )
        assert rep.all_sound

    def test_rows_carry_counts(self, single_master):
        rep = validate_network(single_master, "fcfs", horizon=1_000_000)
        for row in rep.rows:
            assert row.completed > 0
            assert row.bound is not None

    def test_detail_fields(self, single_master):
        rep = validate_network(single_master, "edf", horizon=500_000)
        assert rep.detail["policy"] == "edf"
        assert rep.detail["max_trr_observed"] <= rep.detail["tcycle_bound"]

    def test_row_lookup(self, single_master):
        rep = validate_network(single_master, "fcfs", horizon=500_000)
        assert rep.row("M1/s0").name == "M1/s0"
        with pytest.raises(KeyError):
            rep.row("nope")


class TestValidateUniproc:
    def test_preemptive_bounds_hold(self, basic_dm_taskset):
        analysis = preemptive_rta(basic_dm_taskset)
        bounds = {rt.task.name: rt.value for rt in analysis.per_task}
        rep = validate_uniproc(basic_dm_taskset, bounds, horizon=300)
        assert rep.all_sound
        # synchronous release is tight for preemptive FP
        assert rep.worst_tightness == pytest.approx(1.0)

    def test_nonpreemptive_bounds_hold(self, basic_dm_taskset):
        analysis = nonpreemptive_rta(basic_dm_taskset)
        bounds = {rt.task.name: rt.value for rt in analysis.per_task}
        rep = validate_uniproc(
            basic_dm_taskset, bounds, horizon=300, preemptive=False
        )
        assert rep.all_sound

    def test_none_bound_is_vacuously_sound(self, basic_dm_taskset):
        rep = validate_uniproc(
            basic_dm_taskset, {"t0": None, "t1": None, "t2": None}, horizon=100
        )
        assert rep.all_sound
        assert rep.worst_tightness is None
