"""Tests for the parameter-sweep module and CLI subcommand."""

import pytest

from repro.cli import main
from repro.profibus import (
    SweepRow,
    baud_sweep,
    deadline_scale_sweep,
    rows_to_csv,
    ttr_sweep,
)


class TestTtrSweep:
    def test_row_per_value_and_policy(self, factory_cell):
        rows = ttr_sweep(factory_cell, (1000, 2000), policies=("fcfs", "dm"))
        assert len(rows) == 4
        assert {r.policy for r in rows} == {"fcfs", "dm"}

    def test_feasibility_monotone_decreasing(self, factory_cell):
        rows = ttr_sweep(factory_cell, range(500, 9001, 500),
                         policies=("dm",))
        flips = [r.schedulable for r in rows]
        # once infeasible, stays infeasible
        seen_false = False
        for f in flips:
            if not f:
                seen_false = True
            if seen_false:
                assert not f

    def test_below_ring_latency_reported_unschedulable(self, factory_cell):
        rows = ttr_sweep(factory_cell, (10,), policies=("dm",))
        assert not rows[0].schedulable
        assert rows[0].worst_response is None

    def test_worst_response_grows_with_ttr(self, factory_cell):
        rows = ttr_sweep(factory_cell, (1000, 4000, 8000), policies=("fcfs",))
        values = [r.worst_response for r in rows]
        assert values == sorted(values)


class TestDeadlineScaleSweep:
    def test_acceptance_monotone_in_factor(self, factory_cell):
        rows = deadline_scale_sweep(factory_cell, (0.3, 0.6, 1.0, 1.5),
                                    policies=("dm",))
        sched = [r.schedulable for r in rows]
        # loosening deadlines can only help
        for a, b in zip(sched, sched[1:]):
            assert b or not a

    def test_factor_validation(self, factory_cell):
        with pytest.raises(ValueError):
            deadline_scale_sweep(factory_cell, (0.0,))

    def test_deadlines_clamped_to_period(self, factory_cell):
        rows = deadline_scale_sweep(factory_cell, (100.0,), policies=("dm",))
        assert rows[0].schedulable  # D = T everywhere is the laxest case


class TestBaudSweep:
    def test_factory_cell_needs_fast_line(self, factory_cell):
        rows = baud_sweep(factory_cell, (500_000, 1_500_000),
                          policies=("dm",))
        by_baud = {r.value: r.schedulable for r in rows}
        assert not by_baud[500_000]
        assert by_baud[1_500_000]

    def test_identity_at_native_baud(self, factory_cell):
        from repro.profibus import analyse

        rows = baud_sweep(factory_cell, (factory_cell.phy.baud_rate,),
                          policies=("edf",))
        assert rows[0].schedulable == analyse(factory_cell, "edf").schedulable
        assert rows[0].tcycle == analyse(factory_cell, "edf").tcycle


#: The CSV header is a frozen contract — downstream spreadsheets and the
#: corpus csv digest both depend on it byte for byte.
CSV_HEADER = ("parameter,value,policy,schedulable,"
              "worst_response,worst_slack,tcycle")


class TestCsv:
    def test_header_and_rows(self, factory_cell):
        rows = ttr_sweep(factory_cell, (1000,), policies=("dm",))
        csv = rows_to_csv(rows)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("parameter,value,policy")
        assert len(lines) == 2
        assert "dm" in lines[1]

    def test_none_rendered_empty(self, factory_cell):
        rows = ttr_sweep(factory_cell, (10,), policies=("dm",))
        csv = rows_to_csv(rows)
        assert ",,," in csv or ",,\n" in csv or ",," in csv

    def test_header_stable_across_all_three_row_types(self, factory_cell):
        for rows in (
            ttr_sweep(factory_cell, (1000,), policies=("dm",)),
            deadline_scale_sweep(factory_cell, (0.5,), policies=("dm",)),
            baud_sweep(factory_cell, (1_500_000,), policies=("dm",)),
        ):
            assert rows_to_csv(rows).splitlines()[0] == CSV_HEADER
        assert rows_to_csv([]).splitlines() == [CSV_HEADER]

    def test_none_cells_for_every_row_type(self, factory_cell):
        """An infeasible/unschedulable row renders empty (not "None")
        worst_response / worst_slack cells in each sweep flavour."""
        cases = (
            # TTR below ring latency: structurally infeasible
            ttr_sweep(factory_cell, (10,), policies=("dm",)),
            # deadlines crushed to the minimum: unschedulable
            deadline_scale_sweep(factory_cell, (0.0001,),
                                 policies=("fcfs",)),
            # slowest standard baud: rescaled net unschedulable
            baud_sweep(factory_cell, (9_600,), policies=("dm",)),
        )
        for rows in cases:
            row = rows[0]
            assert not row.schedulable
            assert row.worst_slack is None
            line = rows_to_csv(rows).splitlines()[1]
            cells = line.split(",")
            assert cells[4] == "" or row.worst_response is not None
            assert cells[5] == ""  # worst_slack always empty here
            assert "None" not in line

    def test_fields_with_separators_are_quoted(self):
        """RFC 4180 escaping: a parameter value containing separators,
        quotes or newlines must not shift columns."""
        row = SweepRow(parameter='ttr,"x"\nline', value=1.5, policy="dm",
                       schedulable=True, worst_response=7, worst_slack=2,
                       tcycle=9)
        csv = rows_to_csv([row])
        body = csv[len(CSV_HEADER) + 1:]
        assert body == '"ttr,""x""\nline",1.5,dm,True,7,2,9\n'
        # a stock csv reader round-trips it
        import csv as csv_mod
        import io

        parsed = list(csv_mod.reader(io.StringIO(csv)))
        assert parsed[1][0] == 'ttr,"x"\nline'
        assert parsed[1][6] == "9"

    def test_plain_rows_unaffected_by_escaping(self, factory_cell):
        rows = deadline_scale_sweep(factory_cell, (0.5,), policies=("dm",))
        for line in rows_to_csv(rows).splitlines():
            assert '"' not in line


class TestCliSweep:
    def test_ttr_sweep_csv(self, capsys):
        rc = main(["sweep", "--scenario", "factory-cell", "--param", "ttr",
                   "--start", "1000", "--stop", "3000", "--step", "1000"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("parameter,")
        assert len(lines) == 1 + 3 * 3  # 3 values x 3 policies

    def test_baud_sweep(self, capsys):
        rc = main(["sweep", "--scenario", "single-master", "--param", "baud"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baud" in out
