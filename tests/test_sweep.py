"""Tests for the parameter-sweep module and CLI subcommand."""

import pytest

from repro.cli import main
from repro.profibus import (
    SweepRow,
    baud_sweep,
    deadline_scale_sweep,
    rows_to_csv,
    ttr_sweep,
)


class TestTtrSweep:
    def test_row_per_value_and_policy(self, factory_cell):
        rows = ttr_sweep(factory_cell, (1000, 2000), policies=("fcfs", "dm"))
        assert len(rows) == 4
        assert {r.policy for r in rows} == {"fcfs", "dm"}

    def test_feasibility_monotone_decreasing(self, factory_cell):
        rows = ttr_sweep(factory_cell, range(500, 9001, 500),
                         policies=("dm",))
        flips = [r.schedulable for r in rows]
        # once infeasible, stays infeasible
        seen_false = False
        for f in flips:
            if not f:
                seen_false = True
            if seen_false:
                assert not f

    def test_below_ring_latency_reported_unschedulable(self, factory_cell):
        rows = ttr_sweep(factory_cell, (10,), policies=("dm",))
        assert not rows[0].schedulable
        assert rows[0].worst_response is None

    def test_worst_response_grows_with_ttr(self, factory_cell):
        rows = ttr_sweep(factory_cell, (1000, 4000, 8000), policies=("fcfs",))
        values = [r.worst_response for r in rows]
        assert values == sorted(values)


class TestDeadlineScaleSweep:
    def test_acceptance_monotone_in_factor(self, factory_cell):
        rows = deadline_scale_sweep(factory_cell, (0.3, 0.6, 1.0, 1.5),
                                    policies=("dm",))
        sched = [r.schedulable for r in rows]
        # loosening deadlines can only help
        for a, b in zip(sched, sched[1:]):
            assert b or not a

    def test_factor_validation(self, factory_cell):
        with pytest.raises(ValueError):
            deadline_scale_sweep(factory_cell, (0.0,))

    def test_deadlines_clamped_to_period(self, factory_cell):
        rows = deadline_scale_sweep(factory_cell, (100.0,), policies=("dm",))
        assert rows[0].schedulable  # D = T everywhere is the laxest case


class TestBaudSweep:
    def test_factory_cell_needs_fast_line(self, factory_cell):
        rows = baud_sweep(factory_cell, (500_000, 1_500_000),
                          policies=("dm",))
        by_baud = {r.value: r.schedulable for r in rows}
        assert not by_baud[500_000]
        assert by_baud[1_500_000]

    def test_identity_at_native_baud(self, factory_cell):
        from repro.profibus import analyse

        rows = baud_sweep(factory_cell, (factory_cell.phy.baud_rate,),
                          policies=("edf",))
        assert rows[0].schedulable == analyse(factory_cell, "edf").schedulable
        assert rows[0].tcycle == analyse(factory_cell, "edf").tcycle


class TestCsv:
    def test_header_and_rows(self, factory_cell):
        rows = ttr_sweep(factory_cell, (1000,), policies=("dm",))
        csv = rows_to_csv(rows)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("parameter,value,policy")
        assert len(lines) == 2
        assert "dm" in lines[1]

    def test_none_rendered_empty(self, factory_cell):
        rows = ttr_sweep(factory_cell, (10,), policies=("dm",))
        csv = rows_to_csv(rows)
        assert ",,," in csv or ",,\n" in csv or ",," in csv


class TestCliSweep:
    def test_ttr_sweep_csv(self, capsys):
        rc = main(["sweep", "--scenario", "factory-cell", "--param", "ttr",
                   "--start", "1000", "--stop", "3000", "--step", "1000"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("parameter,")
        assert len(lines) == 1 + 3 * 3  # 3 values x 3 policies

    def test_baud_sweep(self, capsys):
        rc = main(["sweep", "--scenario", "single-master", "--param", "baud"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baud" in out
