"""Unit tests for priority assignment (RM, DM, Audsley OPA)."""

import pytest

from repro.core import (
    Task,
    TaskSet,
    assign_audsley,
    assign_deadline_monotonic,
    assign_rate_monotonic,
    feasible_at_lowest_nonpreemptive,
    make_taskset,
    nonpreemptive_rta,
    priorities_are_dm,
    priorities_are_rm,
)


class TestRateMonotonic:
    def test_shorter_period_higher_priority(self):
        ts = assign_rate_monotonic(make_taskset([(1, 10), (1, 5), (1, 20)]))
        assert ts[1].priority < ts[0].priority < ts[2].priority

    def test_ties_broken_by_position(self):
        ts = assign_rate_monotonic(make_taskset([(1, 5), (1, 5)]))
        assert ts[0].priority < ts[1].priority

    def test_predicate(self):
        ts = assign_rate_monotonic(make_taskset([(1, 10), (1, 5)]))
        assert priorities_are_rm(ts)


class TestDeadlineMonotonic:
    def test_shorter_deadline_higher_priority(self):
        ts = assign_deadline_monotonic(
            make_taskset([(1, 10, 9), (1, 5, 5), (1, 20, 2)])
        )
        assert ts[2].priority < ts[1].priority < ts[0].priority

    def test_predicate(self):
        ts = assign_deadline_monotonic(make_taskset([(1, 10, 3), (1, 5, 5)]))
        assert priorities_are_dm(ts)
        assert not priorities_are_rm(ts)

    def test_original_order_kept(self):
        ts = assign_deadline_monotonic(make_taskset([(1, 10, 9), (1, 5, 5)]))
        # the TaskSet order is unchanged; only priorities are filled in
        assert [t.T for t in ts] == [10, 5]


class TestAudsley:
    def test_finds_assignment_where_dm_fails(self):
        # Non-preemptive with blocking: DM is not optimal; OPA must find
        # any feasible order when one exists.
        ts = make_taskset([(2, 10, 10), (3, 15, 12), (4, 20, 20)])
        out = assign_audsley(ts, feasible_at_lowest_nonpreemptive)
        assert out is not None
        assert nonpreemptive_rta(out).schedulable

    def test_agrees_with_dm_on_schedulable_set(self):
        ts = make_taskset([(1, 8, 6), (2, 12, 10), (2, 20, 20)])
        dm = assign_deadline_monotonic(ts)
        assert nonpreemptive_rta(dm).schedulable
        opa = assign_audsley(ts, feasible_at_lowest_nonpreemptive)
        assert opa is not None
        assert nonpreemptive_rta(opa).schedulable

    def test_returns_none_when_infeasible(self):
        # utilisation far above 1: nothing can work
        ts = make_taskset([(9, 10, 10), (9, 10, 10)])
        assert assign_audsley(ts, feasible_at_lowest_nonpreemptive) is None

    def test_priorities_are_a_permutation(self):
        ts = make_taskset([(1, 8), (1, 12), (1, 20)])
        out = assign_audsley(ts, feasible_at_lowest_nonpreemptive)
        assert sorted(t.priority for t in out) == [0, 1, 2]
