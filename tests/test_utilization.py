"""Unit tests for the utilisation-based tests (§2.1, §2.2)."""

import math

import pytest

from repro.core import (
    density_test,
    edf_utilization_test,
    hyperbolic_test,
    liu_layland_bound,
    make_taskset,
    rm_utilization_test,
)


class TestLiuLaylandBound:
    def test_known_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(2 * (2 ** 0.5 - 1))
        assert liu_layland_bound(3) == pytest.approx(3 * (2 ** (1 / 3) - 1))

    def test_limit_is_ln2(self):
        assert liu_layland_bound(10_000) == pytest.approx(math.log(2), abs=1e-4)

    def test_decreasing_in_n(self):
        values = [liu_layland_bound(n) for n in range(1, 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            liu_layland_bound(0)


class TestRMUtilizationTest:
    def test_accepts_low_utilization(self):
        res = rm_utilization_test(make_taskset([(1, 10), (1, 10)]))
        assert res.schedulable
        assert res.utilization == pytest.approx(0.2)

    def test_rejects_above_bound(self):
        # U = 0.9 > 2(2^0.5-1) ≈ 0.828
        res = rm_utilization_test(make_taskset([(9, 20), (9, 20)]))
        assert not res.schedulable

    def test_requires_implicit_deadlines(self):
        with pytest.raises(ValueError):
            rm_utilization_test(make_taskset([(1, 10, 5)]))

    def test_result_is_truthy(self):
        assert rm_utilization_test(make_taskset([(1, 10)]))


class TestHyperbolicTest:
    def test_dominates_liu_layland(self):
        # A set accepted by LL must be accepted by the hyperbolic bound.
        ts = make_taskset([(1, 4), (1, 8), (1, 16)])
        assert rm_utilization_test(ts).schedulable
        assert hyperbolic_test(ts).schedulable

    def test_accepts_harmonic_full_utilization(self):
        # Two tasks with U1=U2 such that (U1+1)(U2+1) <= 2 but U > LL bound
        # U1 = U2 = sqrt(2) - 1 ≈ 0.4142 -> product exactly 2
        ts = make_taskset([(414, 1000), (414, 1000)])
        assert hyperbolic_test(ts).schedulable
        assert rm_utilization_test(ts).schedulable  # boundary: 0.828 <= 0.828...

    def test_rejects_overload(self):
        assert not hyperbolic_test(make_taskset([(3, 4), (3, 4)])).schedulable

    def test_requires_implicit_deadlines(self):
        with pytest.raises(ValueError):
            hyperbolic_test(make_taskset([(1, 10, 5)]))


class TestEDFUtilization:
    def test_exact_boundary(self):
        assert edf_utilization_test(make_taskset([(1, 2), (1, 2)])).schedulable
        assert not edf_utilization_test(
            make_taskset([(1, 2), (1, 2), (1, 100)])
        ).schedulable

    def test_bound_field(self):
        res = edf_utilization_test(make_taskset([(1, 4)]))
        assert res.bound == 1.0
        assert res.test == "edf-utilization"


class TestDensityTest:
    def test_constrained_deadlines(self):
        # C/min(D,T): 2/4 + 1/4 = 0.75 <= 1
        assert density_test(make_taskset([(2, 10, 4), (1, 8, 4)])).schedulable

    def test_rejects_dense_set(self):
        assert not density_test(make_taskset([(3, 10, 4), (2, 8, 4)])).schedulable
