"""Coverage of smaller paths not exercised elsewhere."""

import pytest

from repro.profibus import analyse, tdel, tdel_refined
from repro.sim import validate_uniproc
from repro.sim.engine import Simulator
from repro.sim.trace import BusTrace, render_timeline


class TestRefinedAnalyses:
    @pytest.mark.parametrize("policy", ["fcfs", "dm", "edf"])
    def test_refined_never_worse(self, factory_cell, policy):
        plain = analyse(factory_cell, policy, refined=False)
        refined = analyse(factory_cell, policy, refined=True)
        assert refined.tcycle <= plain.tcycle
        for a, b in zip(refined.per_stream, plain.per_stream):
            if b.R is not None and a.R is not None:
                assert a.R <= b.R

    def test_refined_strictly_helps_when_two_masters_have_long_lows(self):
        from repro.profibus import Master, MessageStream, Network, PhyParameters

        phy = PhyParameters()
        masters = tuple(
            Master(k, (
                MessageStream(f"h{k}", T=100_000, D=50_000, C_bits=300),
                MessageStream(f"l{k}", T=100_000, C_bits=4_000,
                              high_priority=False),
            ))
            for k in (1, 2)
        )
        net = Network(masters=masters, phy=phy, ttr=2_000)
        assert tdel_refined(net) < tdel(net)
        assert analyse(net, "dm", refined=True).tcycle < analyse(
            net, "dm", refined=False
        ).tcycle


class TestEngineRunAllGuard:
    def test_run_all_max_events(self):
        sim = Simulator()

        def loop():
            sim.schedule(sim.now + 1, loop)

        sim.schedule(0, loop)
        with pytest.raises(RuntimeError):
            sim.run_all(max_events=100)


class TestValidateUniprocJitter:
    def test_release_jitter_once_path(self):
        from repro.core import Task, TaskSet, assign_deadline_monotonic
        from repro.core import preemptive_rta

        ts = assign_deadline_monotonic(TaskSet([
            Task(C=1, T=10, J=4, name="a"),
            Task(C=3, T=15, name="b"),
        ]))
        bounds = {rt.task.name: rt.value for rt in preemptive_rta(ts).per_task}
        rep = validate_uniproc(ts, bounds, horizon=600,
                               release_jitter_once=True)
        assert rep.all_sound


class TestTimelineDefaults:
    def test_end_defaults_to_last_event(self):
        from repro.sim.trace import TOKEN_ARRIVAL, BusEvent

        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=TOKEN_ARRIVAL, master="M1"))
        trace.record(BusEvent(time=50, kind=TOKEN_ARRIVAL, master="M1"))
        art = render_timeline(trace, width=20)
        assert "t=0 .. t=50" in art

    def test_cycles_empty_when_only_tokens(self):
        from repro.sim.trace import TOKEN_ARRIVAL, BusEvent

        trace = BusTrace()
        trace.record(BusEvent(time=0, kind=TOKEN_ARRIVAL, master="M1"))
        assert trace.cycles() == []
        assert trace.bus_utilisation() == 0.0


class TestScaleToUtilization:
    def test_targets_are_met_roughly(self):
        from repro.gen import random_taskset, scale_to_utilization

        ts = random_taskset(5, 0.3, seed=2, t_min=100, t_max=1000)
        up = scale_to_utilization(ts, 0.9)
        assert up.utilization == pytest.approx(0.9, abs=0.1)
        down = scale_to_utilization(up, 0.2)
        assert down.utilization == pytest.approx(0.2, abs=0.1)
