"""Integration-level tests for the PROFIBUS token-bus simulator."""

import pytest

from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    tcycle,
    token_pass_time,
)
from repro.profibus.timing import longest_cycle
from repro.sim import (
    TokenBusConfig,
    simulate_token_bus,
    staggered_offsets,
    synchronous_offsets,
)


def _mini_net(ttr=2_000, **stream_kw):
    phy = PhyParameters()
    m1 = Master(1, (MessageStream("a", T=20_000, C_bits=500, **stream_kw),))
    m2 = Master(2, (MessageStream("b", T=30_000, C_bits=700),))
    return Network(masters=(m1, m2), phy=phy, ttr=ttr)


class TestBasicOperation:
    def test_idle_ring_rotates_at_ring_latency(self):
        phy = PhyParameters()
        net = Network(masters=(Master(1), Master(2), Master(3)),
                      phy=phy, ttr=5_000)
        res = simulate_token_bus(net, 100_000)
        for ms in res.masters.values():
            assert ms.max_trr == net.ring_latency()
            assert ms.high_sent == ms.low_sent == 0

    def test_all_messages_delivered(self):
        net = _mini_net()
        res = simulate_token_bus(net, 200_000)
        # 200000/20000 = 11 releases (t=0..200000) minus possibly in-flight
        assert res.stream("M1", "a").completed >= 9
        assert res.stream("M2", "b").completed >= 5

    def test_response_includes_queuing_and_cycle(self):
        net = _mini_net()
        res = simulate_token_bus(net, 200_000)
        # responses must be at least the cycle length
        assert res.stream("M1", "a").max_response >= 500

    def test_deterministic(self):
        net = _mini_net()
        a = simulate_token_bus(net, 150_000)
        b = simulate_token_bus(net, 150_000)
        assert a.stream("M1", "a").responses == b.stream("M1", "a").responses
        assert a.max_trr == b.max_trr
        assert a.events == b.events

    def test_trace_responses_flag(self):
        net = _mini_net()
        cfg = TokenBusConfig(trace_responses=True)
        res = simulate_token_bus(net, 100_000, config=cfg)
        st = res.stream("M1", "a")
        assert st.responses is not None
        assert len(st.responses) == st.completed
        assert max(st.responses) == st.max_response


class TestLateTokenRule:
    def test_one_high_message_per_late_token(self):
        # minimal TTR: the token is permanently "late"; each master still
        # sends exactly one high-priority message per visit
        phy = PhyParameters()
        m1 = Master(1, tuple(
            MessageStream(f"s{i}", T=50_000, C_bits=800) for i in range(4)
        ))
        net = Network(masters=(m1,), phy=phy,
                      ttr=token_pass_time(phy))  # == ring latency
        res = simulate_token_bus(net, 100_000,
                                 traffic=synchronous_offsets(net))
        ms = res.masters["M1"]
        # per visit at most one high message -> high_sent <= token_visits
        assert ms.high_sent <= ms.token_visits

    def test_generous_ttr_allows_batching(self):
        phy = PhyParameters()
        m1 = Master(1, tuple(
            MessageStream(f"s{i}", T=50_000, C_bits=800) for i in range(4)
        ))
        net = Network(masters=(m1,), phy=phy, ttr=50_000)
        res = simulate_token_bus(net, 60_000,
                                 traffic=synchronous_offsets(net))
        ms = res.masters["M1"]
        # all four synchronously-released messages go out back-to-back in
        # one token holding: the last completes after 4 cycles plus at
        # most one token wait, with no token passes in between
        assert ms.high_sent >= 4
        assert res.stream("M1", "s3").max_response < 4 * 800 + 2 * token_pass_time(phy)


class TestTthOverrun:
    def test_overrun_recorded(self):
        # a master with a cycle longer than its TTH must overrun
        phy = PhyParameters()
        m1 = Master(1, (MessageStream("big", T=10_000, C_bits=3_000),))
        net = Network(masters=(m1,), phy=phy, ttr=200)
        res = simulate_token_bus(net, 60_000)
        assert res.masters["M1"].tth_overruns > 0
        assert res.masters["M1"].max_overrun > 0


class TestLowPriorityTraffic:
    def test_low_streams_served_when_budget(self):
        phy = PhyParameters()
        m1 = Master(1, (
            MessageStream("h", T=20_000, C_bits=500),
            MessageStream("l", T=20_000, C_bits=500, high_priority=False),
        ))
        net = Network(masters=(m1,), phy=phy, ttr=20_000)
        res = simulate_token_bus(net, 200_000)
        assert res.masters["M1"].low_sent > 0
        assert res.stream("M1", "l").completed > 0

    def test_always_pending_low_consumes_budget(self):
        net = _mini_net(ttr=5_000)
        lap = {m.name: longest_cycle(m, net.phy) for m in net.masters}
        cfg = TokenBusConfig(low_always_pending=lap)
        res = simulate_token_bus(net, 300_000, config=cfg)
        assert all(ms.low_sent > 0 for ms in res.masters.values())
        # background lows lengthen rotations
        plain = simulate_token_bus(net, 300_000)
        assert res.max_trr > plain.max_trr


class TestTcycleBound:
    def test_warm_start_respects_eq14(self, factory_cell):
        lap = {m.name: longest_cycle(m, factory_cell.phy)
               for m in factory_cell.masters}
        cfg = TokenBusConfig(low_always_pending=lap)
        res = simulate_token_bus(factory_cell, 3_000_000, config=cfg)
        assert res.max_trr <= tcycle(factory_cell)

    def test_cold_start_can_exceed_eq14_documented(self):
        # the DESIGN.md cold-start finding, pinned as a regression test:
        # seed-1 network exceeds TTR + Tdel without warm start
        from repro.gen import network_with_ttr_headroom, random_network

        net = network_with_ttr_headroom(
            random_network(n_masters=4, streams_per_master=3, seed=1)
        )
        lap = {m.name: longest_cycle(m, net.phy) for m in net.masters}
        cold = TokenBusConfig(low_always_pending=lap, warm_start=False)
        res = simulate_token_bus(net, 3_000_000, config=cold)
        bound = tcycle(net)
        assert res.max_trr > bound
        assert res.max_trr <= bound + net.ring_latency()


class TestApArchitecture:
    def test_stack_limited_to_one(self):
        phy = PhyParameters()
        m1 = Master(1, tuple(
            MessageStream(f"s{i}", T=60_000, D=60_000, C_bits=600)
            for i in range(5)
        ))
        net = Network(masters=(m1,), phy=phy, ttr=1_000)
        cfg = TokenBusConfig(policy="ap-dm")
        res = simulate_token_bus(net, 400_000, config=cfg)
        assert res.stream("M1", "s0").completed > 0

    def test_dm_ap_prefers_tight_deadline(self, single_master):
        # under load, the tight-deadline stream's worst response with the
        # AP-DM queue beats the stock FCFS queue's
        fcfs = simulate_token_bus(
            single_master, 2_000_000,
            config=TokenBusConfig(policy="stock-fcfs"),
        )
        dm = simulate_token_bus(
            single_master, 2_000_000,
            config=TokenBusConfig(policy="ap-dm"),
        )
        assert (
            dm.stream("M1", "s0").max_response
            <= fcfs.stream("M1", "s0").max_response
        )

    def test_mixed_policies_per_master(self, factory_cell):
        cfg = TokenBusConfig(
            policy="stock-fcfs",
            policies={"cell": "ap-edf", "robot": "ap-dm"},
        )
        res = simulate_token_bus(factory_cell, 1_000_000, config=cfg)
        assert res.stream("cell", "axis-setpoint").completed > 0
        assert res.stream("robot", "grip-cmd").completed > 0

    def test_deeper_stack_reintroduces_inversion(self, single_master):
        # ablation: with a deep stack, the tight stream's worst response
        # under AP-DM degrades towards FCFS behaviour
        shallow = simulate_token_bus(
            single_master, 2_000_000,
            config=TokenBusConfig(policy="ap-dm", stack_depth=1),
        )
        deep = simulate_token_bus(
            single_master, 2_000_000,
            config=TokenBusConfig(policy="ap-dm", stack_depth=8),
        )
        assert (
            deep.stream("M1", "s0").max_response
            >= shallow.stream("M1", "s0").max_response
        )


class TestMissAccounting:
    def test_miss_detected_when_deadline_tight(self):
        phy = PhyParameters()
        m1 = Master(1, (
            MessageStream("tight", T=50_000, D=520, C_bits=500),
            MessageStream("other", T=50_000, C_bits=500),
        ))
        net = Network(masters=(m1,), phy=phy, ttr=2_000)
        res = simulate_token_bus(net, 500_000)
        assert res.any_miss
        assert res.stream("M1", "tight").missed > 0
