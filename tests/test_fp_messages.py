"""Tests for the generalised FP message analysis (DJM, OPA) — extension."""

import pytest

from repro.core import assign_deadline_monotonic, assign_dj_monotonic
from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    djm_analysis,
    dm_analysis,
    fp_analysis,
    opa_analysis,
)


def witness_network():
    """Pinned scenario (found by randomized search, seed 9): DM fails,
    (D−J)-monotonic and OPA succeed — jitter makes DM suboptimal."""
    phy = PhyParameters()
    streams = (
        MessageStream("s0", T=59_000, D=5_000, J=0, C_bits=500),
        MessageStream("s1", T=31_000, D=8_000, J=0, C_bits=500),
        MessageStream("s2", T=52_000, D=8_000, J=4_000, C_bits=500),
        MessageStream("s3", T=41_000, D=8_000, J=5_000, C_bits=500),
    )
    return Network(masters=(Master(1, streams),), phy=phy, ttr=500)


class TestDjMonotonicAssignment:
    def test_coincides_with_dm_without_jitter(self):
        from repro.core import make_taskset

        ts = make_taskset([(1, 10, 7), (2, 20, 15), (1, 30, 30)])
        dm = assign_deadline_monotonic(ts)
        dj = assign_dj_monotonic(ts)
        assert [t.priority for t in dm] == [t.priority for t in dj]

    def test_jitter_promotes_urgency(self):
        from repro.core import Task, TaskSet

        ts = TaskSet([
            Task(C=1, T=100, D=50, J=45, name="jittery"),
            Task(C=1, T=100, D=20, J=0, name="plain"),
        ])
        dj = assign_dj_monotonic(ts)
        # D−J: jittery 5 < plain 20 -> jittery first despite larger D
        assert dj.by_name("jittery").priority < dj.by_name("plain").priority


class TestDjmBeatsDmUnderJitter:
    def test_witness(self):
        net = witness_network()
        assert not dm_analysis(net).schedulable
        assert djm_analysis(net).schedulable
        assert opa_analysis(net).schedulable

    def test_djm_reduces_jittery_stream_response(self):
        net = witness_network()
        dm = dm_analysis(net)
        dj = djm_analysis(net)
        # the high-jitter stream is unbounded under DM, bounded under DJM
        assert dm.response("M1", "s3").R is None
        assert dj.response("M1", "s3").R is not None

    def test_policy_labels(self):
        net = witness_network()
        assert djm_analysis(net).policy == "djm"
        assert opa_analysis(net).policy == "opa"


class TestOpaDominance:
    def test_opa_succeeds_whenever_dm_does(self):
        import random

        from repro.gen import network_with_ttr_headroom, random_network

        for seed in range(10):
            net = network_with_ttr_headroom(
                random_network(n_masters=2, streams_per_master=3, seed=seed)
            )
            if dm_analysis(net).schedulable:
                assert opa_analysis(net).schedulable, seed

    def test_opa_dominates_on_random_jittered_sets(self):
        """OPA must succeed whenever DM or DJM does, across random
        jittered single-master networks (the regime where fixed rules
        disagree)."""
        import random

        phy = PhyParameters()
        for seed in range(60):
            rng = random.Random(1000 + seed)
            streams = []
            for i in range(rng.randint(2, 4)):
                T = rng.randint(20, 60) * 1000
                J = rng.choice([0, rng.randint(1, 6) * 1000])
                D = min(T, rng.randint(3, 12) * 1000 + J)
                streams.append(
                    MessageStream(f"s{i}", T=T, D=D, J=J, C_bits=500)
                )
            net = Network(masters=(Master(1, tuple(streams)),), phy=phy,
                          ttr=500)
            dm_ok = dm_analysis(net).schedulable
            dj_ok = djm_analysis(net).schedulable
            opa_ok = opa_analysis(net).schedulable
            if dm_ok or dj_ok:
                assert opa_ok, f"seed={seed}"

    def test_opa_succeeds_whenever_djm_does(self):
        net = witness_network()
        assert djm_analysis(net).schedulable
        assert opa_analysis(net).schedulable

    def test_opa_marks_streams_when_infeasible(self):
        phy = PhyParameters()
        net = Network(masters=(Master(1, (
            MessageStream("x", T=10_000, D=600, C_bits=500),
            MessageStream("y", T=10_000, D=700, C_bits=500),
        )),), phy=phy, ttr=500)
        res = opa_analysis(net)
        assert not res.schedulable
        assert all(sr.R is None for sr in res.per_stream)


class TestFpAnalysisGeneric:
    def test_custom_assignment_callable(self):
        net = witness_network()
        # identity order (declaration order) via a trivial assigner
        def declaration_order(ts):
            from repro.core import TaskSet

            return TaskSet(t.with_priority(i) for i, t in enumerate(ts))

        res = fp_analysis(net, declaration_order, policy_name="decl")
        assert res.policy == "decl"
        assert len(res.per_stream) == 4

    def test_dm_via_fp_analysis_matches_dm_analysis(self, factory_cell):
        a = fp_analysis(factory_cell, assign_deadline_monotonic)
        b = dm_analysis(factory_cell)
        assert [sr.R for sr in a.per_stream] == [sr.R for sr in b.per_stream]


class TestSimulationSupport:
    def test_djm_schedule_simulates_clean(self):
        """The witness network, simulated with a DJM-ordered AP queue via
        per-stream deadline rewriting (the sim's DM queue keyed on D−J by
        construction of a shifted deadline), misses nothing."""
        from repro.sim import TokenBusConfig, simulate_token_bus

        net = witness_network()
        # The sim's DM queue orders by rel_deadline; emulate DJM by
        # building an equivalent network whose D is D−J for ordering —
        # response accounting still uses the original deadline, so run
        # the analysis-validated network directly with ap-dm and assert
        # only the analytically-schedulable streams behave.
        res = simulate_token_bus(
            net, 2_000_000, config=TokenBusConfig(policy="ap-edf")
        )
        assert res.stream("M1", "s0").completed > 0
