"""Tests pinning the reference scenarios to their documented regimes."""

import pytest

from repro.profibus import analyse, tdel, ttr_advantage
from repro.scenarios import (
    FACTORY_CELL_TTR,
    factory_cell_network,
    paper_illustration_network,
    single_master_network,
)


class TestFactoryCell:
    def test_headline_regime(self):
        net = factory_cell_network()
        assert not analyse(net, "fcfs").schedulable
        assert analyse(net, "dm").schedulable
        assert analyse(net, "edf").schedulable

    def test_fcfs_miss_is_the_tight_stream(self):
        net = factory_cell_network()
        res = analyse(net, "fcfs")
        misses = [
            (sr.master, sr.stream.name)
            for sr in res.per_stream
            if not sr.schedulable
        ]
        assert misses == [("cell", "axis-setpoint")]

    def test_default_ttr(self):
        assert factory_cell_network().ttr == FACTORY_CELL_TTR

    def test_ttr_override_and_none(self):
        assert factory_cell_network(ttr=9999).ttr == 9999
        assert factory_cell_network(ttr=None).ttr is None

    def test_has_low_priority_overrunner(self):
        net = factory_cell_network()
        lows = [s for m in net.masters for s in m.low_streams]
        assert lows
        # the low stream drives Tdel: its cycle is the longest
        from repro.profibus import longest_cycle

        sup = net.master_named("supervisor")
        assert longest_cycle(sup, net.phy) == max(
            s.cycle_bits(net.phy) for s in sup.streams
        )

    def test_ttr_advantage_positive(self):
        adv = ttr_advantage(factory_cell_network())
        assert adv["dm"] > adv["fcfs"]


class TestSingleMaster:
    def test_policy_separation(self):
        net = single_master_network()
        assert not analyse(net, "fcfs").schedulable
        assert analyse(net, "dm").schedulable
        assert analyse(net, "edf").schedulable

    def test_stream_count_configurable(self):
        net = single_master_network(n_streams=3)
        assert net.masters[0].nh == 3

    def test_deadline_spread(self):
        net = single_master_network()
        ds = [s.D for s in net.masters[0].streams]
        assert ds == sorted(ds)
        assert ds[-1] == 5 * ds[0]


class TestIllustration:
    def test_three_masters(self):
        net = paper_illustration_network()
        assert net.n_masters == 3

    def test_bulk_is_the_overrunner(self):
        net = paper_illustration_network()
        from repro.profibus import longest_cycle

        m1 = net.masters[0]
        assert m1.stream("bulk").cycle_bits(net.phy) == longest_cycle(
            m1, net.phy
        )

    def test_tdel_dominated_by_bulk(self):
        net = paper_illustration_network()
        bulk = net.masters[0].stream("bulk").cycle_bits(net.phy)
        assert tdel(net) > bulk
        assert tdel(net) < 2 * bulk  # other masters' cycles are small
