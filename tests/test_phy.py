"""Unit tests for the PHY timing model."""

import pytest

from repro.profibus import (
    BITS_PER_CHAR,
    STANDARD_BAUD_RATES,
    PhyParameters,
    bits_to_seconds,
    char_time_bits,
    seconds_to_bits,
)


class TestCharTime:
    def test_eleven_bits_per_char(self):
        assert BITS_PER_CHAR == 11
        assert char_time_bits(1) == 11
        assert char_time_bits(6) == 66

    def test_zero_chars(self):
        assert char_time_bits(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            char_time_bits(-1)


class TestConversions:
    def test_round_trip(self):
        for baud in STANDARD_BAUD_RATES:
            bits = 1234
            assert seconds_to_bits(bits_to_seconds(bits, baud), baud) == bits

    def test_bits_to_seconds_scale(self):
        assert bits_to_seconds(500_000, 500_000) == pytest.approx(1.0)
        assert bits_to_seconds(500, 500_000) == pytest.approx(1e-3)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            bits_to_seconds(1, 0)
        with pytest.raises(ValueError):
            seconds_to_bits(-1.0, 500_000)


class TestPhyParameters:
    def test_defaults_valid(self):
        phy = PhyParameters()
        assert phy.baud_rate == 500_000
        assert phy.tsl > phy.tsdr_max

    def test_ms_helper(self):
        phy = PhyParameters(baud_rate=500_000)
        assert phy.ms(500) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhyParameters(baud_rate=0)
        with pytest.raises(ValueError):
            PhyParameters(tsdr_min=10, tsdr_max=5)
        with pytest.raises(ValueError):
            PhyParameters(tsl=30, tsdr_max=60)  # slot time below tsdr
        with pytest.raises(ValueError):
            PhyParameters(max_retry=-1)
        with pytest.raises(ValueError):
            PhyParameters(tid1=-1)

    def test_frozen(self):
        phy = PhyParameters()
        with pytest.raises(Exception):
            phy.baud_rate = 12
