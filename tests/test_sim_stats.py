"""Tests for simulator statistics: percentiles, warm-up window, errors."""

import pytest

from repro.profibus import Master, MessageStream, Network, PhyParameters
from repro.profibus import MessageCycleSpec, attempt_time, cycle_time
from repro.sim import TokenBusConfig, simulate_token_bus


class TestPercentiles:
    def _run(self, single_master):
        cfg = TokenBusConfig(policy="ap-dm", trace_responses=True)
        return simulate_token_bus(single_master, 2_000_000, config=cfg)

    def test_percentile_ordering(self, single_master):
        res = self._run(single_master)
        st = res.stream("M1", "s0")
        assert st.percentile(50) <= st.percentile(90) <= st.percentile(100)
        assert st.percentile(100) == st.max_response

    def test_percentile_requires_tracing(self, single_master):
        res = simulate_token_bus(single_master, 200_000)
        with pytest.raises(ValueError):
            res.stream("M1", "s0").percentile(50)

    def test_percentile_validation(self, single_master):
        res = self._run(single_master)
        st = res.stream("M1", "s0")
        with pytest.raises(ValueError):
            st.percentile(0)
        with pytest.raises(ValueError):
            st.percentile(101)


class TestWarmupWindow:
    def test_stats_after_excludes_transient(self, single_master):
        full = simulate_token_bus(single_master, 1_000_000)
        steady = simulate_token_bus(
            single_master, 1_000_000,
            config=TokenBusConfig(stats_after=200_000),
        )
        st_full = full.stream("M1", "s0")
        st_steady = steady.stream("M1", "s0")
        assert st_steady.completed < st_full.completed
        # the synchronous burst at t=0 is the worst phase; excluding it
        # cannot raise the observed maximum
        assert st_steady.max_response <= st_full.max_response

    def test_token_stats_unaffected(self, single_master):
        a = simulate_token_bus(single_master, 500_000)
        b = simulate_token_bus(
            single_master, 500_000, config=TokenBusConfig(stats_after=250_000)
        )
        assert a.masters["M1"].token_visits == b.masters["M1"].token_visits
        assert a.max_trr == b.max_trr


class TestErrorModel:
    def _net(self, ttr=5_000):
        phy = PhyParameters(max_retry=2)
        spec = MessageCycleSpec(req_payload=8, resp_payload=8)
        m = Master(1, (MessageStream("s", T=20_000, spec=spec),))
        return Network(masters=(m,), phy=phy, ttr=ttr)

    def test_error_free_cycles_are_nominal(self):
        net = self._net()
        phy = net.phy
        spec = net.masters[0].stream("s").spec
        cfg = TokenBusConfig(error_rate=1e-9, trace_responses=True, seed=1)
        res = simulate_token_bus(net, 400_000, config=cfg)
        st = res.stream("M1", "s")
        # nearly every cycle at the nominal single-attempt time
        assert min(st.responses) < cycle_time(spec, phy)
        assert min(st.responses) >= attempt_time(spec, phy)

    def test_full_error_rate_worst_case(self):
        net = self._net()
        spec = net.masters[0].stream("s").spec
        cfg = TokenBusConfig(error_rate=1.0, trace_responses=True, seed=1)
        res = simulate_token_bus(net, 400_000, config=cfg)
        st = res.stream("M1", "s")
        assert min(st.responses) >= cycle_time(spec, net.phy)

    def test_errors_never_break_the_bound(self):
        # the analysis charges worst-case Ch, so any error rate is covered
        from repro.profibus import fcfs_analysis

        net = self._net()
        bound = fcfs_analysis(net).response("M1", "s").R
        for rate in (0.0, 0.3, 1.0):
            cfg = TokenBusConfig(error_rate=rate, seed=7)
            res = simulate_token_bus(net, 800_000, config=cfg)
            assert res.stream("M1", "s").max_response <= bound

    def test_deterministic_given_seed(self):
        net = self._net()
        cfg = TokenBusConfig(error_rate=0.5, trace_responses=True, seed=9)
        a = simulate_token_bus(net, 300_000, config=cfg)
        b = simulate_token_bus(net, 300_000, config=cfg)
        assert a.stream("M1", "s").responses == b.stream("M1", "s").responses
