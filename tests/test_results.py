"""Tests for the result dataclasses (core and PROFIBUS)."""

import pytest

from repro.core import Task
from repro.core.results import AnalysisResult, FeasibilityResult, ResponseTime
from repro.profibus import MessageStream
from repro.profibus.results import NetworkAnalysis, StreamResponse


class TestResponseTime:
    def test_schedulable_and_slack(self):
        t = Task(C=1, T=10, D=8, name="a")
        rt = ResponseTime(task=t, value=5)
        assert rt.schedulable
        assert rt.slack == 3

    def test_unbounded(self):
        t = Task(C=1, T=10, name="a")
        rt = ResponseTime(task=t, value=None)
        assert not rt.schedulable
        assert rt.slack is None

    def test_boundary(self):
        t = Task(C=1, T=10, D=5, name="a")
        assert ResponseTime(task=t, value=5).schedulable
        assert not ResponseTime(task=t, value=6).schedulable


class TestAnalysisResult:
    def _result(self):
        t0 = Task(C=1, T=10, D=8, name="a")
        t1 = Task(C=2, T=20, D=4, name="b")
        return AnalysisResult(
            schedulable=False,
            per_task=(
                ResponseTime(task=t0, value=5),
                ResponseTime(task=t1, value=None),
            ),
            test="x",
        )

    def test_bool(self):
        assert not self._result()
        assert AnalysisResult(schedulable=True)

    def test_response_lookup(self):
        res = self._result()
        assert res.response("a").value == 5
        with pytest.raises(KeyError):
            res.response("zzz")

    def test_worst_response_ignores_none(self):
        assert self._result().worst_response == 5

    def test_summary_lines(self):
        lines = self._result().summary()
        assert any("MISS" in l for l in lines)
        assert any("ok" in l for l in lines)
        assert any("∞" in l for l in lines)


class TestFeasibilityResult:
    def test_bool(self):
        assert FeasibilityResult(schedulable=True, test="t")
        assert not FeasibilityResult(schedulable=False, test="t")


class TestStreamResponse:
    def test_schedulable_slack(self):
        s = MessageStream("x", T=1000, D=800)
        sr = StreamResponse(master="M1", stream=s, R=700)
        assert sr.schedulable and sr.slack == 100
        sr2 = StreamResponse(master="M1", stream=s, R=None)
        assert not sr2.schedulable and sr2.slack is None


class TestNetworkAnalysis:
    def _na(self):
        s0 = MessageStream("x", T=1000, D=800)
        s1 = MessageStream("y", T=1000, D=100)
        return NetworkAnalysis(
            policy="dm",
            ttr=100,
            tcycle=200,
            per_stream=(
                StreamResponse(master="M1", stream=s0, R=700),
                StreamResponse(master="M2", stream=s1, R=400),
            ),
        )

    def test_schedulable_aggregates(self):
        na = self._na()
        assert not na.schedulable
        assert not na

    def test_lookup_and_for_master(self):
        na = self._na()
        assert na.response("M1", "x").R == 700
        assert [sr.stream.name for sr in na.for_master("M2")] == ["y"]
        with pytest.raises(KeyError):
            na.response("M9", "x")

    def test_worst_response(self):
        assert self._na().worst_response == 700

    def test_summary(self):
        lines = self._na().summary()
        assert "policy=dm" in lines[0]
        assert any("MISS" in l for l in lines)
