"""Unit tests for blocking factors (eq. (2) and EDF variants)."""

from repro.core import (
    Task,
    assign_deadline_monotonic,
    blocking_from,
    edf_blocking_at,
    make_taskset,
    nonpreemptive_blocking,
)


class TestBlockingFrom:
    def test_max_of_lower(self):
        tasks = [Task(C=2, T=10), Task(C=5, T=20), Task(C=3, T=30)]
        assert blocking_from(tasks) == 5

    def test_empty_is_zero(self):
        assert blocking_from([]) == 0

    def test_subtract_one(self):
        tasks = [Task(C=5, T=20)]
        assert blocking_from(tasks, subtract_one=True) == 4

    def test_subtract_one_never_negative(self):
        tasks = [Task(C=1, T=20)]
        assert blocking_from(tasks, subtract_one=True) == 0


class TestNonpreemptiveBlocking:
    def test_eq2_max_lp_c(self):
        ts = assign_deadline_monotonic(
            make_taskset([(1, 4), (2, 6), (7, 30), (3, 10)])
        )
        # highest-priority task blocked by longest of the rest
        assert nonpreemptive_blocking(ts, ts[0]) == 7
        # lowest-priority task has no lower tasks
        assert nonpreemptive_blocking(ts, ts[2]) == 0

    def test_middle_task(self):
        ts = assign_deadline_monotonic(make_taskset([(1, 4), (2, 6), (3, 10)]))
        assert nonpreemptive_blocking(ts, ts[1]) == 3


class TestEdfBlockingAt:
    def test_only_later_deadlines_block(self):
        ts = make_taskset([(2, 10, 4), (5, 20, 15), (3, 30, 25)])
        # at t=4: tasks with D > 4 are (5,..,15) and (3,..,25): max C-1 = 4
        assert edf_blocking_at(ts, 4) == 4
        # at t=20: only D=25 exceeds: C-1 = 2
        assert edf_blocking_at(ts, 20) == 2
        # beyond all deadlines: no blocking
        assert edf_blocking_at(ts, 100) == 0

    def test_full_c_variant(self):
        ts = make_taskset([(2, 10, 4), (5, 20, 15)])
        assert edf_blocking_at(ts, 4, subtract_one=False) == 5
