"""Unit tests for traffic generation."""

import pytest

from repro.sim.traffic import (
    ReleasePattern,
    TrafficConfig,
    staggered_offsets,
    synchronous_offsets,
)


class TestReleasePattern:
    def test_plain_periodic(self):
        p = ReleasePattern(period=10)
        assert list(p.releases(35)) == [0, 10, 20, 30]

    def test_offset(self):
        p = ReleasePattern(period=10, offset=3)
        assert list(p.releases(25)) == [3, 13, 23]

    def test_horizon_inclusive(self):
        p = ReleasePattern(period=10)
        assert list(p.releases(20)) == [0, 10, 20]

    def test_jitter_bounded_and_deterministic(self):
        p = ReleasePattern(period=10, jitter=4, seed=42)
        a = list(p.releases(200))
        b = list(p.releases(200))
        assert a == b  # deterministic
        for k, t in enumerate(a):
            assert 0 <= t - 10 * k <= 4

    def test_adversarial_jitter_first_release_only(self):
        p = ReleasePattern(period=10, jitter=4, adversarial=True)
        rel = list(p.releases(45))
        assert rel[0] == 4
        assert rel[1:] == [10, 20, 30, 40]

    def test_sporadic_minimum_separation(self):
        p = ReleasePattern(period=10, mode="sporadic", seed=7)
        rel = list(p.releases(500))
        gaps = [b - a for a, b in zip(rel, rel[1:])]
        assert all(g >= 10 for g in gaps)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReleasePattern(period=0)
        with pytest.raises(ValueError):
            ReleasePattern(period=10, offset=-1)
        with pytest.raises(ValueError):
            ReleasePattern(period=10, mode="burst")


class TestTrafficConfigs:
    def test_synchronous_all_zero_offset(self, single_master):
        cfg = synchronous_offsets(single_master)
        for m in single_master.masters:
            for s in m.streams:
                p = cfg.pattern_for(m.name, s.name)
                assert p.offset == 0
                assert p.period == s.T

    def test_synchronous_jitter_flag(self, single_master):
        m = single_master.masters[0]
        jittered = single_master.with_ttr(None)
        cfg = synchronous_offsets(single_master, jitter=True)
        for s in m.streams:
            assert cfg.pattern_for(m.name, s.name).jitter == s.J

    def test_staggered_within_period(self, factory_cell):
        cfg = staggered_offsets(factory_cell, seed=3)
        for m in factory_cell.masters:
            for s in m.streams:
                assert 0 <= cfg.pattern_for(m.name, s.name).offset < s.T

    def test_staggered_deterministic(self, factory_cell):
        a = staggered_offsets(factory_cell, seed=3)
        b = staggered_offsets(factory_cell, seed=3)
        for m in factory_cell.masters:
            for s in m.streams:
                assert (
                    a.pattern_for(m.name, s.name).offset
                    == b.pattern_for(m.name, s.name).offset
                )

    def test_missing_pattern_raises(self, single_master):
        cfg = synchronous_offsets(single_master)
        with pytest.raises(KeyError):
            cfg.pattern_for("M1", "nope")
