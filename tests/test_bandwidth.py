"""Tests for the low-priority bandwidth analysis (extension)."""

import pytest

from repro.profibus import (
    bandwidth_advantage,
    high_demand_per_rotation,
    low_priority_bandwidth,
    tcycle,
)
from repro.profibus.timing import longest_cycle
from repro.scenarios import factory_cell_network, single_master_network
from repro.sim import TokenBusConfig, simulate_token_bus


class TestHighDemand:
    def test_one_cycle_per_stream_cap(self, factory_cell):
        tc = tcycle(factory_cell)
        demand = high_demand_per_rotation(factory_cell, tc)
        # never more than one cycle per stream per rotation
        cap = sum(
            s.cycle_bits(factory_cell.phy)
            for m in factory_cell.masters
            for s in m.high_streams
        )
        assert 0 < demand <= cap

    def test_scales_with_tcycle(self, factory_cell):
        d_small = high_demand_per_rotation(factory_cell, 5_000)
        d_large = high_demand_per_rotation(factory_cell, 50_000)
        assert d_small <= d_large


class TestBandwidthReport:
    def test_budget_grows_with_ttr(self, factory_cell):
        reps = [
            low_priority_bandwidth(factory_cell, ttr)
            for ttr in (1_000, 3_000, 8_000)
        ]
        budgets = [r.low_budget_per_rotation for r in reps]
        assert budgets == sorted(budgets)

    def test_fraction_in_unit_interval(self, factory_cell):
        rep = low_priority_bandwidth(factory_cell)
        assert 0.0 <= rep.low_fraction <= 1.0

    def test_zero_at_starved_ttr(self, single_master):
        rep = low_priority_bandwidth(single_master, single_master.ring_latency())
        assert rep.low_fraction == 0.0


class TestBandwidthAdvantage:
    def test_priority_policies_buy_bandwidth(self, factory_cell):
        adv = bandwidth_advantage(factory_cell)
        assert adv["dm"] is not None and adv["fcfs"] is not None
        assert adv["dm"] > adv["fcfs"]
        assert adv["edf"] >= adv["dm"] - 1e-9

    def test_infeasible_policy_is_none(self, single_master):
        adv = bandwidth_advantage(single_master)
        assert adv["fcfs"] is None  # single-master scenario: FCFS hopeless
        assert adv["dm"] is not None


class TestGuaranteeAgainstSimulation:
    def test_observed_low_throughput_at_least_guarantee(self, factory_cell):
        """Saturating background lows must achieve at least the
        guaranteed fraction of bus time."""
        rep = low_priority_bandwidth(factory_cell)
        lap = {m.name: longest_cycle(m, factory_cell.phy)
               for m in factory_cell.masters}
        horizon = 3_000_000
        res = simulate_token_bus(
            factory_cell, horizon,
            config=TokenBusConfig(low_always_pending=lap),
        )
        low_bits = sum(
            ms.low_sent for ms in res.masters.values()
        )
        # each synthetic low cycle is the master's longest cycle; count
        # transmitted low time conservatively with the smallest one
        min_cycle = min(lap.values())
        observed_fraction = low_bits * min_cycle / horizon
        assert observed_fraction >= rep.low_fraction * 0.9  # 10% margin
