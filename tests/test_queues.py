"""Unit tests for the outgoing-queue disciplines."""

import pytest

from repro.sim.queues import (
    DMQueue,
    EDFQueue,
    FCFSQueue,
    Request,
    StackQueue,
    make_queue,
)


def _req(name, release, rel_deadline, seq):
    return Request(
        stream_name=name,
        master="M1",
        release=release,
        deadline=release + rel_deadline,
        rel_deadline=rel_deadline,
        cycle_bits=100,
        seq=seq,
    )


class TestFCFSQueue:
    def test_arrival_order(self):
        q = FCFSQueue()
        q.push(_req("b", 5, 10, 2))
        q.push(_req("a", 1, 99, 1))
        assert q.pop().stream_name == "a"
        assert q.pop().stream_name == "b"

    def test_tie_by_seq(self):
        q = FCFSQueue()
        q.push(_req("x", 5, 10, 2))
        q.push(_req("y", 5, 10, 1))
        assert q.pop().stream_name == "y"

    def test_len_bool_peek(self):
        q = FCFSQueue()
        assert not q and len(q) == 0 and q.peek() is None
        q.push(_req("a", 0, 5, 1))
        assert q and len(q) == 1 and q.peek().stream_name == "a"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FCFSQueue().pop()


class TestDMQueue:
    def test_relative_deadline_order(self):
        q = DMQueue()
        q.push(_req("lax", 0, 100, 1))
        q.push(_req("tight", 5, 10, 2))
        assert q.pop().stream_name == "tight"

    def test_static_order_ignores_release(self):
        q = DMQueue()
        q.push(_req("a", 99, 10, 1))
        q.push(_req("b", 0, 20, 2))
        assert q.pop().stream_name == "a"


class TestEDFQueue:
    def test_absolute_deadline_order(self):
        q = EDFQueue()
        q.push(_req("early-release-lax", 0, 100, 1))   # deadline 100
        q.push(_req("late-release-tight", 50, 20, 2))  # deadline 70
        assert q.pop().stream_name == "late-release-tight"

    def test_dm_and_edf_differ(self):
        # DM picks the smaller relative deadline; EDF the earlier absolute
        dm, edf = DMQueue(), EDFQueue()
        a = _req("a", 0, 50, 1)    # abs 50
        b = _req("b", 45, 10, 2)   # abs 55
        for q in (dm, edf):
            q.push(a)
            q.push(b)
        assert dm.pop().stream_name == "b"
        assert edf.pop().stream_name == "a"

    def test_drain_sorted(self):
        q = EDFQueue()
        for i, rd in enumerate([30, 10, 20]):
            q.push(_req(f"s{i}", 0, rd, i))
        assert [r.rel_deadline for r in q.drain()] == [10, 20, 30]


class TestMakeQueue:
    def test_factory(self):
        assert isinstance(make_queue("fcfs"), FCFSQueue)
        assert isinstance(make_queue("dm"), DMQueue)
        assert isinstance(make_queue("edf"), EDFQueue)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_queue("rr")


class TestStackQueue:
    def test_depth_one_overflow(self):
        s = StackQueue(depth=1)
        s.push(_req("a", 0, 5, 1))
        assert s.free == 0
        with pytest.raises(OverflowError):
            s.push(_req("b", 0, 5, 2))

    def test_fifo_within_stack(self):
        s = StackQueue(depth=2)
        s.push(_req("a", 0, 50, 1))
        s.push(_req("b", 0, 5, 2))
        assert s.pop().stream_name == "a"  # FIFO, not priority

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            StackQueue(depth=0)

    def test_peek_and_len(self):
        s = StackQueue(depth=1)
        assert s.peek() is None and not s
        s.push(_req("a", 0, 5, 1))
        assert s.peek().stream_name == "a" and len(s) == 1
