"""Tests for the arbitrary-deadline preemptive RTA (Lehoczky busy period)."""

import pytest

from repro.core import (
    Task,
    TaskSet,
    assign_deadline_monotonic,
    assign_rate_monotonic,
    make_taskset,
    preemptive_response_time,
    preemptive_response_time_arbitrary,
)
from repro.sim import simulate_uniproc


class TestLehoczkyExample:
    def test_second_instance_is_worst(self):
        # the classic (52,100) + (52,140) set: the single-instance bound
        # for the low task is 104+52 = 156? no — the first instance gives
        # 52+2*52 = 156 via ceil; the point is later instances do NOT
        # improve and the busy-period scan agrees with simulation exactly
        ts = assign_rate_monotonic(TaskSet([
            Task(C=52, T=100, D=300, name="a"),
            Task(C=52, T=140, D=300, name="b"),
        ]))
        rt = preemptive_response_time_arbitrary(ts, ts[1])
        assert rt.value == 156
        stats = simulate_uniproc(ts, 5_000, policy="fp")
        assert stats.max_response["b"] == 156

    def test_heavier_set_later_instance_dominates(self):
        # U ≈ 0.99: the busy period spans many instances and a later
        # instance of the low-priority task responds worse than the first
        ts = assign_rate_monotonic(TaskSet([
            Task(C=26, T=70, D=200, name="hi"),
            Task(C=62, T=100, D=300, name="lo"),
        ]))
        multi = preemptive_response_time_arbitrary(ts, ts[1])
        # first-instance-only recursion (bounded by D):
        single = preemptive_response_time(ts, ts[1], limit_factor=10)
        assert multi.value > single.value
        stats = simulate_uniproc(ts, 14_000, policy="fp")
        assert stats.max_response["lo"] == multi.value


class TestAgreementWithClassicRTA:
    def test_matches_when_r_below_t(self, basic_dm_taskset):
        for task in basic_dm_taskset:
            classic = preemptive_response_time(basic_dm_taskset, task)
            arb = preemptive_response_time_arbitrary(basic_dm_taskset, task)
            assert classic.value == arb.value

    def test_matches_on_random_constrained_sets(self):
        from repro.gen import random_taskset

        for seed in range(20):
            ts = assign_deadline_monotonic(
                random_taskset(4, 0.7, seed=seed, t_min=5, t_max=50)
            )
            for task in ts:
                classic = preemptive_response_time(ts, task)
                arb = preemptive_response_time_arbitrary(ts, task)
                if classic.value is not None and classic.value <= task.T:
                    assert arb.value == classic.value, (seed, task.name)


class TestSoundness:
    def test_sound_vs_simulation(self):
        import random

        from repro.gen import random_taskset

        for seed in range(10):
            base = random_taskset(3, 0.9, seed=seed, t_min=5, t_max=30)
            # stretch deadlines beyond periods
            ts = assign_rate_monotonic(TaskSet([
                Task(C=t.C, T=t.T, D=3 * t.T, name=t.name) for t in base
            ]))
            horizon = min(3 * (ts.hyperperiod() or 2_000), 20_000)
            stats = simulate_uniproc(ts, horizon, policy="fp")
            for task in ts:
                rt = preemptive_response_time_arbitrary(ts, task)
                if rt.value is not None:
                    observed = stats.max_response.get(task.name, 0)
                    assert observed <= rt.value, (seed, task.name)

    def test_overload_reports_none(self):
        ts = assign_rate_monotonic(TaskSet([
            Task(C=3, T=4, D=40, name="a"), Task(C=3, T=4, D=40, name="b"),
        ]))
        assert preemptive_response_time_arbitrary(ts, ts[1]).value is None
