"""Unit tests for the EDF message analysis (eqs. (17)-(18))."""

import pytest

from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    dm_analysis,
    edf_analysis,
    fcfs_analysis,
    tcycle,
)


def _single_master(deadlines, periods=None, ttr=2_000):
    phy = PhyParameters()
    n = len(deadlines)
    periods = periods or [100_000] * n
    streams = tuple(
        MessageStream(f"s{i}", T=periods[i], D=deadlines[i], C_bits=500)
        for i in range(n)
    )
    return Network(masters=(Master(1, streams),), phy=phy, ttr=ttr)


class TestEq17Structure:
    def test_single_stream_one_tcycle(self):
        net = _single_master([50_000])
        res = edf_analysis(net)
        assert res.response("M1", "s0").R == tcycle(net)

    def test_r_at_least_tcycle(self):
        net = _single_master([10_000, 50_000, 90_000])
        for sr in edf_analysis(net).per_stream:
            assert sr.R >= tcycle(net)

    def test_blocking_full_tcycle(self):
        # tightest-deadline stream: blocked by a later-deadline request
        # (full Tcycle, not Tcycle-1) + own cycle
        net = _single_master([10_000, 50_000])
        tc = tcycle(net)
        res = edf_analysis(net)
        assert res.response("M1", "s0").R == 2 * tc

    def test_q_is_r_minus_tcycle(self):
        net = _single_master([10_000, 50_000])
        tc = tcycle(net)
        for sr in edf_analysis(net).per_stream:
            assert sr.Q == sr.R - tc


class TestEDFvsOthers:
    def test_edf_never_worse_than_fcfs_worst_stream(self):
        net = _single_master([10_000, 50_000, 90_000])
        edf = edf_analysis(net)
        fcfs = fcfs_analysis(net)
        assert max(sr.R for sr in edf.per_stream) <= max(
            sr.R for sr in fcfs.per_stream
        )

    def test_edf_matches_dm_on_two_long_period_streams(self):
        # with two streams and huge periods, DM and EDF bounds coincide
        net = _single_master([10_000, 50_000])
        dm_rs = {sr.stream.name: sr.R for sr in dm_analysis(net).per_stream}
        edf_rs = {sr.stream.name: sr.R for sr in edf_analysis(net).per_stream}
        assert dm_rs == edf_rs

    def test_paper_headline_single_master(self, single_master):
        from repro.profibus import analyse

        assert not analyse(single_master, "fcfs").schedulable
        assert analyse(single_master, "edf").schedulable

    def test_factory_cell_headline(self, factory_cell):
        from repro.profibus import analyse

        assert not analyse(factory_cell, "fcfs").schedulable
        assert analyse(factory_cell, "dm").schedulable
        assert analyse(factory_cell, "edf").schedulable


class TestJitter:
    def test_jitter_increases_bounds(self):
        base = _single_master([10_000, 50_000])
        m = base.masters[0]
        jittered = Network(
            masters=(m.with_streams([
                m.streams[0].with_jitter(8_000), m.streams[1],
            ]),),
            phy=base.phy,
            ttr=base.ttr,
        )
        r_base = edf_analysis(base).response("M1", "s1").R
        r_jit = edf_analysis(jittered).response("M1", "s1").R
        assert r_jit >= r_base


class TestCriticalOffset:
    def test_critical_a_reported(self):
        net = _single_master([10_000, 50_000, 90_000])
        res = edf_analysis(net)
        for sr in res.per_stream:
            assert sr.critical_a is not None and sr.critical_a >= 0
