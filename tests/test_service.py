"""Tests for the resident analysis service: wire protocol, the live
daemon with concurrent clients on the shared result cache, session
statistics and graceful shutdown."""

import asyncio
import json
import socket
import threading

import pytest

from repro import api
from repro.profibus import network_to_dict
from repro.scenarios import factory_cell_network
from repro.service import (
    AnalysisServer,
    ProtocolError,
    ServiceClient,
    ServiceError,
)
from repro.service import protocol


# ---------------------------------------------------------------------------
# protocol unit tests (no sockets)
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_encode_decode_round_trip(self):
        doc = protocol.request_envelope("ping", None, 3)
        line = protocol.encode(doc)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert protocol.decode_line(line) == doc

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="unparseable"):
            protocol.decode_line(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_line(b"[1, 2]\n")

    def test_parse_request_wrong_schema(self):
        with pytest.raises(ProtocolError, match="unsupported envelope schema"):
            protocol.parse_request({"schema": "nope/v9", "op": "ping"})

    def test_parse_request_unknown_key(self):
        doc = protocol.request_envelope("ping")
        doc["extra"] = 1
        with pytest.raises(ProtocolError, match="unknown envelope key"):
            protocol.parse_request(doc)

    def test_parse_request_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.parse_request(
                {"schema": protocol.SERVICE_SCHEMA, "op": "dance"})

    def test_control_op_takes_no_request(self):
        doc = protocol.request_envelope("stats", {"schema": "x"})
        with pytest.raises(ProtocolError, match="takes no request"):
            protocol.parse_request(doc)

    def test_analysis_op_needs_request(self):
        with pytest.raises(ProtocolError, match="needs a request"):
            protocol.parse_request(
                {"schema": protocol.SERVICE_SCHEMA, "op": "analyse"})

    def test_envelope_and_request_op_must_agree(self):
        doc = protocol.request_envelope("analyse", {"op": "sweep"}, 1)
        with pytest.raises(ProtocolError, match="does not match"):
            protocol.parse_request(doc)

    def test_parse_request_happy_paths(self):
        inner = {"op": "analyse", "network": {}}
        op, rid, req = protocol.parse_request(
            protocol.request_envelope("analyse", inner, 42))
        assert (op, rid, req) == ("analyse", 42, inner)
        op, rid, req = protocol.parse_request(
            protocol.request_envelope("shutdown"))
        assert (op, rid, req) == ("shutdown", None, None)


# ---------------------------------------------------------------------------
# live-server harness
# ---------------------------------------------------------------------------

class ServerThread:
    """Run an :class:`AnalysisServer` on its own event loop in a daemon
    thread; the test thread talks to it over real sockets."""

    def __init__(self, **kwargs):
        self.server = None
        self.loop = None
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self.server = AnalysisServer(port=0, **self._kwargs)
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_stopped()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        if self.loop is not None and not self.loop.is_closed():
            try:
                self.loop.call_soon_threadsafe(self.server._stopping.set)
            except RuntimeError:
                pass  # loop already shut down (e.g. shutdown op)
        self._thread.join(timeout=15)
        assert not self._thread.is_alive(), "server thread failed to stop"

    @property
    def address(self):
        return self.server.host, self.server.port

    def client(self, timeout=30.0):
        return ServiceClient(*self.address, timeout=timeout)


def _base_doc():
    return api.AnalysisRequest(
        op="analyse", network=network_to_dict(factory_cell_network())
    ).to_dict()


def _variant_doc():
    return api.AnalysisRequest(
        op="analyse", network=network_to_dict(factory_cell_network()),
        ttr=50_000,
    ).to_dict()


# ---------------------------------------------------------------------------
# the acceptance test: concurrent clients, shared cache, offline parity
# ---------------------------------------------------------------------------

class TestConcurrentClients:
    def test_shared_cache_session_isolation_offline_parity(self):
        base, variant = _base_doc(), _variant_doc()
        offline_base = api.execute(api.AnalysisRequest.from_dict(base))
        offline_variant = api.execute(api.AnalysisRequest.from_dict(variant))

        with ServerThread() as srv:
            # warm the cache once so the concurrent duplicates below hit
            # deterministically (no first-compute race between clients)
            with srv.client() as warmup:
                warm = warmup.analyse(base)
                assert warm.cached is False

            results = {}
            errors = []

            def run_client(name, docs):
                try:
                    with srv.client() as c:
                        assert c.ping()["pong"] is True
                        results[name] = [c.analyse(d) for d in docs]
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append((name, exc))

            threads = [
                threading.Thread(target=run_client, args=("dup", [base])),
                threading.Thread(target=run_client,
                                 args=("mut", [base, variant])),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors, errors

            # verdicts are bit-identical to the offline repro.api path
            assert results["dup"][0].result == offline_base.to_dict()
            assert results["mut"][0].result == offline_base.to_dict()
            assert results["mut"][1].result == offline_variant.to_dict()

            # the duplicates hit the shared cache; the variant missed
            assert results["dup"][0].cached is True
            assert results["mut"][0].cached is True
            assert results["mut"][1].cached is False

            with srv.client() as monitor:
                stats = monitor.stats()

        cache = stats["cache"]
        assert cache["hits"] >= 2
        assert cache["misses"] == 2  # warmup base + variant
        assert cache["size"] == 2

        sessions = stats["sessions"]
        # warmup + dup + mut + monitor
        assert sessions["total_clients"] == 4
        per_client = sessions["sessions"]
        profiles = sorted(
            (s["requests"], s["cache_hits"], s["cache_misses"])
            for s in per_client.values()
        )
        # monitor: 1 stats request (not yet counted as ok when the stats
        # doc is built); warmup: 1 analyse miss; dup: ping + 1 hit;
        # mut: ping + 1 hit + 1 miss
        assert profiles == [(1, 0, 0), (1, 0, 1), (2, 1, 0), (3, 1, 1)]
        for s in per_client.values():
            assert s["errors"] == 0

    def test_value_equal_spelling_shares_cache_across_clients(self):
        base = _base_doc()
        respelled = json.loads(json.dumps(base))
        for master in respelled["network"]["masters"]:
            for stream in master["streams"]:
                stream.setdefault("J", 0)  # default made explicit
        assert respelled != base  # different spelling...
        with ServerThread() as srv:
            with srv.client() as c1:
                assert c1.analyse(base).cached is False
            with srv.client() as c2:
                reply = c2.analyse(respelled)  # ...same value key
        assert reply.cached is True


# ---------------------------------------------------------------------------
# error handling and graceful shutdown
# ---------------------------------------------------------------------------

class TestErrors:
    def test_bad_request_keeps_connection_usable(self):
        with ServerThread() as srv:
            with srv.client() as c:
                with pytest.raises(ServiceError) as exc_info:
                    c.analyse({"schema": api.API_SCHEMA, "op": "analyse",
                               "network": {"bogus": 1}})
                assert exc_info.value.error_type == "bad-request"
                # the error poisoned one response, not the session
                assert c.ping()["pong"] is True
                stats = c.stats()
            session = stats["sessions"]["sessions"]["client-1"]
            assert session["errors"] == 1

    def test_unparseable_line_reports_protocol_error(self):
        with ServerThread() as srv:
            host, port = srv.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"this is not json\n")
                line = sock.makefile("rb").readline()
            doc = json.loads(line)
            assert doc["ok"] is False
            assert doc["error"]["type"] == "protocol"


class TestShutdown:
    def test_shutdown_completes_in_flight_request(self, monkeypatch):
        """A request already computing when ``shutdown`` arrives still
        gets its (correct) response before the connection closes."""
        compute_started = threading.Event()
        release = threading.Event()
        real_execute = api.execute_request_doc

        def slow_execute(doc, workers=1):
            compute_started.set()
            assert release.wait(timeout=20), "test never released compute"
            return real_execute(doc, workers=workers)

        monkeypatch.setattr(api, "execute_request_doc", slow_execute)

        base = _base_doc()
        offline = api.execute(api.AnalysisRequest.from_dict(base)).to_dict()
        reply_box = {}

        with ServerThread() as srv:
            worker = threading.Thread(
                target=lambda: reply_box.update(
                    reply=ServiceClient(*srv.address).analyse(base)))
            worker.start()
            assert compute_started.wait(timeout=20)
            with srv.client() as control:
                assert control.shutdown() == {"stopping": True}
            release.set()
            worker.join(timeout=20)
            assert not worker.is_alive()
        # the in-flight verdict completed and matches the offline path
        assert reply_box["reply"].result == offline

    def test_shutdown_closes_idle_connections(self):
        with ServerThread() as srv:
            idle = srv.client()
            assert idle.ping()["pong"] is True
            with srv.client() as control:
                control.shutdown()
            # once the daemon has fully drained, the idle connection is
            # gone (a request racing the drain may still be served — by
            # design — so wait for the stop to complete first)
            srv._thread.join(timeout=15)
            assert not srv._thread.is_alive()
            with pytest.raises((ServiceError, OSError)):
                idle.request("ping")
            idle.close()


class TestStatsDoc:
    def test_stats_shape(self):
        with ServerThread(workers=1, cache_capacity=64) as srv:
            with srv.client() as c:
                stats = c.stats()
        assert stats["server"]["port"] == srv.server.port
        assert stats["server"]["workers"] == 1
        assert set(stats["cache"]) >= {"hits", "misses", "evictions",
                                       "size", "capacity"}
        assert stats["cache"]["capacity"] == 64
