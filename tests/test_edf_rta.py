"""Unit tests for EDF response-time analysis (eqs. (6)-(10))."""

import pytest

from repro.core import (
    Task,
    TaskSet,
    edf_response_time,
    edf_rta,
    george_test,
    make_taskset,
    processor_demand_test,
)
from repro.sim import simulate_uniproc


class TestPreemptiveEDFRTA:
    def test_worked_example(self, basic_dm_taskset):
        res = edf_rta(basic_dm_taskset, preemptive=True)
        assert [rt.value for rt in res.per_task] == [2, 4, 8]
        assert res.schedulable

    def test_single_task(self):
        ts = make_taskset([(3, 10)])
        assert edf_response_time(ts, ts[0]).value == 3

    def test_consistent_with_demand_test(self):
        from repro.gen import random_taskset

        for seed in range(20):
            ts = random_taskset(3, 0.7, seed=seed, t_min=5, t_max=40)
            rta_ok = edf_rta(ts, preemptive=True).schedulable
            pdc_ok = processor_demand_test(ts).schedulable
            assert rta_ok == pdc_ok, f"seed={seed}"

    def test_sound_vs_simulation_synchronous(self, basic_dm_taskset):
        res = edf_rta(basic_dm_taskset, preemptive=True)
        horizon = basic_dm_taskset.hyperperiod() * 3
        stats = simulate_uniproc(basic_dm_taskset, horizon, policy="edf")
        for rt in res.per_task:
            assert stats.max_response[rt.task.name] <= rt.value

    def test_sound_vs_simulation_offsets(self):
        # EDF worst case is NOT the synchronous release; sweep offsets too
        ts = make_taskset([(2, 8, 7), (3, 12, 11), (2, 20, 9)])
        res = edf_rta(ts, preemptive=True)
        assert res.schedulable
        import itertools

        for offs in itertools.product([0, 1, 3, 5], repeat=3):
            stats = simulate_uniproc(ts, 600, policy="edf", offsets=offs)
            for rt in res.per_task:
                assert stats.max_response.get(rt.task.name, 0) <= rt.value, offs

    def test_critical_a_reported(self, basic_dm_taskset):
        rt = edf_response_time(basic_dm_taskset, basic_dm_taskset[2])
        assert rt.critical_a is not None
        assert rt.critical_a >= 0


class TestNonpreemptiveEDFRTA:
    def test_worked_example(self, basic_dm_taskset):
        res = edf_rta(basic_dm_taskset, preemptive=False)
        assert [rt.value for rt in res.per_task] == [3, 5, 6]
        assert res.schedulable

    def test_blocking_full_c_variant_not_smaller(self, basic_dm_taskset):
        for task in basic_dm_taskset:
            a = edf_response_time(basic_dm_taskset, task, preemptive=False,
                                  blocking_subtract_one=True)
            b = edf_response_time(basic_dm_taskset, task, preemptive=False,
                                  blocking_subtract_one=False)
            assert b.value >= a.value

    def test_nonpreemptive_at_least_preemptive_with_blocking(self):
        # for the *shortest-deadline* task, NP adds blocking: its response
        # should not be below the preemptive one
        ts = make_taskset([(1, 10, 4), (4, 20, 20)])
        p = edf_response_time(ts, ts[0], preemptive=True).value
        np_ = edf_response_time(ts, ts[0], preemptive=False).value
        assert np_ >= p

    def test_sound_vs_simulation(self, basic_dm_taskset):
        res = edf_rta(basic_dm_taskset, preemptive=False)
        horizon = basic_dm_taskset.hyperperiod() * 3
        stats = simulate_uniproc(
            basic_dm_taskset, horizon, policy="edf", preemptive=False
        )
        for rt in res.per_task:
            assert stats.max_response[rt.task.name] <= rt.value

    def test_sound_vs_simulation_offsets(self):
        ts = make_taskset([(2, 9, 6), (3, 12, 12), (2, 15, 8)])
        res = edf_rta(ts, preemptive=False)
        import itertools

        for offs in itertools.product([0, 2, 5], repeat=3):
            stats = simulate_uniproc(
                ts, 600, policy="edf", preemptive=False, offsets=offs
            )
            for rt in res.per_task:
                assert stats.max_response.get(rt.task.name, 0) <= rt.value, offs

    def test_consistent_with_george_feasibility(self):
        # George-test feasible => NP-EDF RTA meets deadlines (both derive
        # from the same busy-period theory); check one direction
        from repro.gen import random_taskset

        for seed in range(15):
            ts = random_taskset(3, 0.5, seed=seed + 7, t_min=5, t_max=30)
            if george_test(ts).schedulable:
                assert edf_rta(ts, preemptive=False).schedulable, f"seed={seed}"


class TestOverload:
    def test_overutilized_reports_unschedulable(self):
        ts = make_taskset([(3, 4), (3, 4)])
        res = edf_rta(ts, preemptive=True)
        assert not res.schedulable
        assert res.per_task[0].value is None
