"""Unit tests for streams, masters, slaves and the network model."""

import pytest

from repro.profibus import (
    Master,
    MessageCycleSpec,
    MessageStream,
    Network,
    PhyParameters,
    Slave,
    token_pass_time,
)


class TestMessageStream:
    def test_implicit_deadline(self):
        s = MessageStream("s", T=1000)
        assert s.D == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageStream("s", T=0)
        with pytest.raises(ValueError):
            MessageStream("s", T=10, D=0)
        with pytest.raises(ValueError):
            MessageStream("s", T=10, J=-1)
        with pytest.raises(ValueError):
            MessageStream("s", T=10, C_bits=0)

    def test_cycle_bits_from_spec(self):
        phy = PhyParameters()
        s = MessageStream("s", T=1000,
                          spec=MessageCycleSpec(req_payload=0, resp_payload=0))
        from repro.profibus import cycle_time

        assert s.cycle_bits(phy) == cycle_time(s.spec, phy)

    def test_cbits_override(self):
        s = MessageStream("s", T=1000, C_bits=777)
        assert s.cycle_bits(PhyParameters()) == 777

    def test_as_task_and_token_task(self):
        phy = PhyParameters()
        s = MessageStream("s", T=1000, D=800, J=5)
        t = s.as_task(phy)
        assert (t.T, t.D, t.J, t.name) == (1000, 800, 5, "s")
        tt = s.as_token_task(4321)
        assert tt.C == 4321

    def test_with_jitter_deadline(self):
        s = MessageStream("s", T=1000)
        assert s.with_jitter(9).J == 9
        assert s.with_deadline(500).D == 500


class TestMaster:
    def test_high_low_partition(self):
        m = Master(1, (
            MessageStream("h", T=100),
            MessageStream("l", T=100, high_priority=False),
        ))
        assert [s.name for s in m.high_streams] == ["h"]
        assert [s.name for s in m.low_streams] == ["l"]
        assert m.nh == 1

    def test_duplicate_stream_names_rejected(self):
        with pytest.raises(ValueError):
            Master(1, (MessageStream("x", T=10), MessageStream("x", T=20)))

    def test_address_range(self):
        with pytest.raises(ValueError):
            Master(127)
        with pytest.raises(ValueError):
            Master(-1)

    def test_default_name(self):
        assert Master(5).name == "M5"

    def test_stream_lookup(self):
        m = Master(1, (MessageStream("x", T=10),))
        assert m.stream("x").T == 10
        with pytest.raises(KeyError):
            m.stream("y")


class TestNetwork:
    def _net(self, **kw):
        return Network(
            masters=(Master(1, (MessageStream("a", T=1000),)), Master(2)),
            slaves=(Slave(10),),
            **kw,
        )

    def test_requires_master(self):
        with pytest.raises(ValueError):
            Network(masters=())

    def test_duplicate_addresses_rejected(self):
        with pytest.raises(ValueError):
            Network(masters=(Master(1), Master(1)))
        with pytest.raises(ValueError):
            Network(masters=(Master(1),), slaves=(Slave(1),))

    def test_ring_latency(self):
        net = self._net()
        assert net.ring_latency() == 2 * token_pass_time(net.phy)

    def test_master_lookup(self):
        net = self._net()
        assert net.master(2).address == 2
        assert net.master_named("M1").address == 1
        with pytest.raises(KeyError):
            net.master(9)

    def test_ttr_handling(self):
        net = self._net()
        with pytest.raises(ValueError):
            net.require_ttr()
        net2 = net.with_ttr(5000)
        assert net2.require_ttr() == 5000
        with pytest.raises(ValueError):
            Network(masters=(Master(1),), ttr=0)

    def test_all_streams_and_counts(self):
        net = self._net()
        assert len(net.all_streams()) == 1
        assert net.high_stream_count() == 1
