"""Equation-by-equation index: every numbered equation of the paper,
the function implementing it, and a worked check.

This file doubles as documentation (see DESIGN.md §2): if you want to
know where eq. (N) lives, read ``test_eq_N`` below.
"""

import pytest

from repro.core import (
    Task,
    TaskSet,
    assign_deadline_monotonic,
    dbf,
    edf_response_time,
    edf_utilization_test,
    george_test,
    liu_layland_bound,
    make_taskset,
    nonpreemptive_blocking,
    nonpreemptive_response_time,
    processor_demand_test,
    rm_utilization_test,
    zheng_shin_test,
)
from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    dm_analysis,
    edf_analysis,
    fcfs_analysis,
    fcfs_max_feasible_ttr,
    tcycle,
    tdel,
)


@pytest.fixture
def worked():
    """(C,T) = (1,4), (2,6), (3,10) under DM — used throughout §2."""
    return assign_deadline_monotonic(make_taskset([(1, 4), (2, 6), (3, 10)]))


@pytest.fixture
def net():
    """Two-master network with simple abstract cycle lengths."""
    phy = PhyParameters()
    m1 = Master(1, (
        MessageStream("a", T=100_000, D=40_000, C_bits=500),
        MessageStream("b", T=120_000, D=80_000, C_bits=700),
    ))
    m2 = Master(2, (MessageStream("c", T=90_000, D=60_000, C_bits=600),))
    return Network(masters=(m1, m2), phy=phy, ttr=10_000)


class TestSurveyPreamble:
    def test_liu_layland_rm_bound(self, worked):
        """§2.1: ΣC/T ≤ n(2^{1/n}−1) — repro.core.utilization."""
        res = rm_utilization_test(worked)
        assert res.bound == pytest.approx(liu_layland_bound(3))
        # U = 1/4+2/6+3/10 = 0.8833 > 0.7798: the cheap test is
        # inconclusive, yet the set is RTA-schedulable — the reason
        # response-time tests are "more advantageous" (paper, §2.1)
        assert not res.schedulable
        from repro.core import preemptive_rta

        assert preemptive_rta(worked).schedulable

    def test_joseph_pandya_recursion(self, worked):
        """§2.1: rᵢ = Cᵢ + Σ⌈rᵢ/Tⱼ⌉Cⱼ — repro.core.rta_fixed."""
        from repro.core import preemptive_rta

        assert [rt.value for rt in preemptive_rta(worked).per_task] == [1, 3, 10]


class TestEq1and2:
    def test_eq_1_nonpreemptive_response(self, worked):
        """eq. (1): rᵢ = wᵢ + Cᵢ — repro.core.rta_fixed.nonpreemptive_response_time."""
        rt = nonpreemptive_response_time(worked, worked[0])
        # w = B(3) + 0 interference; r = 3 + 1 = 4
        assert rt.value == 4

    def test_eq_2_blocking(self, worked):
        """eq. (2): Bᵢ = max_{j∈lp(i)} Cⱼ — repro.core.blocking."""
        assert nonpreemptive_blocking(worked, worked[0]) == 3
        assert nonpreemptive_blocking(worked, worked[2]) == 0


class TestEq3:
    def test_eq_3_processor_demand(self, worked):
        """eq. (3): ∀t∈S dbf(t) ≤ t — repro.core.demand.processor_demand_test."""
        assert processor_demand_test(worked).schedulable
        # dbf at the worked set's deadline points
        assert dbf(worked, 4) == 1
        assert dbf(worked, 6) == 3
        assert dbf(worked, 10) == 7

    def test_eq_3_utilisation_prerequisite(self):
        """§2.2: ΣC/T ≤ 1 — repro.core.utilization.edf_utilization_test."""
        assert edf_utilization_test(make_taskset([(1, 2), (1, 2)])).schedulable


class TestEq4and5:
    def test_eq_4_zheng_shin(self, worked):
        """eq. (4): dbf(t) + max Cᵢ ≤ t — repro.core.edf_nonpreemptive."""
        assert not zheng_shin_test(worked).schedulable

    def test_eq_5_george_refinement(self, worked):
        """eq. (5): blocking only from Dᵢ > t, minus one — george_test.

        The paper's §2.2 point: eq. (5) reduces eq. (4)'s pessimism; the
        worked set demonstrates it (rejected by (4), accepted by (5)).
        """
        assert george_test(worked).schedulable


class TestEq6to8:
    def test_eq_6_7_preemptive_edf_response(self, worked):
        """eqs. (6)-(7): rᵢ(a) scan — repro.core.edf_rta (preemptive)."""
        rt = edf_response_time(worked, worked[2], preemptive=True)
        assert rt.value == 8
        assert rt.critical_a is not None

    def test_eq_8_offset_set(self, worked):
        """eq. (8): a ∈ {kTⱼ+Dⱼ−Dᵢ} ∩ [0,L] — _candidate_offsets."""
        from repro.core.busy_period import synchronous_busy_period
        from repro.core.edf_rta import _candidate_offsets

        L = synchronous_busy_period(worked)
        offsets = _candidate_offsets(worked, worked[2], L)
        assert 0 in offsets
        assert all(0 <= a <= L for a in offsets)
        # contains D_j - D_i points: e.g. for j = t0: 4-10 < 0 dropped,
        # next k: 4+4-10 < 0, 8+4-10 = 2
        assert 2 in offsets


class TestEq9and10:
    def test_eq_9_nonpreemptive_edf_response(self, worked):
        """eq. (9): busy period precedes the *start* — edf_rta (np)."""
        values = [
            edf_response_time(worked, t, preemptive=False).value
            for t in worked
        ]
        assert values == [3, 5, 6]

    def test_eq_10_synchronous_busy_period(self, worked):
        """eq. (10): L = ΣW(L) — repro.core.busy_period."""
        from repro.core import synchronous_busy_period

        assert synchronous_busy_period(worked) == 10


class TestEq11and12:
    def test_eq_11_fcfs_response(self, net):
        """eq. (11): R = nh·Tcycle — repro.profibus.fcfs."""
        res = fcfs_analysis(net)
        tc = tcycle(net)
        assert res.response("M1", "a").R == 2 * tc
        assert res.response("M2", "c").R == 1 * tc

    def test_eq_12_schedulability_condition(self, net):
        """eq. (12): Dhᵢ ≥ Rᵢ ∀ streams — NetworkAnalysis.schedulable."""
        assert fcfs_analysis(net).schedulable
        tighter = Network(
            masters=(net.masters[0].with_streams([
                net.masters[0].streams[0].with_deadline(5_000),
                net.masters[0].streams[1],
            ]), net.masters[1]),
            phy=net.phy, ttr=net.ttr,
        )
        assert not fcfs_analysis(tighter).schedulable


class TestEq13and14:
    def test_eq_13_tdel(self, net):
        """eq. (13): Tdel = Σ C_M^k — repro.profibus.timing.tdel."""
        assert tdel(net) == 700 + 600

    def test_eq_14_tcycle(self, net):
        """eq. (14): Tcycle = TTR + Tdel — repro.profibus.timing.tcycle."""
        assert tcycle(net) == 10_000 + 1_300


class TestEq15:
    def test_eq_15_ttr_setting(self, net):
        """eq. (15): TTR ≤ min(D/nh) − Tdel — fcfs_max_feasible_ttr."""
        # min(40000/2, 80000/2, 60000/1) = 20000; − 1300 = 18700
        assert fcfs_max_feasible_ttr(net) == 18_700


class TestEq16:
    def test_eq_16_dm_messages(self, net):
        """eq. (16): C → Tcycle in eq. (1) — repro.profibus.dm."""
        res = dm_analysis(net)
        tc = tcycle(net)
        # M1: 'a' (tighter D) gets blocking + own = 2 Tcycle;
        # 'b' gets interference from 'a' + own = 2 Tcycle (long periods)
        assert res.response("M1", "a").R == 2 * tc
        assert res.response("M1", "b").R == 2 * tc
        assert res.response("M2", "c").R == 1 * tc


class TestEq17and18:
    def test_eq_17_18_edf_messages(self, net):
        """eqs. (17)-(18): C → Tcycle in eqs. (9)-(10) — repro.profibus.edf."""
        res = edf_analysis(net)
        tc = tcycle(net)
        assert res.response("M1", "a").R == 2 * tc
        assert res.response("M2", "c").R == 1 * tc
        for sr in res.per_stream:
            assert sr.R >= tc  # eq. (17): R(a) ≥ Tcycle
