"""Tests for the stack-depth-k analysis (extension; E4.b counterpart)."""

import pytest

from repro.profibus import dm_analysis, stack_depth_analysis
from repro.sim import TokenBusConfig, simulate_token_bus


class TestStackDepthAnalysis:
    def test_depth_one_is_dm(self, single_master, factory_cell):
        for net in (single_master, factory_cell):
            a = stack_depth_analysis(net, 1)
            b = dm_analysis(net)
            assert [sr.R for sr in a.per_stream] == [sr.R for sr in b.per_stream]

    def test_bounds_monotone_in_depth(self, single_master):
        prev = None
        for depth in (1, 2, 3, 5):
            res = stack_depth_analysis(single_master, depth)
            rs = [sr.R if sr.R is not None else float("inf")
                  for sr in res.per_stream]
            if prev is not None:
                assert all(a >= b for a, b in zip(rs, prev))
            prev = rs

    def test_blocking_saturates_at_lp_count(self, single_master):
        # 5 streams: depth beyond 4 cannot add blocking for anyone
        a = stack_depth_analysis(single_master, 4)
        b = stack_depth_analysis(single_master, 40)
        assert [sr.R for sr in a.per_stream] == [sr.R for sr in b.per_stream]

    def test_deep_stack_breaks_schedulability(self, single_master):
        assert stack_depth_analysis(single_master, 1).schedulable
        assert not stack_depth_analysis(single_master, 2).schedulable

    def test_policy_label_and_detail(self, single_master):
        res = stack_depth_analysis(single_master, 3)
        assert res.policy == "dm-stack3"
        assert res.detail["stack_depth"] == 3

    def test_depth_validation(self, single_master):
        with pytest.raises(ValueError):
            stack_depth_analysis(single_master, 0)


class TestSoundnessVsSimulator:
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_simulated_responses_within_bounds(self, single_master, depth):
        analysis = stack_depth_analysis(single_master, depth)
        sim = simulate_token_bus(
            single_master, 2_000_000,
            config=TokenBusConfig(policy="ap-dm", stack_depth=depth),
        )
        for sr in analysis.per_stream:
            observed = sim.stream("M1", sr.stream.name).max_response
            if sr.R is not None:
                assert observed <= sr.R, (depth, sr.stream.name)
