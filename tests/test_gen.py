"""Tests for the workload generators."""

import random

import pytest

from repro.gen import (
    log_uniform_period,
    network_with_ttr_headroom,
    random_network,
    random_taskset,
    scale_to_utilization,
    uunifast,
    uunifast_discard,
)


class TestUUniFast:
    def test_sums_to_target(self):
        rng = random.Random(1)
        for n in (1, 2, 5, 20):
            utils = uunifast(n, 0.75, rng)
            assert len(utils) == n
            assert sum(utils) == pytest.approx(0.75)

    def test_nonnegative(self):
        rng = random.Random(2)
        assert all(u >= 0 for u in uunifast(10, 0.9, rng))

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            uunifast(0, 0.5, rng)
        with pytest.raises(ValueError):
            uunifast(3, -0.1, rng)

    def test_discard_respects_limit(self):
        rng = random.Random(3)
        utils = uunifast_discard(4, 2.0, rng, limit=0.9)
        assert sum(utils) == pytest.approx(2.0)
        assert all(u <= 0.9 for u in utils)

    def test_discard_impossible(self):
        rng = random.Random(4)
        with pytest.raises(ValueError):
            uunifast_discard(2, 3.0, rng, limit=1.0)


class TestPeriods:
    def test_log_uniform_in_range(self):
        rng = random.Random(5)
        for _ in range(200):
            p = log_uniform_period(rng, 10, 1000)
            assert 10 <= p <= 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            log_uniform_period(random.Random(0), 0, 10)


class TestRandomTaskset:
    def test_deterministic(self):
        a = random_taskset(5, 0.7, seed=9)
        b = random_taskset(5, 0.7, seed=9)
        assert a == b

    def test_utilization_close(self):
        ts = random_taskset(8, 0.7, seed=10, t_min=100, t_max=10_000)
        assert ts.utilization <= 0.75

    def test_constrained_deadlines(self):
        ts = random_taskset(6, 0.5, seed=11, deadline_beta=0.3)
        for t in ts:
            assert t.C <= t.D <= t.T

    def test_jitter_fraction(self):
        ts = random_taskset(4, 0.5, seed=12, jitter_frac=0.1)
        assert any(t.J > 0 for t in ts)
        for t in ts:
            assert t.J <= 0.1 * t.T

    def test_scale_to_utilization(self):
        ts = random_taskset(5, 0.3, seed=13)
        scaled = scale_to_utilization(ts, 0.8)
        assert scaled.utilization == pytest.approx(0.8, abs=0.15)


class TestRandomNetwork:
    def test_shape(self):
        net = random_network(n_masters=3, streams_per_master=4, seed=1)
        assert net.n_masters == 3
        for m in net.masters:
            assert m.nh == 4
            assert len(m.low_streams) == 1

    def test_deterministic(self):
        a = random_network(seed=2)
        b = random_network(seed=2)
        assert [s.T for m in a.masters for s in m.streams] == [
            s.T for m in b.masters for s in m.streams
        ]

    def test_deadlines_within_periods(self):
        net = random_network(seed=3)
        for m in net.masters:
            for s in m.streams:
                assert 1 <= s.D <= s.T

    def test_ttr_headroom(self):
        net = network_with_ttr_headroom(random_network(seed=4))
        assert net.ttr >= net.ring_latency()

    def test_validation(self):
        with pytest.raises(ValueError):
            random_network(n_masters=0)
