"""Unit tests for repro.core.timeops (exact time arithmetic)."""

import math
from fractions import Fraction

import pytest

from repro.core.timeops import (
    DivergedError,
    almost_equal,
    ceil_div,
    fixed_point,
    floor_div,
    hyperperiod,
    lcm_all,
    pos,
)


class TestCeilDiv:
    def test_exact_ints(self):
        assert ceil_div(7, 3) == 3
        assert ceil_div(6, 3) == 2
        assert ceil_div(0, 5) == 0
        assert ceil_div(1, 5) == 1

    def test_negative_numerator(self):
        assert ceil_div(-1, 3) == 0
        assert ceil_div(-3, 3) == -1
        assert ceil_div(-4, 3) == -1

    def test_fractions(self):
        assert ceil_div(Fraction(7, 2), Fraction(1, 2)) == 7
        assert ceil_div(Fraction(7, 2), Fraction(1, 3)) == 11

    def test_float_noise_absorbed(self):
        # 0.1 * 3 = 0.30000000000000004 must not bump the ceiling
        assert ceil_div(0.1 * 3, 0.3) == 1
        assert ceil_div(2.9999999999999996, 1.0) == 3

    def test_true_float_ceiling(self):
        assert ceil_div(3.01, 1.0) == 4
        assert ceil_div(2.5, 1.0) == 3

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(1, -2)


class TestFloorDiv:
    def test_exact_ints(self):
        assert floor_div(7, 3) == 2
        assert floor_div(6, 3) == 2
        assert floor_div(-1, 3) == -1

    def test_fractions(self):
        assert floor_div(Fraction(7, 2), Fraction(1, 2)) == 7
        assert floor_div(Fraction(10, 3), Fraction(1, 3)) == 10

    def test_float_noise_absorbed(self):
        assert floor_div(0.3 * 10, 3.0) == 1
        assert floor_div(2.9999999999999996, 3.0) == 1  # treated as 3.0

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            floor_div(1, 0)


class TestPos:
    def test_positive_passthrough(self):
        assert pos(5) == 5
        assert pos(0.5) == 0.5

    def test_clamps_negative(self):
        assert pos(-3) == 0
        assert pos(0) == 0


class TestAlmostEqual:
    def test_exact_types(self):
        assert almost_equal(3, 3)
        assert not almost_equal(3, 4)
        assert almost_equal(Fraction(1, 3), Fraction(1, 3))

    def test_float_tolerance(self):
        assert almost_equal(0.1 + 0.2, 0.3)
        assert not almost_equal(0.1, 0.2)


class TestLcmHyperperiod:
    def test_lcm_all(self):
        assert lcm_all([4, 6]) == 12
        assert lcm_all([2, 3, 5]) == 30
        assert lcm_all([7]) == 7

    def test_lcm_rejects_bad_input(self):
        with pytest.raises(ValueError):
            lcm_all([])
        with pytest.raises(ValueError):
            lcm_all([0])
        with pytest.raises(ValueError):
            lcm_all([1.5])

    def test_hyperperiod_ints(self):
        assert hyperperiod([4, 6, 10]) == 60

    def test_hyperperiod_integral_floats(self):
        assert hyperperiod([4.0, 6.0]) == 12

    def test_hyperperiod_non_integral_is_none(self):
        assert hyperperiod([4, 6.5]) is None


class TestFixedPoint:
    def test_converges_to_rta_value(self):
        # r = 3 + ceil(r/4)*1 + ceil(r/6)*2 -> the classic recursion
        from repro.core.timeops import ceil_div as cd

        def f(r):
            return 3 + cd(r, 4) * 1 + cd(r, 6) * 2

        value, its, converged = fixed_point(f, 3)
        assert converged
        assert value == f(value) == 10

    def test_limit_reports_nonconvergence(self):
        def f(r):
            return r + 1  # diverges

        value, its, converged = fixed_point(f, 0, limit=100)
        assert not converged
        assert value > 100

    def test_monotonicity_violation_raises(self):
        calls = []

        def f(r):
            calls.append(r)
            return 5 if len(calls) == 1 else 1

        with pytest.raises(ValueError):
            fixed_point(f, 0)

    def test_max_iter_guard(self):
        # converges towards, but never reaches, a fixed point within budget
        def f(r):
            return r + 0.5  # no limit given -> must hit max_iter

        with pytest.raises(DivergedError):
            fixed_point(f, 0.0, max_iter=50)

    def test_immediate_fixed_point(self):
        value, its, converged = fixed_point(lambda r: r, 7)
        assert converged and value == 7 and its == 1
