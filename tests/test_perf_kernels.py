"""Fast-path / generic-path equality — the `repro.perf` contract.

The integer kernels must produce *bit-identical* results to the generic
exact path on every all-int input: same response values, same
schedulability verdicts, same critical offsets.  These tests drive both
paths over >1000 seeded-random task sets (including jitter,
constrained-deadline and ``strict_start`` variants) plus random PROFIBUS
networks, and check the kernel primitives against exact rational
arithmetic with hypothesis.

Each path gets its own freshly-built (value-equal) inputs: results are
memoised on the immutable objects, so reusing one instance across modes
would let the second run trivially read the first run's answers.
"""

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Task,
    TaskSet,
    assign_deadline_monotonic,
    edf_rta,
    nonpreemptive_rta,
    preemptive_rta,
    synchronous_busy_period,
)
from repro.core.edf_rta import edf_response_time
from repro.core.rta_fixed import (
    nonpreemptive_start_time,
    preemptive_response_time_arbitrary,
)
from repro.core.timeops import fixed_point, fixed_point_int
from repro.perf import kernels
from repro.perf.config import (
    fast_path_disabled,
    fast_path_enabled,
    set_fast_path,
)


def random_tasks(rng, n=None, t_max=60, allow_jitter=True,
                 constrained=True):
    """Spec list for one random integer task set (used to build the set
    twice — once per path).

    Per-task utilisation is capped below ``1/n`` so the set stays
    strictly under full utilisation: at exact ``U = 1`` with near-coprime
    periods the busy period converges only at hyperperiod scale, which
    both paths handle identically but the test budget cannot afford.
    """
    n = n or rng.randint(2, 5)
    while True:
        specs = []
        budget = 0.95  # aim below full utilisation …
        for i in range(n):
            T = rng.randint(3, t_max)
            c_max = max(1, min(int(budget * T), T - 1))
            C = rng.randint(1, c_max)
            budget = max(0.01, budget - C / T)
            if constrained and rng.random() < 0.5:
                D = rng.randint(C, T)
            else:
                D = T
            J = (rng.randint(0, T // 3)
                 if allow_jitter and rng.random() < 0.4 else 0)
            specs.append((C, T, D, J))
        # … and enforce it exactly (the min-1 execution times can push a
        # draw over the float guards into hyperperiod-scale iterations).
        if sum(Fraction(c, t) for c, t, _d, _j in specs) < Fraction(99, 100):
            return specs


def build(specs):
    return TaskSet(
        Task(C=c, T=t, D=d, J=j, name=f"t{i}")
        for i, (c, t, d, j) in enumerate(specs)
    )


def rt_values(result):
    return [(rt.value, rt.critical_a) for rt in result.per_task]


class TestFixedPriorityEquality:
    """~600 random task sets through the FP analyses, both paths."""

    N_SETS = 600

    def test_preemptive_and_nonpreemptive_match_generic(self):
        rng = random.Random(20260730)
        for case in range(self.N_SETS):
            specs = random_tasks(rng)
            dm_fast = assign_deadline_monotonic(build(specs))
            dm_slow = assign_deadline_monotonic(build(specs))
            for fn in (
                preemptive_rta,
                nonpreemptive_rta,
                lambda ts: nonpreemptive_rta(ts, strict_start=False),
            ):
                fast = fn(dm_fast)
                with fast_path_disabled():
                    slow = fn(dm_slow)
                assert rt_values(fast) == rt_values(slow), (case, specs)
                assert fast.schedulable == slow.schedulable

    def test_arbitrary_deadline_matches_generic(self):
        rng = random.Random(77)
        for case in range(150):
            specs = random_tasks(rng, constrained=False)
            dm_fast = assign_deadline_monotonic(build(specs))
            dm_slow = assign_deadline_monotonic(build(specs))
            for task_idx in range(len(specs)):
                fast = preemptive_response_time_arbitrary(
                    dm_fast, dm_fast[task_idx]
                )
                with fast_path_disabled():
                    slow = preemptive_response_time_arbitrary(
                        dm_slow, dm_slow[task_idx]
                    )
                assert fast.value == slow.value, (case, specs, task_idx)

    def test_start_time_matches_generic(self):
        rng = random.Random(4242)
        for case in range(150):
            specs = random_tasks(rng)
            dm_fast = assign_deadline_monotonic(build(specs))
            dm_slow = assign_deadline_monotonic(build(specs))
            for task_idx in range(len(specs)):
                for strict in (True, False):
                    fast = nonpreemptive_start_time(
                        dm_fast, dm_fast[task_idx], strict_start=strict
                    )
                    with fast_path_disabled():
                        slow = nonpreemptive_start_time(
                            dm_slow, dm_slow[task_idx], strict_start=strict
                        )
                    if fast is None or slow is None:
                        assert fast is None and slow is None
                    else:
                        assert fast[0] == slow[0], (case, specs, task_idx)


class TestEdfEquality:
    """~400 random task sets through the EDF scans, both paths."""

    N_SETS = 400

    def test_edf_rta_matches_generic(self):
        rng = random.Random(918273)
        for case in range(self.N_SETS):
            specs = random_tasks(rng, t_max=40)
            ts_fast, ts_slow = build(specs), build(specs)
            for preemptive in (True, False):
                fast = edf_rta(ts_fast, preemptive=preemptive)
                with fast_path_disabled():
                    slow = edf_rta(ts_slow, preemptive=preemptive)
                assert rt_values(fast) == rt_values(slow), (
                    case, specs, preemptive,
                )

    def test_blocking_variants_match_generic(self):
        rng = random.Random(5150)
        for case in range(120):
            specs = random_tasks(rng, t_max=40)
            ts_fast, ts_slow = build(specs), build(specs)
            for subtract_one in (True, False):
                for idx in range(len(specs)):
                    fast = edf_response_time(
                        ts_fast, ts_fast[idx], preemptive=False,
                        blocking_subtract_one=subtract_one,
                    )
                    with fast_path_disabled():
                        slow = edf_response_time(
                            ts_slow, ts_slow[idx], preemptive=False,
                            blocking_subtract_one=subtract_one,
                        )
                    assert (fast.value, fast.critical_a) == (
                        slow.value, slow.critical_a,
                    ), (case, specs, subtract_one, idx)


class TestBusyPeriodEquality:
    def test_matches_generic(self):
        rng = random.Random(31337)
        for case in range(300):
            specs = random_tasks(rng)
            blocking = rng.choice([0, 0, rng.randint(1, 10)])
            ts_fast, ts_slow = build(specs), build(specs)
            for jitter in (False, True):
                try:
                    fast = synchronous_busy_period(
                        ts_fast, include_jitter=jitter, blocking=blocking
                    )
                except ValueError:
                    with fast_path_disabled(), pytest.raises(ValueError):
                        synchronous_busy_period(
                            ts_slow, include_jitter=jitter, blocking=blocking
                        )
                    continue
                with fast_path_disabled():
                    slow = synchronous_busy_period(
                        ts_slow, include_jitter=jitter, blocking=blocking
                    )
                assert fast == slow, (case, specs, jitter, blocking)


class TestNetworkEquality:
    """Whole-master kernels (eqs. (11)/(16)/(17)) against the staged
    TaskSet path over random networks."""

    def test_policies_match_generic(self):
        from repro.gen import random_network
        from repro.profibus import analyse, tdel

        tightness = (1.0, 0.5, 0.3, 0.15)
        for i in range(60):
            x = tightness[i % len(tightness)]

            def make():
                net = random_network(
                    n_masters=2 + i % 3,
                    streams_per_master=2 + i % 4,
                    seed=i * 37 + int(x * 100),
                    d_over_t=(x * 0.6, x),
                    payload_range=(2, 16),
                )
                return net.with_ttr(
                    max(net.ring_latency(), tdel(net) // 2)
                )

            for policy in ("fcfs", "dm", "edf"):
                fast = analyse(make(), policy)
                with fast_path_disabled():
                    slow = analyse(make(), policy)
                assert [
                    (sr.R, sr.Q, sr.critical_a) for sr in fast.per_stream
                ] == [
                    (sr.R, sr.Q, sr.critical_a) for sr in slow.per_stream
                ], (i, x, policy)
                assert fast.schedulable == slow.schedulable

    def test_jittered_streams_match_generic(self):
        from repro.gen import random_network
        from repro.profibus import analyse, tdel

        for i in range(25):

            def make():
                net = random_network(
                    n_masters=2, streams_per_master=3, seed=i,
                    d_over_t=(0.3, 0.9),
                )
                masters = tuple(
                    m.with_streams(
                        s.with_jitter(s.T // (7 + j))
                        for j, s in enumerate(m.streams)
                    )
                    for m in net.masters
                )
                net = net.__class__(
                    masters=masters, slaves=net.slaves, phy=net.phy
                )
                return net.with_ttr(
                    max(net.ring_latency(), tdel(net) // 2)
                )

            for policy in ("dm", "edf"):
                fast = analyse(make(), policy)
                with fast_path_disabled():
                    slow = analyse(make(), policy)
                assert [sr.R for sr in fast.per_stream] == [
                    sr.R for sr in slow.per_stream
                ], (i, policy)


class TestKernelPrimitives:
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 50), st.integers(1, 50), st.integers(0, 50)
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 100),
    )
    @settings(max_examples=200, deadline=None)
    def test_seed_params_never_overshoots(self, hp, base):
        """The utilisation seed is a true lower bound on the least fixed
        point of the ceiling map (checked against exact Fractions)."""
        params = kernels.seed_params(hp)
        util = sum(Fraction(c, t) for c, t, _ in hp)
        if util >= 1:
            assert params is None
            return
        seed = kernels.seed_from(params, base, 0)
        exact = (
            Fraction(base) + sum(Fraction(c * j, t) for c, t, j in hp)
        ) / (1 - util)
        assert seed == math.ceil(exact)
        # and the map at the seed does not fall below the seed: iterating
        # from it climbs to the same least fixed point the generic path
        # reaches from below.
        step = base + sum(
            -((-seed - j) // t) * c for c, t, j in hp
        )
        assert step >= seed

    @given(st.integers(0, 10**6), st.integers(1, 10**4), st.integers(1, 500))
    @settings(max_examples=200, deadline=None)
    def test_fixed_point_int_matches_generic(self, c, t, limit_scale):
        def f(x):
            return c + -((-x) // t)

        limit = limit_scale * (c + t)
        generic = fixed_point(f, c, limit=limit)
        fast = fixed_point_int(f, c, limit=limit)
        assert generic == fast

    def test_candidate_offsets_matches_generic(self):
        from repro.core.edf_rta import _candidate_offsets

        rng = random.Random(64)
        for _ in range(100):
            specs = random_tasks(rng, t_max=30)
            ts = build(specs)
            for idx in range(len(specs)):
                horizon = rng.randint(10, 200)
                generic = _candidate_offsets(ts, ts[idx], horizon)
                arrays = kernels.candidate_offsets(
                    [(t.T, t.D, t.J) for t in ts], ts[idx].D, horizon
                )
                assert generic == arrays


class TestConfigToggle:
    def test_context_manager_restores(self):
        assert fast_path_enabled()
        with fast_path_disabled():
            assert not fast_path_enabled()
            with fast_path_disabled():
                assert not fast_path_enabled()
            assert not fast_path_enabled()
        assert fast_path_enabled()

    def test_set_returns_previous(self):
        prev = set_fast_path(False)
        assert prev is True
        assert set_fast_path(True) is False
        assert fast_path_enabled()
