"""Unit tests for non-preemptive EDF feasibility (eqs. (4)-(5))."""

import pytest

from repro.core import (
    george_test,
    make_taskset,
    pessimism_gap,
    processor_demand_test,
    zheng_shin_test,
)


class TestZhengShin:
    def test_accepts_light_load(self):
        ts = make_taskset([(1, 10), (1, 20)])
        assert zheng_shin_test(ts).schedulable

    def test_blocking_is_global_longest(self):
        # eq. (4) charges the longest C even when no later deadline exists
        # (1,4),(2,6),(3,10): at t=4 demand=1, +3 blocking = 4 <= 4: passes;
        # the paper's worked set is ZS-infeasible at t=6: dbf(6)=3, +3 = 6 <= 6 ok;
        # t=10: dbf=3+2+... dbf(10)= floor(6/4)+1=2 ->2*1? compute: t0:2, t1:1*2, t2:1*3 => 7 +3 = 10 <=10
        # t=12: t0:3, t1:2*2=4, t2:3 -> 10+3=13 > 12 -> infeasible
        ts = make_taskset([(1, 4), (2, 6), (3, 10)])
        res = zheng_shin_test(ts)
        assert not res.schedulable

    def test_overutilized(self):
        assert not zheng_shin_test(make_taskset([(3, 4), (3, 4)])).schedulable


class TestGeorge:
    def test_less_pessimistic_than_zheng_shin(self):
        # the worked set is George-feasible but ZS-infeasible
        ts = make_taskset([(1, 4), (2, 6), (3, 10)])
        assert george_test(ts).schedulable
        assert not zheng_shin_test(ts).schedulable

    def test_dominance_randomized(self):
        from repro.gen import random_taskset

        for seed in range(40):
            ts = random_taskset(4, 0.6, seed=seed, t_min=5, t_max=60)
            if zheng_shin_test(ts).schedulable:
                assert george_test(ts).schedulable, f"seed={seed}"

    def test_rejects_genuinely_infeasible(self):
        # two long tasks with tight deadlines: non-preemptive blocking kills it
        ts = make_taskset([(5, 20, 5), (5, 20, 6)])
        assert not george_test(ts).schedulable

    def test_necessary_condition_vs_preemptive(self):
        # non-preemptive feasible (George) implies preemptive EDF feasible
        from repro.gen import random_taskset

        for seed in range(25):
            ts = random_taskset(3, 0.5, seed=100 + seed, t_min=5, t_max=40)
            if george_test(ts).schedulable:
                assert processor_demand_test(ts).schedulable, f"seed={seed}"


class TestPessimismGap:
    def test_gap_nonnegative(self):
        ts = make_taskset([(1, 4), (2, 6), (3, 10)])
        gap = pessimism_gap(ts)
        assert gap["max_gap"] >= 0

    def test_gap_zero_for_uniform_c_and_late_deadlines(self):
        # identical C and all deadlines beyond the horizon start: the gap is
        # C - (C-1) = 1 at points below max D, 0 above; max gap is small
        ts = make_taskset([(2, 10), (2, 12)])
        gap = pessimism_gap(ts)
        assert gap["max_gap"] <= 2

    def test_gap_grows_with_long_low_urgency_task(self):
        short = make_taskset([(1, 10, 4), (1, 12, 5), (2, 50, 50)])
        long_ = make_taskset([(1, 10, 4), (1, 12, 5), (9, 50, 50)])
        assert pessimism_gap(long_)["max_gap"] >= pessimism_gap(short)["max_gap"]
