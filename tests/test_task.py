"""Unit tests for the task / task-set model."""

import pytest

from repro.core import Task, TaskSet, make_taskset
from repro.core.priority import assign_deadline_monotonic


class TestTask:
    def test_defaults_implicit_deadline(self):
        t = Task(C=2, T=10)
        assert t.D == 10
        assert t.J == 0

    def test_explicit_deadline(self):
        t = Task(C=2, T=10, D=7)
        assert t.D == 7

    def test_utilization_and_density(self):
        t = Task(C=2, T=10, D=5)
        assert t.utilization == pytest.approx(0.2)
        assert t.density == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Task(C=0, T=10)
        with pytest.raises(ValueError):
            Task(C=1, T=0)
        with pytest.raises(ValueError):
            Task(C=1, T=10, D=0)
        with pytest.raises(ValueError):
            Task(C=1, T=10, J=-1)

    def test_with_priority_and_jitter_are_copies(self):
        t = Task(C=1, T=5, name="a")
        t2 = t.with_priority(3)
        t3 = t.with_jitter(2)
        assert t.priority is None and t2.priority == 3
        assert t.J == 0 and t3.J == 2
        assert t2.name == t3.name == "a"

    def test_frozen(self):
        t = Task(C=1, T=5)
        with pytest.raises(Exception):
            t.C = 2


class TestTaskSet:
    def test_iteration_order_preserved(self):
        ts = make_taskset([(1, 10), (2, 5)])
        assert [t.T for t in ts] == [10, 5]

    def test_len_getitem(self):
        ts = make_taskset([(1, 10), (2, 5)])
        assert len(ts) == 2
        assert ts[1].C == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskSet([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TaskSet([Task(C=1, T=2, name="x"), Task(C=1, T=3, name="x")])

    def test_utilization_sums(self):
        ts = make_taskset([(1, 4), (1, 4)])
        assert ts.utilization == pytest.approx(0.5)

    def test_by_name(self):
        ts = make_taskset([(1, 4), (2, 6)])
        assert ts.by_name("t1").C == 2
        with pytest.raises(KeyError):
            ts.by_name("zz")

    def test_hyperperiod(self):
        assert make_taskset([(1, 4), (1, 6)]).hyperperiod() == 12

    def test_hp_lp_require_priorities(self):
        ts = make_taskset([(1, 4), (2, 6)])
        with pytest.raises(ValueError):
            ts.hp(ts[0])

    def test_hp_lp_views(self):
        ts = assign_deadline_monotonic(make_taskset([(1, 4), (2, 6), (3, 10)]))
        t_mid = ts[1]
        assert [t.T for t in ts.hp(t_mid)] == [4]
        assert [t.T for t in ts.lp(t_mid)] == [10]

    def test_sorted_by_priority(self):
        ts = assign_deadline_monotonic(make_taskset([(3, 10), (1, 4)]))
        ordered = ts.sorted_by_priority()
        assert [t.T for t in ordered] == [4, 10]

    def test_map(self):
        ts = make_taskset([(1, 4), (2, 6)])
        doubled = ts.map(lambda t: Task(C=t.C * 2, T=t.T, name=t.name))
        assert [t.C for t in doubled] == [2, 4]

    def test_equality(self):
        a = make_taskset([(1, 4)])
        b = make_taskset([(1, 4)])
        assert a == b
        assert a != make_taskset([(2, 4)])


class TestMakeTaskset:
    def test_two_three_four_tuples(self):
        ts = make_taskset([(1, 4), (2, 6, 5), (3, 10, 9, "video")])
        assert ts[0].D == 4
        assert ts[1].D == 5
        assert ts[2].name == "video"

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            make_taskset([(1,)])
