"""The analyses accept int, float and Fraction time values consistently."""

from fractions import Fraction

import pytest

from repro.core import (
    Task,
    TaskSet,
    assign_deadline_monotonic,
    edf_response_time,
    nonpreemptive_rta,
    preemptive_rta,
    processor_demand_test,
    synchronous_busy_period,
)


def _as_type(cast):
    return assign_deadline_monotonic(TaskSet([
        Task(C=cast(1), T=cast(4), name="t0"),
        Task(C=cast(2), T=cast(6), name="t1"),
        Task(C=cast(3), T=cast(10), name="t2"),
    ]))


INT = _as_type(int)


class TestFloatTimes:
    def test_preemptive_rta_matches_int(self):
        fl = _as_type(float)
        assert [rt.value for rt in preemptive_rta(fl).per_task] == [
            rt.value for rt in preemptive_rta(INT).per_task
        ]

    def test_nonpreemptive_rta_matches_int(self):
        fl = _as_type(float)
        assert [rt.value for rt in nonpreemptive_rta(fl).per_task] == [
            rt.value for rt in nonpreemptive_rta(INT).per_task
        ]

    def test_demand_test_matches_int(self):
        assert processor_demand_test(_as_type(float)).schedulable == (
            processor_demand_test(INT).schedulable
        )

    def test_noisy_floats_still_exact(self):
        # values with representation noise must not flip ceilings
        ts = assign_deadline_monotonic(TaskSet([
            Task(C=0.1 * 10, T=0.4 * 10, name="a"),  # 1.0000000000000002...
            Task(C=0.2 * 10, T=0.6 * 10, name="b"),
        ]))
        res = preemptive_rta(ts)
        assert res.response("a").value == pytest.approx(1.0)
        assert res.response("b").value == pytest.approx(3.0)


class TestFractionTimes:
    def test_preemptive_rta_exact(self):
        fr = _as_type(Fraction)
        values = [rt.value for rt in preemptive_rta(fr).per_task]
        assert values == [1, 3, 10]
        assert all(isinstance(v, (int, Fraction)) for v in values)

    def test_sub_unit_times(self):
        # fractional task parameters: scaled version of the worked set
        ts = assign_deadline_monotonic(TaskSet([
            Task(C=Fraction(1, 2), T=Fraction(2), name="a"),
            Task(C=Fraction(1), T=Fraction(3), name="b"),
            Task(C=Fraction(3, 2), T=Fraction(5), name="c"),
        ]))
        values = [rt.value for rt in preemptive_rta(ts).per_task]
        # exactly half the integer worked set's responses
        assert values == [Fraction(1, 2), Fraction(3, 2), Fraction(5)]

    def test_busy_period_exact(self):
        ts = _as_type(Fraction)
        assert synchronous_busy_period(ts) == 10

    def test_edf_rta_fraction(self):
        ts = _as_type(Fraction)
        rt = edf_response_time(ts, ts[2], preemptive=True)
        assert rt.value == 8
