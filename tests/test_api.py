"""Tests for the unified ``repro.api`` facade and the shared result
cache under it."""

import json

import pytest

from repro import api
from repro.api import AnalysisRequest, AnalysisResult, ApiError
from repro.perf.cache import ResultCache
from repro.profibus import analyse, network_to_dict
from repro.scenarios import factory_cell_network


def _net_doc():
    return network_to_dict(factory_cell_network())


def _analyse_request(**overrides):
    kwargs = dict(op="analyse", network=_net_doc())
    kwargs.update(overrides)
    return AnalysisRequest(**kwargs)


class TestRequestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ApiError, match="unknown op"):
            AnalysisRequest(op="frobnicate", network=_net_doc())

    def test_unknown_policy_rejected(self):
        with pytest.raises(ApiError, match="unknown policy"):
            _analyse_request(policy="rm")

    def test_sweep_needs_param(self):
        with pytest.raises(ApiError, match="sweep_param"):
            AnalysisRequest(op="sweep", network=_net_doc())

    def test_sweep_needs_values_except_baud(self):
        with pytest.raises(ApiError, match="sweep_values"):
            AnalysisRequest(op="sweep", network=_net_doc(),
                            sweep_param="ttr")
        # baud defaults to the standard rates
        AnalysisRequest(op="sweep", network=_net_doc(), sweep_param="baud")

    def test_admission_needs_master_and_stream(self):
        with pytest.raises(ApiError, match="admission_master"):
            AnalysisRequest(op="admission", network=_net_doc())
        with pytest.raises(ApiError, match="admission_stream"):
            AnalysisRequest(op="admission", network=_net_doc(),
                            admission_master=9)

    def test_requests_compare_by_value(self):
        assert _analyse_request() == _analyse_request()
        assert _analyse_request() != _analyse_request(policy="edf")


class TestTransportForms:
    def test_to_dict_omits_defaults(self):
        doc = _analyse_request().to_dict()
        assert set(doc) == {"schema", "op", "network"}

    def test_round_trip_all_fields(self):
        request = AnalysisRequest(
            op="sweep", network=_net_doc(), policies=("dm", "edf"),
            ttr=4000, sweep_param="ttr", sweep_values=(1000, 2000),
        )
        doc = json.loads(json.dumps(request.to_dict()))
        assert AnalysisRequest.from_dict(doc) == request

    def test_from_dict_rejects_unknown_keys(self):
        doc = _analyse_request().to_dict()
        doc["polcy"] = "dm"
        with pytest.raises(ApiError, match="unknown request key"):
            AnalysisRequest.from_dict(doc)

    def test_from_dict_rejects_wrong_schema(self):
        doc = _analyse_request().to_dict()
        # lint: disable=REP003 — deliberately drifted tag: the test
        # proves from_dict rejects it
        doc["schema"] = "profibus-rt/api/v0"
        with pytest.raises(ApiError, match="unsupported request schema"):
            AnalysisRequest.from_dict(doc)

    def test_result_round_trip(self):
        result = api.execute(_analyse_request())
        doc = json.loads(json.dumps(result.to_dict()))
        assert AnalysisResult.from_dict(doc) == result


class TestAnalyse:
    def test_matches_compute_core(self):
        net = factory_cell_network()
        result = api.analyse_network(net, policy="dm")
        core = analyse(net, "dm")
        assert result.schedulable == core.schedulable
        rows = {(r["master"], r["stream"]): r["R"]
                for r in result.payload["streams"]}
        for sr in core.per_stream:
            assert rows[(sr.master, sr.stream.name)] == sr.R

    def test_ttr_override(self):
        with_override = api.analyse_network(factory_cell_network(), ttr=5000)
        assert with_override.payload["ttr"] == 5000

    def test_bad_network_is_api_error(self):
        with pytest.raises(ApiError, match="bad network document"):
            api.execute(AnalysisRequest(op="analyse", network={"bogus": 1}))


class TestSweep:
    def test_rows_and_csv_match_compute_core(self):
        from repro.profibus.sweep import rows_to_csv, ttr_sweep

        net = factory_cell_network()
        result = api.sweep_network(net, "ttr", (2000, 3000))
        rows = ttr_sweep(net, (2000, 3000))
        assert result.payload["csv"] == rows_to_csv(rows)
        assert len(result.payload["rows"]) == len(rows)


class TestAdmission:
    STREAM = {"name": "new-sensor", "T": 120_000, "D": 60_000,
              "cycle": {"req_payload": 0, "resp_payload": 8}}

    def test_harmless_stream_admitted_with_headroom(self):
        result = api.admission_check(factory_cell_network(), 2, self.STREAM)
        payload = result.payload
        assert payload["admitted"] is True
        assert result.schedulable is True
        assert payload["broken_streams"] == []
        assert payload["headroom"]["max_feasible_ttr"] is not None
        assert 0 < payload["headroom"]["deadline_tightening_limit"] <= 1

    def test_joining_stream_appears_in_after(self):
        result = api.admission_check(factory_cell_network(), 2, self.STREAM)
        after = {(r["master"], r["stream"])
                 for r in result.payload["after"]["streams"]}
        before = {(r["master"], r["stream"])
                  for r in result.payload["before"]["streams"]}
        joined = after - before
        assert len(joined) == 1
        assert next(iter(joined))[1] == "new-sensor"

    def test_hostile_stream_rejected_with_broken_list(self):
        hog = {"name": "hog", "T": 20_000, "D": 4_000,
               "cycle": {"req_payload": 128, "resp_payload": 128}}
        result = api.admission_check(factory_cell_network(), 1, hog)
        assert result.payload["admitted"] is False
        assert result.payload["headroom"]["max_feasible_ttr"] is None

    def test_fresh_master_joins_ring(self):
        result = api.admission_check(factory_cell_network(), 9, self.STREAM)
        masters = {r["master"] for r in result.payload["after"]["streams"]}
        assert "M9" in masters

    def test_duplicate_stream_name_rejected(self):
        dup = dict(self.STREAM, name="io-scan-a")
        with pytest.raises(ApiError, match="already has a stream"):
            api.admission_check(factory_cell_network(), 2, dup)


class TestCaching:
    def test_identical_requests_hit(self):
        cache = ResultCache()
        result1, hit1 = api.execute_cached(_analyse_request(), cache=cache)
        result2, hit2 = api.execute_cached(_analyse_request(), cache=cache)
        assert (hit1, hit2) == (False, True)
        assert result1 == result2
        assert cache.snapshot()["hits"] == 1

    def test_value_equal_spellings_collide(self):
        # same content, different document spelling (key order)
        doc_a = _net_doc()
        doc_b = json.loads(json.dumps(doc_a))
        doc_b["masters"] = [dict(reversed(list(m.items())))
                            for m in doc_b["masters"]]
        cache = ResultCache()
        _, miss = api.execute_cached(
            AnalysisRequest(op="analyse", network=doc_a), cache=cache)
        _, hit = api.execute_cached(
            AnalysisRequest(op="analyse", network=doc_b), cache=cache)
        assert (miss, hit) == (False, True)

    def test_different_coordinates_miss(self):
        cache = ResultCache()
        api.execute_cached(_analyse_request(), cache=cache)
        _, hit_policy = api.execute_cached(_analyse_request(policy="edf"),
                                           cache=cache)
        _, hit_ttr = api.execute_cached(_analyse_request(ttr=5000),
                                        cache=cache)
        assert hit_policy is False and hit_ttr is False

    def test_no_cache_recomputes(self):
        result1, hit1 = api.execute_cached(_analyse_request())
        result2, hit2 = api.execute_cached(_analyse_request())
        assert (hit1, hit2) == (False, False)
        assert result1 == result2

    def test_cached_and_fresh_results_identical(self):
        cache = ResultCache()
        fresh = api.execute(_analyse_request())
        api.execute(_analyse_request(), cache=cache)
        cached = api.execute(_analyse_request(), cache=cache)
        assert cached.to_dict() == fresh.to_dict()


class TestResultCache:
    def test_lru_eviction_and_counters(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)  # refreshes a
        cache.put("c", 3)                   # evicts b
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        snap = cache.snapshot()
        assert snap["evictions"] == 1
        assert snap["size"] == 2 == len(cache)

    def test_get_or_compute(self):
        cache = ResultCache()
        calls = []
        hit, value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert (hit, value) == (False, 42)
        hit, value = cache.get_or_compute("k", lambda: calls.append(1) or 43)
        assert (hit, value) == (True, 42)
        assert len(calls) == 1

    def test_clear_keeps_counters(self):
        cache = ResultCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.snapshot()["hits"] == 1


class TestExecuteRequestDoc:
    def test_dict_in_dict_out(self):
        doc = api.execute_request_doc(_analyse_request().to_dict())
        assert doc["schema"] == api.API_SCHEMA
        assert doc == api.execute(_analyse_request()).to_dict()

    def test_result_doc_json_stable(self):
        doc = api.execute_request_doc(_analyse_request().to_dict())
        assert json.loads(json.dumps(doc)) == doc
