"""Unit tests for fixed-priority response-time analysis (eqs. (1)-(2))."""

import pytest

from repro.core import (
    Task,
    TaskSet,
    assign_deadline_monotonic,
    make_taskset,
    nonpreemptive_response_time,
    nonpreemptive_rta,
    preemptive_response_time,
    preemptive_rta,
)


class TestPreemptiveRTA:
    def test_worked_example(self, basic_dm_taskset):
        res = preemptive_rta(basic_dm_taskset)
        assert [rt.value for rt in res.per_task] == [1, 3, 10]
        assert res.schedulable

    def test_highest_priority_is_own_c(self):
        ts = assign_deadline_monotonic(make_taskset([(5, 100, 10), (1, 7, 50)]))
        # the (1,7) task has the shorter deadline? no: D=10 < 50, so (5,100,10) is top
        top = res = preemptive_response_time(ts, ts[0])
        assert top.value == 5

    def test_unschedulable_reports_none(self):
        ts = assign_deadline_monotonic(make_taskset([(3, 5), (3, 6)]))
        res = preemptive_rta(ts)
        assert res.per_task[0].value == 3
        assert res.per_task[1].value is None
        assert not res.schedulable

    def test_exact_boundary_meets_deadline(self):
        # r == D is schedulable: (2,4)+(4,8) fills the whole hyperperiod
        ts = assign_deadline_monotonic(make_taskset([(2, 4), (4, 8)]))
        res = preemptive_rta(ts)
        assert res.response("t1").value == 8
        assert res.schedulable

    def test_jitter_adds_interference_and_offset(self):
        base = TaskSet([Task(C=1, T=4, name="hi"), Task(C=2, T=20, name="lo")])
        base = assign_deadline_monotonic(base)
        jittered = TaskSet(
            [Task(C=1, T=4, J=3, name="hi"), Task(C=2, T=20, name="lo")]
        )
        jittered = assign_deadline_monotonic(jittered)
        r_base = preemptive_response_time(base, base[1]).value
        r_jit = preemptive_response_time(jittered, jittered[1]).value
        assert r_jit >= r_base
        # own jitter shifts the reported response
        r_hi = preemptive_response_time(jittered, jittered[0]).value
        assert r_hi == 1 + 3

    def test_response_monotone_in_c(self):
        for c in range(1, 4):
            ts = assign_deadline_monotonic(make_taskset([(c, 10), (2, 15)]))
            r = preemptive_response_time(ts, ts[1]).value
            if c > 1:
                assert r >= prev
            prev = r


class TestNonpreemptiveRTA:
    def test_worked_example(self, basic_dm_taskset):
        res = nonpreemptive_rta(basic_dm_taskset)
        # hand computation (see conftest): r = [4, 7->miss(None? no: 7>6 => value kept)]
        values = [rt.value for rt in res.per_task]
        assert values[0] == 4
        assert values[2] == 6
        # middle task exceeds its deadline 6 -> reported as None (cap D+J-C)
        assert values[1] is None
        assert not res.schedulable

    def test_blocking_from_lowest(self):
        # two tasks: top is delayed by B = C_low
        ts = assign_deadline_monotonic(make_taskset([(1, 10, 5), (4, 50, 50)]))
        rt = nonpreemptive_response_time(ts, ts[0])
        assert rt.value == 4 + 1  # B + C

    def test_lowest_priority_no_blocking(self):
        ts = assign_deadline_monotonic(make_taskset([(1, 10, 5), (4, 50, 50)]))
        rt = nonpreemptive_response_time(ts, ts[1])
        # w = B(0) + interference of (1,10) releases in [0,w]
        # w=1 -> floor(1/10)+1 = 1 -> w=1; r = 1+4 = 5
        assert rt.value == 5

    def test_strict_start_counts_boundary_release(self):
        # interference release exactly at w must count under strict_start
        ts = assign_deadline_monotonic(
            make_taskset([(2, 5, 4), (3, 15, 15)])
        )
        strict = nonpreemptive_response_time(ts, ts[1], strict_start=True)
        loose = nonpreemptive_response_time(ts, ts[1], strict_start=False)
        assert strict.value >= loose.value

    def test_single_task_is_c(self):
        ts = assign_deadline_monotonic(make_taskset([(3, 10)]))
        assert nonpreemptive_response_time(ts, ts[0]).value == 3

    def test_jitter_in_interference(self):
        plain = assign_deadline_monotonic(TaskSet([
            Task(C=1, T=4, name="hi"), Task(C=2, T=30, name="lo"),
        ]))
        jit = assign_deadline_monotonic(TaskSet([
            Task(C=1, T=4, J=3, name="hi"), Task(C=2, T=30, name="lo"),
        ]))
        assert (
            nonpreemptive_response_time(jit, jit[1]).value
            >= nonpreemptive_response_time(plain, plain[1]).value
        )


class TestAgainstSimulation:
    """Soundness: simulated responses never exceed the analytic bounds."""

    def _check(self, ts, preemptive):
        from repro.sim import simulate_uniproc

        analysis = preemptive_rta(ts) if preemptive else nonpreemptive_rta(ts)
        horizon = (ts.hyperperiod() or 1000) * 3
        stats = simulate_uniproc(ts, horizon, policy="fp", preemptive=preemptive)
        for rt in analysis.per_task:
            observed = stats.max_response.get(rt.task.name, 0)
            if rt.value is not None:
                assert observed <= rt.value, (rt.task.name, observed, rt.value)

    def test_preemptive_sound(self, basic_dm_taskset):
        self._check(basic_dm_taskset, preemptive=True)

    def test_nonpreemptive_sound(self, basic_dm_taskset):
        self._check(basic_dm_taskset, preemptive=False)

    def test_preemptive_tight_at_critical_instant(self, basic_dm_taskset):
        # synchronous release IS the critical instant for preemptive FP:
        # the analysis should be met with equality
        from repro.sim import simulate_uniproc

        analysis = preemptive_rta(basic_dm_taskset)
        horizon = basic_dm_taskset.hyperperiod() * 2
        stats = simulate_uniproc(basic_dm_taskset, horizon, policy="fp")
        for rt in analysis.per_task:
            assert stats.max_response[rt.task.name] == rt.value
