"""Tests for the AP-level architecture: jitter inheritance & end-to-end."""

import pytest

from repro.apsched import (
    TaskModel,
    derive_stream_jitter,
    end_to_end_analysis,
    sender_response_times,
)
from repro.core import Task
from repro.profibus import Master, MessageStream, Network, PhyParameters


def _master():
    return Master(1, (
        MessageStream("fast", T=100_000, D=30_000, C_bits=500),
        MessageStream("slow", T=200_000, D=150_000, C_bits=500),
    ))


def _model(scheduler="fp"):
    # sender tasks on the application processor (times in µs-ish units)
    return TaskModel(
        sender_tasks={
            "fast": Task(C=200, T=100_000, D=2_000, name="snd-fast"),
            "slow": Task(C=900, T=200_000, D=5_000, name="snd-slow"),
        },
        scheduler=scheduler,
    )


class TestTaskModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskModel(sender_tasks={}, scheduler="rr")
        with pytest.raises(ValueError):
            TaskModel(sender_tasks={}, model="fused")


class TestSenderResponseTimes:
    def test_fp_responses(self):
        rts = sender_response_times(_model("fp"))
        # DM order: snd-fast first; r(fast)=200, r(slow)=900+200=1100
        assert rts["fast"] == 200
        assert rts["slow"] == 1100

    def test_edf_responses(self):
        rts = sender_response_times(_model("edf"))
        assert rts["fast"] <= 1100
        assert rts["slow"] <= 1100
        assert all(v is not None for v in rts.values())


class TestDeriveStreamJitter:
    def test_streams_inherit_sender_response(self):
        m2 = derive_stream_jitter(_master(), _model())
        assert m2.stream("fast").J == 200
        assert m2.stream("slow").J == 1100

    def test_unmapped_stream_keeps_jitter(self):
        m = Master(1, (
            MessageStream("fast", T=100_000, D=30_000, C_bits=500, J=42),
        ))
        model = TaskModel(sender_tasks={})
        assert derive_stream_jitter(m, model).stream("fast").J == 42

    def test_unschedulable_sender_rejected(self):
        model = TaskModel(sender_tasks={
            "fast": Task(C=900, T=1_000, D=1_000, name="hog"),
            "slow": Task(C=900, T=1_000, D=1_000, name="hog2"),
        })
        with pytest.raises(ValueError):
            derive_stream_jitter(_master(), model)


class TestEndToEnd:
    def _network(self):
        return Network(masters=(_master(),), phy=PhyParameters(), ttr=2_000)

    def test_composition(self):
        net = self._network()
        rep = end_to_end_analysis(
            net, {"M1": _model()}, policy="dm",
            delivery_delays={"M1/fast": 300},
        )
        row = rep.row("M1", "fast")
        assert row.g == 200
        assert row.d == 300
        assert row.qc is not None
        assert row.total == row.g + row.qc + row.d

    def test_all_bounded_on_feasible(self):
        rep = end_to_end_analysis(self._network(), {"M1": _model()}, policy="dm")
        assert rep.all_bounded

    def test_jitter_feeds_message_analysis(self):
        from repro.profibus import dm_analysis

        net = self._network()
        rep = end_to_end_analysis(net, {"M1": _model()}, policy="dm")
        plain = dm_analysis(net)
        # Q+C with inherited jitter >= without (slow inherits J=1100 and
        # 'fast' interference on 'slow' can only grow)
        assert rep.row("M1", "slow").qc >= plain.response("M1", "slow").R

    def test_master_without_model_uses_configured_jitter(self):
        net = self._network()
        rep = end_to_end_analysis(net, {}, policy="edf")
        assert rep.row("M1", "fast").g == 0

    def test_missing_row_raises(self):
        rep = end_to_end_analysis(self._network(), {}, policy="dm")
        with pytest.raises(KeyError):
            rep.row("M1", "zz")
