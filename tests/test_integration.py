"""Cross-module integration tests: the full paper pipeline end to end."""

import pytest

from repro.apsched import TaskModel, end_to_end_analysis
from repro.core import Task
from repro.gen import network_with_ttr_headroom, random_network
from repro.profibus import analyse, max_feasible_ttr, tcycle
from repro.scenarios import factory_cell_network
from repro.sim import (
    TokenBusConfig,
    simulate_token_bus,
    staggered_offsets,
    validate_network,
)


class TestFullPipeline:
    """§3 → §4 → validation, as a user would run it."""

    def test_derive_ttr_then_validate(self, factory_cell):
        # 1. pick the policy and derive the largest feasible TTR
        best = max_feasible_ttr(factory_cell, "dm")
        net = factory_cell.with_ttr(best)
        # 2. analysis says schedulable at that TTR
        analysis = analyse(net, "dm")
        assert analysis.schedulable
        # 3. simulation stays within bounds and misses nothing
        rep = validate_network(net, "dm", horizon=2_000_000)
        assert rep.all_sound
        sim = simulate_token_bus(
            net, 2_000_000, config=TokenBusConfig(policy="ap-dm")
        )
        assert not sim.any_miss

    def test_fcfs_miss_predicted_and_observed(self, factory_cell):
        # FCFS analysis predicts a miss for axis-setpoint; under
        # adversarial offsets the simulator can realise a miss too
        analysis = analyse(factory_cell, "fcfs")
        assert not analysis.response("cell", "axis-setpoint").schedulable
        # find an offset assignment that makes the simulator miss
        missed = False
        for seed in range(8):
            sim = simulate_token_bus(
                factory_cell,
                2_000_000,
                traffic=staggered_offsets(factory_cell, seed=seed),
                config=TokenBusConfig(policy="stock-fcfs"),
            )
            if sim.streams["cell/axis-setpoint"].missed:
                missed = True
                break
        # (not guaranteed — the analytic worst case needs exact adversarial
        # phasing — but the DM fix below must hold regardless)
        dm_sim = simulate_token_bus(
            factory_cell, 2_000_000, config=TokenBusConfig(policy="ap-dm")
        )
        assert dm_sim.streams["cell/axis-setpoint"].missed == 0

    def test_end_to_end_with_derived_ttr(self, factory_cell):
        ms = 1500
        model = TaskModel(sender_tasks={
            "axis-setpoint": Task(C=300, T=50 * ms, D=5 * ms, name="snd"),
        })
        rep = end_to_end_analysis(factory_cell, {"cell": model}, policy="edf")
        row = rep.row("cell", "axis-setpoint")
        assert row.total is not None
        assert row.qc >= tcycle(factory_cell)


class TestRandomNetworksEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_analysis_sim_agreement(self, seed):
        net = network_with_ttr_headroom(
            random_network(n_masters=3, streams_per_master=3, seed=seed)
        )
        for policy in ("fcfs", "dm", "edf"):
            rep = validate_network(net, policy, horizon=1_500_000)
            assert rep.all_sound, (seed, policy)

    @pytest.mark.parametrize("seed", range(4))
    def test_policy_dominance_on_max_ttr(self, seed):
        net = random_network(n_masters=2, streams_per_master=3, seed=seed + 50)
        fcfs = max_feasible_ttr(net, "fcfs")
        dm = max_feasible_ttr(net, "dm")
        if fcfs is not None:
            assert dm is not None and dm >= fcfs


class TestConsistencyAcrossLayers:
    def test_message_analysis_equals_core_on_token_tasks(self, factory_cell):
        """The §4.3 substitution is literal: running the core NP-RTA on
        C→Tcycle tasks must equal the profibus DM analysis."""
        from repro.core import TaskSet, assign_deadline_monotonic
        from repro.core.rta_fixed import nonpreemptive_response_time
        from repro.profibus import dm_analysis

        tc = tcycle(factory_cell)
        res = dm_analysis(factory_cell)
        for master in factory_cell.masters:
            if not master.high_streams:
                continue
            ts = assign_deadline_monotonic(
                TaskSet(s.as_token_task(tc) for s in master.high_streams)
            )
            for idx, s in enumerate(master.high_streams):
                rt = nonpreemptive_response_time(ts, ts[idx])
                assert res.response(master.name, s.name).R == rt.value
