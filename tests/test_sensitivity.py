"""Tests for the sensitivity analysis (critical scaling / breakdown U)."""

from fractions import Fraction

import pytest

from repro.core import (
    breakdown_utilization,
    critical_scaling_factor,
    make_taskset,
    preemptive_rta,
    processor_demand_test,
    scale_execution_times,
)
from repro.core.priority import assign_deadline_monotonic


def _edf_ok(ts):
    return processor_demand_test(ts).schedulable


def _fp_ok(ts):
    return preemptive_rta(assign_deadline_monotonic(ts)).schedulable


class TestScaleExecutionTimes:
    def test_doubling(self):
        ts = make_taskset([(1, 10), (3, 20)])
        scaled = scale_execution_times(ts, Fraction(2))
        assert [t.C for t in scaled] == [2, 6]

    def test_rounds_up_never_optimistic(self):
        ts = make_taskset([(3, 10)])
        scaled = scale_execution_times(ts, Fraction(1, 2))
        assert scaled[0].C == 2  # ceil(1.5)

    def test_floor_at_one(self):
        ts = make_taskset([(1, 10)])
        scaled = scale_execution_times(ts, Fraction(1, 100))
        assert scaled[0].C == 1

    def test_rejects_nonpositive(self):
        ts = make_taskset([(1, 10)])
        with pytest.raises(ValueError):
            scale_execution_times(ts, Fraction(0))


class TestCriticalScalingFactor:
    def test_edf_scales_to_full_utilization(self):
        # U = 0.5 under EDF with D=T: critical factor ≈ 2
        ts = make_taskset([(1, 4), (1, 4)])
        alpha = critical_scaling_factor(ts, _edf_ok)
        assert alpha is not None
        assert Fraction(15, 8) <= alpha <= Fraction(2)

    def test_schedulable_at_reported_factor(self):
        ts = make_taskset([(1, 5), (2, 10), (2, 20)])
        alpha = critical_scaling_factor(ts, _edf_ok)
        assert _edf_ok(scale_execution_times(ts, alpha))

    def test_overloaded_set_returns_none(self):
        # even at the smallest probe every C stays >= 1 and the deadline
        # of 1 cannot hold both tasks
        ts = make_taskset([(5, 6, 1), (5, 6, 1)])
        assert critical_scaling_factor(ts, _edf_ok) is None

    def test_fp_factor_not_above_edf(self):
        # EDF is optimal: its critical factor dominates fixed priority
        ts = make_taskset([(2, 8), (3, 12), (1, 20)])
        a_fp = critical_scaling_factor(ts, _fp_ok)
        a_edf = critical_scaling_factor(ts, _edf_ok)
        assert a_fp is not None and a_edf is not None
        assert a_fp <= a_edf

    def test_upper_cap_respected(self):
        ts = make_taskset([(1, 1000)])
        alpha = critical_scaling_factor(ts, _edf_ok, upper=Fraction(8))
        assert alpha == Fraction(8)

    def test_precision_validation(self):
        ts = make_taskset([(1, 10)])
        with pytest.raises(ValueError):
            critical_scaling_factor(ts, _edf_ok, precision=Fraction(0))


class TestBreakdownUtilization:
    def test_edf_breakdown_near_one(self):
        ts = make_taskset([(1, 4), (1, 8), (1, 16)])
        b = breakdown_utilization(ts, _edf_ok)
        assert b is not None
        assert 0.85 <= b <= 1.0

    def test_none_when_hopeless(self):
        ts = make_taskset([(5, 6, 1), (5, 6, 1)])
        assert breakdown_utilization(ts, _edf_ok) is None
