"""Known-bad generator: module-level RNG instead of a threaded one."""

import random


def random_period():
    # BUG: hidden global RNG state — instances stop being pure
    # functions of (seed, family, index).
    return random.randint(10, 10_000)
