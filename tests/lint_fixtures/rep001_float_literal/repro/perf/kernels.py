"""Known-bad kernel: float literal and float-returning math call."""

import math

SLACK_FACTOR = 0.97


def padded_bound(x):
    # BUG: math.sqrt returns a float inside a kernel-critical module.
    return math.sqrt(x) * SLACK_FACTOR
