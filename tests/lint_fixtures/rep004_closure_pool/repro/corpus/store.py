"""Known-bad pool use: a closure shipped to process-pool workers."""

from ..perf.batch import pooled_imap


def check_all(entries, tolerance, workers):
    # BUG: the nested def closes over `tolerance` and cannot pickle.
    def check_one(entry):
        return abs(entry) <= tolerance

    return list(pooled_imap(check_one, entries, workers=workers))
