"""Known-bad schema use: restating a registered tag as a literal."""

# BUG: duplicates repro.schemas.API_SCHEMA — the next version bump
# misses this copy.
API_SCHEMA = "profibus-rt/api/v1"
