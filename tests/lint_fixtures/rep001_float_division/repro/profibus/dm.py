"""Known-bad kernel: eq. (16) drifts into true division."""


def dm_bound(total, n_streams):
    # BUG: '/' yields a float; one rounded intermediate and the
    # fast/generic/vectorized bit-equality contract is gone.
    return total / n_streams
