"""Known-bad service module: a coroutine reaches blocking file IO
through a sync helper, with no executor hop."""


def _load_state(path):
    # Blocking primitive, two frames below the event loop.
    with open(path, "rb") as fh:
        return fh.read()


def _warm_cache(path):
    return _load_state(path)


async def handle_client(path):
    # BUG: stalls every other client of the event loop while the file
    # is read; should hop through run_in_executor / to_thread.
    return _warm_cache(path)
