"""Known-bad fuzz helper: wall-clock hidden one call away from the
family generators (outside REP002's per-file scope)."""

import time


def fresh_salt():
    # The impurity the generator transitively reaches.
    return int(time.time())
