"""Known-bad family generator: pure on its face, impure transitively.

The file itself contains no RNG/wall-clock syntax, so the per-file
determinism rule passes it; only the interprocedural pass sees that
``fresh_salt`` reads the clock.
"""

from .helpers import fresh_salt


def generate_instance(seed, family, index):
    # BUG: the instance depends on when it was generated, not only on
    # (seed, family, index).
    return {"seed": seed, "family": family, "index": index,
            "salt": fresh_salt()}
