"""The refactored module a stale mutant seam still points into."""


def dm_response_times(master, tc):
    return []
