"""Known-bad mutant catalogue: a seam the refactor left dangling."""

from contextlib import contextmanager


@contextmanager
def _patched(*patches):
    yield


def _stale_mutant():
    from ..profibus import dm as dm_mod

    # BUG: dm.py renamed this attribute; setattr would still "work",
    # the mutant would mutate nothing, and the harness would go
    # vacuous without failing.
    return _patched((dm_mod, "dm_response_times_legacy", None))
