"""Known-bad api use: mutating a frozen request after construction."""

from repro.api import AnalysisRequest


def escalate(doc):
    req = AnalysisRequest(op="analyse", network=doc)
    # BUG: frozen instances hash and cache by value; in-place mutation
    # corrupts every value-keyed structure holding this request.
    object.__setattr__(req, "policy", "edf")
    req.refined = True
    return req
