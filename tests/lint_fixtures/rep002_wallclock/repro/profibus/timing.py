"""Known-bad analysis module: wall-clock and environment reads."""

import os
import time


def stamped_tcycle(tc):
    # BUG: wall-clock read inside the deterministic core.
    return {"tcycle": tc, "at": time.time()}


def configured_ttr(default):
    # BUG: analysis result depends on the process environment.
    return int(os.environ.get("TTR_OVERRIDE", default))
