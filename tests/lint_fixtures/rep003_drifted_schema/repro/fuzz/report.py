"""Known-bad schema use: version drifted from the registry."""

# BUG: the registry says profibus-rt/fuzz/v2; this module silently
# kept emitting v1 documents.
FUZZ_SCHEMA = "profibus-rt/fuzz/v1"


def report_doc():
    return {"schema": FUZZ_SCHEMA}
