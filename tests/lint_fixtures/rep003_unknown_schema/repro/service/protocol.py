"""Known-bad schema use: a tag nobody registered."""


def telemetry_doc():
    # BUG: unknown schema family — consumers cannot validate it.
    return {"schema": "profibus-rt/telemetry/v1"}
