"""Known-bad kernel module: all-int on its face, but it calls a helper
whose return value carries a float — the exact cross-module hole the
per-file REP001 pass cannot see."""

from .timing import scale_budget


def dm_bound(tc, n):
    # BUG: scale_budget -> slack_margin -> float literal 1.5; the float
    # flows back into the exact-arithmetic kernel.
    return scale_budget(tc, n) + tc
