"""Known-bad helper module: float-producing helpers outside the
kernel-critical set (so REP001 cannot see them)."""


def slack_margin(tc):
    # The float literal that starts the taint: one hop deeper than the
    # function the kernel module actually calls.
    return tc * 1.5


def scale_budget(tc, n):
    # Tainted transitively: returns a value derived from slack_margin.
    return slack_margin(tc) + n
