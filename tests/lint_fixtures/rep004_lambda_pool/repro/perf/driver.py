"""Known-bad pool use: a lambda shipped to process-pool workers."""

from .batch import pooled_map


def double_all(items, workers):
    # BUG: lambdas cannot pickle; this passes every workers=1 test and
    # explodes on the first real pooled run.
    return pooled_map(lambda x: x * 2, items, workers=workers)
