"""Known-bad pool use REP004 cannot see: the submitted callable *is* a
module-level def, but it calls a name bound only at runtime.

``configure()`` installs ``handler`` via ``global`` — in the parent
process, after import.  A pool worker re-imports this module fresh and
finds no ``handler`` at all: the submission detonates remotely with a
``NameError`` the per-file pickle rule is structurally blind to.
"""

from ..perf.batch import pooled_map


def configure(fn):
    global handler
    handler = fn


def check_entry(entry):
    # BUG: `handler` has no module-level binding a worker import would
    # provide; it exists only because configure() ran in the parent.
    return handler(entry)


def check_all(entries, workers):
    return list(pooled_map(check_entry, entries, workers=workers))
