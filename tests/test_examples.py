"""Smoke tests: every example script runs cleanly and prints its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "token cycle breakdown" in out
    assert "FCFS" in out and "DM" in out and "EDF" in out
    assert "schedulable=False" in out  # FCFS misses
    assert "schedulable=True" in out   # DM/EDF pass


def test_factory_cell():
    out = _run("factory_cell.py")
    assert "deadline miss" in out
    assert "FCFS  schedulable: False" in out
    assert "DM    schedulable: True" in out
    assert "larger TTR than FCFS" in out


def test_fcfs_vs_priority():
    out = _run("fcfs_vs_priority.py")
    # the sweep must contain a row where FCFS fails but DM passes
    rows = [l for l in out.splitlines() if "|" in l]
    assert any(("no" in r) and ("yes" in r) for r in rows)


def test_simulation_validation():
    out = _run("simulation_validation.py")
    assert out.count("all bounds sound: True") == 3
    assert "sound" in out.rsplit("token-rotation stress", 1)[1]


def test_end_to_end_delay():
    out = _run("end_to_end_delay.py")
    assert "release jitter" in out
    assert "end-to-end bounds" in out
    assert "axis-setpoint" in out


def test_priority_rules_jitter():
    out = _run("priority_rules_jitter.py")
    assert "miss" in out
    assert "schedulable: False" in out
    assert out.count("schedulable: True") == 3
