"""Shared fixtures: canonical task sets and networks used across tests."""

from __future__ import annotations

import pytest

from repro.core import Task, TaskSet, assign_deadline_monotonic, make_taskset
from repro.scenarios import (
    factory_cell_network,
    paper_illustration_network,
    single_master_network,
)


@pytest.fixture
def basic_dm_taskset() -> TaskSet:
    """The worked example used throughout the core tests.

    DM order: t0 (1,4,4) > t1 (2,6,6) > t2 (3,10,10).
    Hand-computed references:
      preemptive RTA:      r = [1, 3, 10]
      non-preemptive (strict start): w = [3, 5, 3] → r = [4, 7, 6]
      EDF preemptive RTA:  r = [2, 4, 8]
      EDF non-preemptive:  r = [3, 5, 6]
    """
    return assign_deadline_monotonic(make_taskset([(1, 4), (2, 6), (3, 10)]))


@pytest.fixture
def harmonic_taskset() -> TaskSet:
    """Harmonic set at exactly U = 1 (schedulable under EDF, D=T)."""
    return assign_deadline_monotonic(make_taskset([(1, 2), (1, 4), (2, 8)]))


@pytest.fixture
def factory_cell():
    return factory_cell_network()


@pytest.fixture
def single_master():
    return single_master_network()


@pytest.fixture
def illustration():
    return paper_illustration_network().with_ttr(3000)
