"""Tests for the trace monitoring mode (`repro.monitor`).

The load-bearing property is **parity**: over an untruncated native
trace of a run, the monitor's reconstruction must be bit-identical, row
for row, to the in-process :func:`validate_network` report of the same
run — same observed responses, same pending ages, same verdicts, same
TRR statistics.  Everything else (ingestion formats, degradation,
api/CLI transport) is checked around that core.
"""

import io
import json

import pytest

from repro import api
from repro.monitor import (
    IngestedTrace,
    MonitorReport,
    TraceFormatError,
    TraceMonitor,
    event_from_doc,
    event_to_doc,
    master_verdict,
    monitor_trace,
    observed_worst_responses,
    read_trace,
    trace_doc,
    trace_from_doc,
    validation_row_doc,
    write_trace_jsonl,
)
from repro.schemas import MONITOR_SCHEMA, TRACE_SCHEMA
from repro.sim import (
    CYCLE_END,
    CYCLE_START,
    RELEASE,
    TOKEN_ARRIVAL,
    BusEvent,
    BusTrace,
    TokenBusConfig,
    validate_network,
)
from repro.sim.validate import _POLICY_TO_SIM

HORIZON = 100_000


def _traced_validate(net, policy, horizon=HORIZON, **cfg_kwargs):
    """Run the simulator with a tracer attached; return the offline
    validation report and the recorded trace."""
    tracer = BusTrace(max_events=1_000_000)
    cfg = TokenBusConfig(policy=_POLICY_TO_SIM[policy], tracer=tracer,
                         **cfg_kwargs)
    report = validate_network(net, policy, horizon, config=cfg)
    return report, tracer


def _row_docs(report):
    return {r.name: validation_row_doc(r) for r in report.rows}


# ---------------------------------------------------------------- parity

class TestMonitoringParity:
    @pytest.mark.parametrize("policy", ["fcfs", "dm", "edf"])
    def test_roundtrip_rows_bit_identical(self, factory_cell, policy):
        # sim -> export JSONL -> ingest -> monitor == offline validate
        ref, tracer = _traced_validate(factory_cell, policy)
        buf = io.StringIO()
        write_trace_jsonl(tracer, buf, horizon=HORIZON)
        buf.seek(0)
        ingested = read_trace(buf)
        assert ingested.source_format == "native"
        assert ingested.horizon == HORIZON and ingested.dropped == 0
        report = monitor_trace(factory_cell, ingested, policy)
        assert _row_docs(report) == _row_docs(ref)

    @pytest.mark.parametrize("policy", ["fcfs", "dm", "edf"])
    def test_single_master_parity(self, single_master, policy):
        ref, tracer = _traced_validate(single_master, policy)
        report = monitor_trace(
            single_master, trace_from_doc(trace_doc(tracer, horizon=HORIZON)),
            policy,
        )
        assert _row_docs(report) == _row_docs(ref)

    def test_illustration_parity(self, illustration):
        ref, tracer = _traced_validate(illustration, "dm")
        report = monitor_trace(
            illustration, trace_from_doc(trace_doc(tracer, horizon=HORIZON)),
            "dm",
        )
        assert _row_docs(report) == _row_docs(ref)

    def test_trr_statistics_match(self, factory_cell):
        ref, tracer = _traced_validate(factory_cell, "dm")
        report = monitor_trace(
            factory_cell, trace_from_doc(trace_doc(tracer, horizon=HORIZON)),
            "dm",
        )
        assert (report.detail["max_trr_observed"]
                == ref.detail["max_trr_observed"])
        assert (report.detail["tcycle_bound"]
                == ref.detail["tcycle_bound"])

    def test_pending_ages_match(self, factory_cell):
        # A short horizon leaves requests in flight/queued; their ages
        # must be reconstructed from unmatched releases exactly.
        ref, tracer = _traced_validate(factory_cell, "dm", horizon=9_000)
        report = monitor_trace(
            factory_cell, trace_from_doc(trace_doc(tracer, horizon=9_000)),
            "dm",
        )
        assert _row_docs(report) == _row_docs(ref)
        assert any(r.unfinished for r in report.rows)  # the case is exercised

    def test_stats_after_filter_matches(self, factory_cell):
        cutoff = 30_000
        ref, tracer = _traced_validate(factory_cell, "dm",
                                       stats_after=cutoff)
        report = monitor_trace(
            factory_cell, trace_from_doc(trace_doc(tracer, horizon=HORIZON)),
            "dm", stats_after=cutoff,
        )
        assert _row_docs(report) == _row_docs(ref)

    def test_incremental_feeding_equals_one_shot(self, factory_cell):
        _, tracer = _traced_validate(factory_cell, "dm")
        one_shot = monitor_trace(
            factory_cell, IngestedTrace(events=list(tracer.events),
                                        horizon=HORIZON), "dm",
        )
        mon = TraceMonitor(factory_cell, "dm")
        for event in tracer.events[:100]:
            mon.feed(event)
        mon.report()  # snapshots must not disturb the reconstruction
        for event in tracer.events[100:]:
            mon.feed(event)
        assert (_row_docs(mon.report(horizon=HORIZON))
                == _row_docs(one_shot))


# ------------------------------------------------------------- ingestion

class TestTraceIngestion:
    def test_event_doc_roundtrip(self):
        e = BusEvent(time=42, kind=CYCLE_START, master="M1", stream="s",
                     high_priority=False, value=7)
        assert event_from_doc(event_to_doc(e)) == e

    def test_trace_doc_roundtrip(self, single_master):
        _, tracer = _traced_validate(single_master, "dm")
        doc = trace_doc(tracer, horizon=HORIZON)
        assert doc["schema"] == TRACE_SCHEMA
        ingested = trace_from_doc(json.loads(json.dumps(doc)))
        assert ingested.events == list(tracer.events)
        assert ingested.horizon == HORIZON
        assert ingested.to_doc() == doc

    def test_native_jsonl_export_deterministic(self, single_master):
        _, tracer = _traced_validate(single_master, "dm")
        a, b = io.StringIO(), io.StringIO()
        write_trace_jsonl(tracer, a, horizon=HORIZON)
        write_trace_jsonl(tracer, b, horizon=HORIZON)
        assert a.getvalue() == b.getvalue()
        header = json.loads(a.getvalue().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["dropped"] == 0

    def test_external_jsonl_without_header(self):
        lines = "\n".join(
            json.dumps({"time": t, "kind": k, "master": "M1", "stream": "s"})
            for t, k in [(0, RELEASE), (5, CYCLE_START), (9, CYCLE_END)]
        )
        ingested = read_trace(io.StringIO(lines))
        assert ingested.source_format == "external-jsonl"
        assert ingested.horizon is None and ingested.dropped == 0
        assert [e.kind for e in ingested.events] == [
            RELEASE, CYCLE_START, CYCLE_END,
        ]

    def test_external_csv(self):
        csv_text = (
            "time,kind,master,stream,high_priority,value\n"
            "0,release,M1,s,1,0\n"
            "5,cycle_start,M1,s,true,4\n"
            "9,cycle_end,M1,s,TRUE,4\n"
        )
        ingested = read_trace(io.StringIO(csv_text))
        assert ingested.source_format == "external-csv"
        assert [e.time for e in ingested.events] == [0, 5, 9]
        assert all(e.high_priority for e in ingested.events)

    def test_csv_minimal_columns(self):
        ingested = read_trace(io.StringIO(
            "time,kind,master\n0,token_arrival,M1\n"
        ), fmt="csv")
        assert ingested.events == [
            BusEvent(time=0, kind=TOKEN_ARRIVAL, master="M1"),
        ]

    def test_csv_parity_with_native(self, single_master):
        ref, tracer = _traced_validate(single_master, "dm")
        out = io.StringIO()
        out.write("time,kind,master,stream,high_priority,value\n")
        for e in tracer.events:
            out.write(f"{e.time},{e.kind},{e.master},{e.stream},"
                      f"{int(e.high_priority)},{e.value}\n")
        out.seek(0)
        ingested = read_trace(out)
        report = monitor_trace(single_master, ingested, "dm",
                               horizon=HORIZON)
        assert _row_docs(report) == _row_docs(ref)

    def test_file_roundtrip(self, tmp_path, single_master):
        _, tracer = _traced_validate(single_master, "dm")
        path = tmp_path / "run.jsonl"
        write_trace_jsonl(tracer, path, horizon=HORIZON)
        ingested = read_trace(path)
        assert ingested.events == list(tracer.events)

    # -- refusals ---------------------------------------------------------
    def test_unknown_kind_refused(self):
        with pytest.raises(TraceFormatError, match="unknown event kind"):
            event_from_doc({"time": 0, "kind": "frame", "master": "M1"})

    def test_unknown_key_refused(self):
        with pytest.raises(TraceFormatError, match="unknown event key"):
            event_from_doc({"time": 0, "kind": RELEASE, "master": "M1",
                            "color": "red"})

    def test_float_time_refused(self):
        with pytest.raises(TraceFormatError, match="integer"):
            event_from_doc({"time": 1.5, "kind": RELEASE, "master": "M1"})

    def test_missing_master_refused(self):
        with pytest.raises(TraceFormatError, match="missing key"):
            event_from_doc({"time": 0, "kind": RELEASE})

    def test_wrong_schema_refused(self):
        with pytest.raises(TraceFormatError, match="unsupported trace schema"):
            trace_from_doc({"schema": "profibus-rt/trace/v0", "events": []})

    def test_unknown_csv_column_refused(self):
        with pytest.raises(TraceFormatError, match="unknown CSV column"):
            read_trace(io.StringIO("time,kind,master,color\n"), fmt="csv")

    def test_empty_trace_refused(self):
        with pytest.raises(TraceFormatError, match="empty trace"):
            read_trace(io.StringIO(""))

    def test_unsniffable_refused(self):
        with pytest.raises(TraceFormatError, match="auto-detect"):
            read_trace(io.StringIO("hello world\n"))


# ------------------------------------------------------------ degradation

class TestDegradedVerdicts:
    def test_truncated_trace_degrades_rows(self, factory_cell):
        tracer = BusTrace(max_events=300)  # force truncation
        cfg = TokenBusConfig(policy=_POLICY_TO_SIM["dm"], tracer=tracer)
        validate_network(factory_cell, "dm", HORIZON, config=cfg)
        assert tracer.truncated
        report = monitor_trace(
            factory_cell, trace_from_doc(trace_doc(tracer, horizon=HORIZON)),
            "dm",
        )
        assert report.detail["truncated"] is True
        assert report.detail["dropped"] == tracer.dropped
        assert report.degraded
        assert all(r.verdict in ("degraded", "unsound") for r in report.rows)
        assert not report.all_sound

    def test_unsound_dominates_degraded(self, single_master):
        # An observed violation inside the recorded window is conclusive
        # even when the trace was cut off afterwards.
        analysis_streams = {"M1/s0"}
        events = [
            BusEvent(time=0, kind=RELEASE, master="M1", stream="s0"),
            BusEvent(time=10 ** 9, kind=CYCLE_END, master="M1", stream="s0"),
        ]
        mon = TraceMonitor(single_master, "dm")
        assert analysis_streams <= set(
            r.name for r in mon.report().rows
        )
        mon.note_dropped(5)
        mon.feed_all(events)
        row = mon.report().row("M1/s0")
        assert row.degraded
        assert row.verdict == "unsound"

    def test_unmatched_cycle_end_degrades_that_stream_only(self, factory_cell):
        ref, tracer = _traced_validate(factory_cell, "dm")
        events = [BusEvent(time=0, kind=CYCLE_END, master="cell",
                           stream="axis-setpoint")] + list(tracer.events)
        report = monitor_trace(
            factory_cell, IngestedTrace(events=events, horizon=HORIZON), "dm",
        )
        assert report.detail["unmatched_cycle_ends"] == 1
        assert report.row("cell/axis-setpoint").degraded
        others = [r for r in report.rows if r.name != "cell/axis-setpoint"]
        assert all(not r.degraded for r in others)

    def test_unanalysed_streams_reported_not_checked(self, factory_cell):
        _, tracer = _traced_validate(factory_cell, "dm")
        report = monitor_trace(
            factory_cell, IngestedTrace(events=list(tracer.events),
                                        horizon=HORIZON), "dm",
        )
        # the factory cell has a low-priority stream; its cycles appear
        # in the log but get no bound row
        unanalysed = report.detail["unanalysed_streams"]
        assert any("/" in k for k in unanalysed)
        names = {r.name for r in report.rows}
        assert not (set(unanalysed) & names)


# ---------------------------------------------------------- master checks

class TestMasterVerdicts:
    def test_sound_masters(self, factory_cell):
        _, tracer = _traced_validate(factory_cell, "dm")
        report = monitor_trace(
            factory_cell, IngestedTrace(events=list(tracer.events),
                                        horizon=HORIZON), "dm",
        )
        assert set(report.masters) == {m.name for m in factory_cell.masters}
        for m in report.masters.values():
            assert m["verdict"] == "sound"
            assert m["max_trr"] <= m["trr_bound"]
        assert report.all_clear

    def test_first_visit_seeds_only(self, single_master):
        # One token arrival measures no rotation: incomplete, not sound.
        mon = TraceMonitor(single_master, "dm")
        mon.feed(BusEvent(time=0, kind=TOKEN_ARRIVAL, master="M1"))
        assert mon.report().masters["M1"]["verdict"] == "incomplete"
        assert mon.report().masters["M1"]["max_trr"] == 0

    def test_rotation_violation_is_unsound(self, single_master):
        mon = TraceMonitor(single_master, "dm")
        bound = mon.analysis.tcycle
        mon.feed(BusEvent(time=0, kind=TOKEN_ARRIVAL, master="M1"))
        mon.feed(BusEvent(time=bound + 1, kind=TOKEN_ARRIVAL, master="M1"))
        m = mon.report().masters["M1"]
        assert m["max_trr"] == bound + 1
        assert m["verdict"] == "unsound"

    def test_master_verdict_precedence(self):
        assert master_verdict(token_visits=5, max_trr=11, bound=10,
                              degraded=True) == "unsound"
        assert master_verdict(token_visits=5, max_trr=9, bound=10,
                              degraded=True) == "degraded"
        assert master_verdict(token_visits=1, max_trr=0, bound=10,
                              degraded=False) == "incomplete"
        assert master_verdict(token_visits=5, max_trr=9, bound=10,
                              degraded=False) == "sound"


# ------------------------------------------------------------ report form

class TestMonitorReport:
    def test_schema_tagged_roundtrip(self, single_master):
        _, tracer = _traced_validate(single_master, "dm")
        report = monitor_trace(
            single_master, IngestedTrace(events=list(tracer.events),
                                         horizon=HORIZON), "dm",
        )
        doc = report.to_dict()
        assert doc["schema"] == MONITOR_SCHEMA
        again = MonitorReport.from_dict(json.loads(json.dumps(doc)))
        assert again.to_dict() == doc

    def test_wrong_schema_refused(self):
        with pytest.raises(ValueError, match="unsupported monitor schema"):
            MonitorReport.from_dict({"schema": "profibus-rt/monitor/v0",
                                     "rows": []})

    def test_observed_worst_responses(self):
        events = [
            BusEvent(time=0, kind=RELEASE, master="M1", stream="a"),
            BusEvent(time=3, kind=CYCLE_START, master="M1", stream="a"),
            BusEvent(time=7, kind=CYCLE_END, master="M1", stream="a"),
            BusEvent(time=10, kind=RELEASE, master="M1", stream="a"),
            BusEvent(time=30, kind=CYCLE_END, master="M1", stream="a"),
        ]
        assert observed_worst_responses(events) == {"M1/a": 20}


# -------------------------------------------------------------- transport

class TestMonitorApi:
    def _request_doc(self, net, tracer, policy="dm"):
        from repro.profibus.serialization import network_to_dict

        return api.AnalysisRequest(
            op="monitor", network=network_to_dict(net), policy=policy,
            trace=trace_doc(tracer, horizon=HORIZON),
        )

    def test_monitor_op_parity(self, factory_cell):
        ref, tracer = _traced_validate(factory_cell, "dm")
        result = api.monitor_check(factory_cell,
                                   trace_doc(tracer, horizon=HORIZON),
                                   policy="dm")
        assert result.op == "monitor"
        assert result.payload["report"]["rows"] == [
            validation_row_doc(r) for r in ref.rows
        ]
        assert result.schedulable == result.payload["all_clear"]

    def test_request_transport_roundtrip(self, single_master):
        _, tracer = _traced_validate(single_master, "dm")
        req = self._request_doc(single_master, tracer)
        again = api.AnalysisRequest.from_dict(
            json.loads(json.dumps(req.to_dict()))
        )
        assert again == req
        assert again.cache_key("fp") == req.cache_key("fp")

    def test_value_keyed_cache_hits(self, single_master):
        from repro.perf.cache import ResultCache

        _, tracer = _traced_validate(single_master, "dm")
        req = self._request_doc(single_master, tracer)
        cache = ResultCache()
        r1, h1 = api.execute_cached(req, cache=cache)
        r2, h2 = api.execute_cached(req, cache=cache)
        assert (h1, h2) == (False, True)
        assert r1 == r2

    def test_different_traces_do_not_collide(self, single_master):
        _, t1 = _traced_validate(single_master, "dm")
        _, t2 = _traced_validate(single_master, "dm", horizon=50_000)
        k1 = self._request_doc(single_master, t1).cache_key("fp")
        k2 = self._request_doc(single_master, t2).cache_key("fp")
        assert k1 != k2

    def test_monitor_needs_trace(self, single_master):
        from repro.profibus.serialization import network_to_dict

        with pytest.raises(api.ApiError, match="monitor needs trace"):
            api.AnalysisRequest(op="monitor",
                                network=network_to_dict(single_master))

    def test_bad_trace_is_api_error(self, single_master):
        from repro.profibus.serialization import network_to_dict

        req = api.AnalysisRequest(
            op="monitor", network=network_to_dict(single_master),
            trace={"schema": TRACE_SCHEMA, "events": [{"time": 0}]},
        )
        with pytest.raises(api.ApiError, match="bad trace document"):
            api.execute(req)


class TestMonitorCli:
    def _export(self, tmp_path, scenario="single-master", policy="dm"):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        rc = main(["simulate", "--scenario", scenario, "--policy", policy,
                   "--horizon-ms", "100", "--export-trace", str(path)])
        assert rc == 0
        return path

    def test_monitor_file_mode(self, tmp_path, capsys):
        from repro.cli import main

        path = self._export(tmp_path)
        rc = main(["monitor", "--scenario", "single-master", "--policy",
                   "dm", "--trace", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all clear: True" in out
        assert "M1/s0" in out

    def test_monitor_json_mode(self, tmp_path, capsys):
        from repro.cli import main

        path = self._export(tmp_path)
        capsys.readouterr()  # drop the export command's output
        rc = main(["monitor", "--scenario", "single-master", "--policy",
                   "dm", "--trace", str(path), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["schema"] == MONITOR_SCHEMA

    def test_monitor_follow_mode(self, tmp_path, capsys, monkeypatch):
        import sys as sys_mod

        from repro.cli import main

        path = self._export(tmp_path)
        monkeypatch.setattr(sys_mod, "stdin",
                            io.StringIO(path.read_text()))
        rc = main(["monitor", "--scenario", "single-master", "--policy",
                   "dm", "--follow"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert rc == 0
        final = json.loads(lines[-1])
        assert final["schema"] == MONITOR_SCHEMA
        assert all(r["verdict"] == "sound" for r in final["rows"])

    def test_monitor_bad_trace_clean_message(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"time": 0, "kind": "frame", "master": "M1"}\n')
        with pytest.raises(SystemExit, match="unknown event kind"):
            main(["monitor", "--scenario", "single-master", "--trace",
                  str(bad)])
