"""Unit tests for token-cycle analysis (eqs. (13)-(14))."""

import pytest

from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    longest_cycle,
    longest_high_cycle,
    tcycle,
    tdel,
    tdel_refined,
    token_cycle_report,
)


def _net():
    phy = PhyParameters()
    m1 = Master(1, (
        MessageStream("h1", T=100_000, C_bits=500),
        MessageStream("l1", T=100_000, C_bits=2000, high_priority=False),
    ))
    m2 = Master(2, (MessageStream("h2", T=100_000, C_bits=700),))
    m3 = Master(3, (
        MessageStream("h3", T=100_000, C_bits=300),
        MessageStream("l3", T=100_000, C_bits=900, high_priority=False),
    ))
    return Network(masters=(m1, m2, m3), phy=phy)


class TestLongestCycles:
    def test_cm_spans_both_priorities(self):
        net = _net()
        assert longest_cycle(net.masters[0], net.phy) == 2000
        assert longest_cycle(net.masters[1], net.phy) == 700

    def test_chm_high_only(self):
        net = _net()
        assert longest_high_cycle(net.masters[0], net.phy) == 500
        assert longest_high_cycle(net.masters[2], net.phy) == 300

    def test_empty_master_zero(self):
        phy = PhyParameters()
        assert longest_cycle(Master(9), phy) == 0
        assert longest_high_cycle(Master(9), phy) == 0


class TestTdel:
    def test_eq13_sum_of_cm(self):
        assert tdel(_net()) == 2000 + 700 + 900

    def test_refined_single_overrunner(self):
        # overrunner m1 (2000) + one high cycle each from m2 (700), m3 (300)
        assert tdel_refined(_net()) == 2000 + 700 + 300

    def test_refined_never_exceeds_aggregate(self):
        from repro.gen import random_network

        for seed in range(20):
            net = random_network(n_masters=4, streams_per_master=3, seed=seed)
            assert tdel_refined(net) <= tdel(net)

    def test_refined_picks_best_overrunner(self):
        phy = PhyParameters()
        # m2's low cycle is the biggest single cycle
        m1 = Master(1, (MessageStream("h1", T=10_000, C_bits=400),))
        m2 = Master(2, (
            MessageStream("h2", T=10_000, C_bits=100),
            MessageStream("l2", T=10_000, C_bits=5000, high_priority=False),
        ))
        net = Network(masters=(m1, m2), phy=phy)
        assert tdel_refined(net) == 5000 + 400


class TestTcycle:
    def test_eq14(self):
        net = _net()
        assert tcycle(net, ttr=10_000) == 10_000 + 3600

    def test_refined_variant(self):
        net = _net()
        assert tcycle(net, ttr=10_000, refined=True) == 10_000 + 3000

    def test_uses_network_ttr(self):
        net = _net().with_ttr(8_000)
        assert tcycle(net) == 8_000 + 3600

    def test_ttr_below_ring_latency_rejected(self):
        net = _net()
        with pytest.raises(ValueError):
            tcycle(net, ttr=net.ring_latency() - 1)


class TestReport:
    def test_breakdown_consistency(self):
        net = _net().with_ttr(10_000)
        rep = token_cycle_report(net)
        assert rep.tcycle_aggregate == tcycle(net)
        assert rep.tcycle_refined == tcycle(net, refined=True)
        assert rep.per_master_cm["M1"] == 2000
        assert rep.per_master_chm["M1"] == 500
        assert rep.ring_latency == net.ring_latency()
