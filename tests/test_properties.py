"""Property-based tests (hypothesis) on the core invariants.

These encode the theory-level relationships the paper relies on:
dominance between tests, equivalences, monotonicity, and soundness of
the analytic bounds against the simulators.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    Task,
    TaskSet,
    assign_deadline_monotonic,
    ceil_div,
    dbf,
    edf_rta,
    floor_div,
    george_test,
    hyperbolic_test,
    nonpreemptive_rta,
    preemptive_rta,
    processor_demand_test,
    qpa_test,
    rm_utilization_test,
    synchronous_busy_period,
    zheng_shin_test,
)
from repro.sim import simulate_uniproc

# ---------------------------------------------------------------- strategies

positive_int = st.integers(min_value=1, max_value=10_000)


@st.composite
def small_tasksets(draw, max_tasks=4, max_period=30, implicit=False):
    """Small integer task sets with utilisation <= 1."""
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = []
    budget = 1.0
    for i in range(n):
        T = draw(st.integers(min_value=2, max_value=max_period))
        max_c = max(1, int(budget * T))
        assume(max_c >= 1)
        C = draw(st.integers(min_value=1, max_value=max_c))
        budget -= C / T
        assume(budget >= -1e-9)
        if implicit:
            D = T
        else:
            D = draw(st.integers(min_value=C, max_value=T))
        tasks.append(Task(C=C, T=T, D=D, name=f"t{i}"))
    return TaskSet(tasks)


# ------------------------------------------------------------------ timeops


class TestArithmeticProperties:
    @given(st.integers(-10**9, 10**9), st.integers(1, 10**6))
    def test_ceil_floor_match_fraction_math(self, a, b):
        assert ceil_div(a, b) == math.ceil(Fraction(a, b))
        assert floor_div(a, b) == math.floor(Fraction(a, b))

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**4))
    def test_ceil_minus_floor_at_most_one(self, a, b):
        d = ceil_div(a, b) - floor_div(a, b)
        assert d in (0, 1)
        assert (d == 0) == (a % b == 0)


# ------------------------------------------------------------------- demand


class TestDemandProperties:
    @given(small_tasksets())
    @settings(max_examples=60, deadline=None)
    def test_dbf_monotone(self, ts):
        horizon = min(200, 3 * max(t.T for t in ts))
        prev = 0
        for t in range(horizon):
            cur = dbf(ts, t)
            assert cur >= prev
            prev = cur

    @given(small_tasksets())
    @settings(max_examples=60, deadline=None)
    def test_qpa_equals_exhaustive(self, ts):
        assert qpa_test(ts).schedulable == processor_demand_test(ts).schedulable

    @given(small_tasksets())
    @settings(max_examples=50, deadline=None)
    def test_fp_schedulable_implies_edf_feasible(self, ts):
        # EDF optimality: preemptive-FP schedulable => EDF feasible
        dm = assign_deadline_monotonic(ts)
        if preemptive_rta(dm).schedulable:
            assert processor_demand_test(ts).schedulable

    @given(small_tasksets())
    @settings(max_examples=50, deadline=None)
    def test_edf_rta_consistent_with_demand(self, ts):
        assert edf_rta(ts, preemptive=True).schedulable == (
            processor_demand_test(ts).schedulable
        )


class TestNonpreemptiveDominance:
    @given(small_tasksets())
    @settings(max_examples=60, deadline=None)
    def test_george_dominates_zheng_shin(self, ts):
        if zheng_shin_test(ts).schedulable:
            assert george_test(ts).schedulable

    @given(small_tasksets())
    @settings(max_examples=40, deadline=None)
    def test_np_feasible_implies_preemptive_feasible(self, ts):
        if george_test(ts).schedulable:
            assert processor_demand_test(ts).schedulable


class TestUtilizationProperties:
    @given(small_tasksets(implicit=True))
    @settings(max_examples=60, deadline=None)
    def test_hyperbolic_dominates_liu_layland(self, ts):
        if rm_utilization_test(ts).schedulable:
            assert hyperbolic_test(ts).schedulable

    @given(small_tasksets(implicit=True))
    @settings(max_examples=40, deadline=None)
    def test_ll_implies_rta_schedulable(self, ts):
        rm = assign_deadline_monotonic(ts)  # DM == RM for D = T
        if rm_utilization_test(ts).schedulable:
            assert preemptive_rta(rm).schedulable


class TestBusyPeriodProperties:
    @given(small_tasksets())
    @settings(max_examples=60, deadline=None)
    def test_busy_period_at_least_sum_c(self, ts):
        L = synchronous_busy_period(ts)
        assert L >= sum(t.C for t in ts)

    @given(small_tasksets())
    @settings(max_examples=40, deadline=None)
    def test_busy_period_is_fixed_point(self, ts):
        from repro.core import ceil_div as cd

        L = synchronous_busy_period(ts)
        assert L == sum(cd(L, t.T) * t.C for t in ts)


class TestSoundnessVsSimulation:
    @given(small_tasksets())
    @settings(max_examples=25, deadline=None)
    def test_preemptive_fp_bound_sound(self, ts):
        dm = assign_deadline_monotonic(ts)
        res = preemptive_rta(dm)
        horizon = min(2 * (dm.hyperperiod() or 500), 2000)
        stats = simulate_uniproc(dm, horizon, policy="fp")
        for rt in res.per_task:
            if rt.value is not None:
                assert stats.max_response.get(rt.task.name, 0) <= rt.value

    @given(small_tasksets())
    @settings(max_examples=25, deadline=None)
    def test_nonpreemptive_fp_bound_sound(self, ts):
        dm = assign_deadline_monotonic(ts)
        res = nonpreemptive_rta(dm)
        horizon = min(2 * (dm.hyperperiod() or 500), 2000)
        stats = simulate_uniproc(dm, horizon, policy="fp", preemptive=False)
        for rt in res.per_task:
            if rt.value is not None:
                assert stats.max_response.get(rt.task.name, 0) <= rt.value

    @given(small_tasksets(), st.lists(st.integers(0, 10), min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_edf_bounds_sound_with_offsets(self, ts, offsets):
        res = edf_rta(ts, preemptive=True)
        horizon = min(2 * (ts.hyperperiod() or 500), 2000)
        stats = simulate_uniproc(
            ts, horizon, policy="edf", offsets=offsets[: ts.n]
        )
        for rt in res.per_task:
            if rt.value is not None:
                assert stats.max_response.get(rt.task.name, 0) <= rt.value

    @given(small_tasksets(), st.lists(st.integers(0, 10), min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_np_edf_bounds_sound_with_offsets(self, ts, offsets):
        res = edf_rta(ts, preemptive=False)
        horizon = min(2 * (ts.hyperperiod() or 500), 2000)
        stats = simulate_uniproc(
            ts, horizon, policy="edf", preemptive=False, offsets=offsets[: ts.n]
        )
        for rt in res.per_task:
            if rt.value is not None:
                assert stats.max_response.get(rt.task.name, 0) <= rt.value


# -------------------------------------------------------------- generators


class TestGeneratorProperties:
    @given(st.integers(1, 12), st.floats(0.05, 0.95), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_uunifast_partition(self, n, u, seed):
        import random

        from repro.gen import uunifast

        utils = uunifast(n, u, random.Random(seed))
        assert len(utils) == n
        assert sum(utils) == pytest.approx(u)
        assert all(x >= 0 for x in utils)


# ---------------------------------------------------------------- PROFIBUS


class TestProfibusProperties:
    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_dm_tightest_stream_never_worse_than_fcfs(self, seed):
        from repro.gen import network_with_ttr_headroom, random_network
        from repro.profibus import dm_analysis, fcfs_analysis

        net = network_with_ttr_headroom(
            random_network(n_masters=2, streams_per_master=3, seed=seed)
        )
        dm = dm_analysis(net)
        fcfs = fcfs_analysis(net)
        for m in net.masters:
            tight = min(m.high_streams, key=lambda s: s.D)
            r_dm = dm.response(m.name, tight.name).R
            r_fcfs = fcfs.response(m.name, tight.name).R
            if r_dm is not None:
                assert r_dm <= r_fcfs

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_tdel_refined_never_exceeds_aggregate(self, seed):
        from repro.gen import random_network
        from repro.profibus import tdel, tdel_refined

        net = random_network(seed=seed)
        assert tdel_refined(net) <= tdel(net)

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_serialization_round_trip(self, seed):
        from repro.gen import network_with_ttr_headroom, random_network
        from repro.profibus import (
            analyse,
            network_from_dict,
            network_to_dict,
        )

        net = network_with_ttr_headroom(random_network(seed=seed))
        loaded = network_from_dict(network_to_dict(net))
        for policy in ("fcfs", "dm"):
            a, b = analyse(net, policy), analyse(loaded, policy)
            assert a.schedulable == b.schedulable
            assert [sr.R for sr in a.per_stream] == [sr.R for sr in b.per_stream]

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_stack_depth_bounds_monotone(self, seed):
        from repro.gen import network_with_ttr_headroom, random_network
        from repro.profibus import stack_depth_analysis

        net = network_with_ttr_headroom(
            random_network(n_masters=2, streams_per_master=3, seed=seed)
        )
        prev = None
        for depth in (1, 2, 4):
            rs = [
                sr.R if sr.R is not None else float("inf")
                for sr in stack_depth_analysis(net, depth).per_stream
            ]
            if prev is not None:
                assert all(a >= b for a, b in zip(rs, prev))
            prev = rs

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_opa_dominates_fixed_rules(self, seed):
        import random as _random

        from repro.profibus import (
            Master,
            MessageStream,
            Network,
            PhyParameters,
            djm_analysis,
            dm_analysis,
            opa_analysis,
        )

        rng = _random.Random(seed)
        streams = []
        for i in range(rng.randint(2, 4)):
            T = rng.randint(20, 60) * 1000
            J = rng.choice([0, rng.randint(1, 6) * 1000])
            D = min(T, rng.randint(3, 12) * 1000 + J)
            streams.append(MessageStream(f"s{i}", T=T, D=D, J=J, C_bits=500))
        net = Network(masters=(Master(1, tuple(streams)),),
                      phy=PhyParameters(), ttr=500)
        if dm_analysis(net).schedulable or djm_analysis(net).schedulable:
            assert opa_analysis(net).schedulable
