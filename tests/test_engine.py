"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import PRIO_MAC, PRIO_RELEASE, Simulator


class TestScheduling:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append("b"))
        sim.schedule(1, lambda: fired.append("a"))
        sim.schedule(9, lambda: fired.append("c"))
        sim.run_all()
        assert fired == ["a", "b", "c"]
        assert sim.now == 9

    def test_same_time_priority_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3, lambda: fired.append("mac"), priority=PRIO_MAC)
        sim.schedule(3, lambda: fired.append("release"), priority=PRIO_RELEASE)
        sim.run_all()
        assert fired == ["release", "mac"]

    def test_same_time_same_priority_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1, lambda i=i: fired.append(i))
        sim.run_all()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.step()
        with pytest.raises(ValueError):
            sim.schedule(4, lambda: None)

    def test_schedule_in_relative(self):
        sim = Simulator()
        out = []
        sim.schedule(2, lambda: sim.schedule_in(3, lambda: out.append(sim.now)))
        sim.run_all()
        assert out == [5]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1, lambda: fired.append("x"))
        h.cancel()
        sim.run_all()
        assert fired == []
        assert h.cancelled

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1, lambda: None)
        sim.schedule(7, lambda: None)
        h.cancel()
        assert sim.peek_time() == 7


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        for t in (1, 5, 10, 15):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run_until(10)
        assert fired == [1, 5, 10]
        assert sim.now == 10

    def test_horizon_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(1))
        sim.run_until(10)
        assert fired == [1]

    def test_event_chain(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            sim.schedule_in(2, tick)

        sim.schedule(0, tick)
        sim.run_until(10)
        assert count[0] == 6  # t = 0,2,4,6,8,10

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(sim.now, loop)  # zero-delay self-reschedule

        sim.schedule(0, loop)
        with pytest.raises(RuntimeError):
            sim.run_until(1, max_events=1000)

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(t, lambda: None)
        sim.run_all()
        assert sim.events_fired == 5
