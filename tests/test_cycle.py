"""Unit tests for message-cycle length computation (Ch)."""

import pytest

from repro.profibus import (
    MessageCycleSpec,
    PhyParameters,
    attempt_time,
    cycle_time,
    failed_attempt_time,
    token_pass_time,
)


@pytest.fixture
def phy():
    return PhyParameters(baud_rate=500_000, tsdr_max=60, tid1=37, tid2=60,
                         tsl=100, max_retry=1)


class TestAttemptTime:
    def test_composition(self, phy):
        spec = MessageCycleSpec(req_payload=0, resp_payload=0)
        # SD1 request (66) + tsdr (60) + SD1 response (66) + tid1 (37)
        assert attempt_time(spec, phy) == 66 + 60 + 66 + 37

    def test_short_ack(self, phy):
        spec = MessageCycleSpec(req_payload=8, short_ack=True)
        # SD3 request (154) + tsdr + SC (11) + tid1
        assert attempt_time(spec, phy) == 154 + 60 + 11 + 37

    def test_payload_grows_time(self, phy):
        small = MessageCycleSpec(req_payload=1, resp_payload=1)
        large = MessageCycleSpec(req_payload=100, resp_payload=100)
        assert attempt_time(large, phy) > attempt_time(small, phy)


class TestFailedAttempt:
    def test_uses_slot_time(self, phy):
        spec = MessageCycleSpec(req_payload=0, resp_payload=0)
        assert failed_attempt_time(spec, phy) == 66 + 100 + 37


class TestCycleTime:
    def test_no_retries(self, phy):
        spec = MessageCycleSpec(req_payload=0, resp_payload=0, max_retry=0)
        assert cycle_time(spec, phy) == attempt_time(spec, phy)

    def test_with_network_retry_limit(self, phy):
        spec = MessageCycleSpec(req_payload=0, resp_payload=0)
        expected = failed_attempt_time(spec, phy) + attempt_time(spec, phy)
        assert cycle_time(spec, phy) == expected

    def test_per_cycle_retry_override(self, phy):
        spec = MessageCycleSpec(req_payload=0, resp_payload=0, max_retry=3)
        expected = 3 * failed_attempt_time(spec, phy) + attempt_time(spec, phy)
        assert cycle_time(spec, phy) == expected

    def test_short_ack_with_payload_rejected(self):
        spec = MessageCycleSpec(resp_payload=4, short_ack=True)
        with pytest.raises(ValueError):
            spec.response_frame()

    def test_negative_retry_rejected(self, phy):
        spec = MessageCycleSpec(max_retry=-1)
        with pytest.raises(ValueError):
            cycle_time(spec, phy)


class TestTokenPass:
    def test_token_pass_time(self, phy):
        assert token_pass_time(phy) == 33 + 60
