"""Unit tests for the EDF processor-demand analysis (eq. (3)) and QPA."""

import pytest

from repro.core import (
    Task,
    TaskSet,
    dbf,
    dbf_with_jitter,
    deadline_points,
    make_taskset,
    processor_demand_test,
    qpa_test,
)


class TestDbf:
    def test_before_first_deadline_zero(self):
        ts = make_taskset([(2, 10, 5)])
        assert dbf(ts, 4) == 0

    def test_at_deadline_counts_one_job(self):
        ts = make_taskset([(2, 10, 5)])
        assert dbf(ts, 5) == 2

    def test_step_per_period(self):
        ts = make_taskset([(2, 10, 5)])
        assert dbf(ts, 14) == 2
        assert dbf(ts, 15) == 4
        assert dbf(ts, 25) == 6

    def test_sums_over_tasks(self):
        ts = make_taskset([(1, 4), (2, 6)])
        # t=4: one job of t0 -> 1 ; t=6: t0(1) + t1(2) = 3
        assert dbf(ts, 4) == 1
        assert dbf(ts, 6) == 3

    def test_monotone(self):
        ts = make_taskset([(1, 4), (2, 6), (3, 10)])
        values = [dbf(ts, t) for t in range(0, 40)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_jitter_shifts_demand_earlier(self):
        plain = make_taskset([(2, 10, 5)])
        jit = TaskSet([Task(C=2, T=10, D=5, J=3, name="a")])
        assert dbf_with_jitter(jit, 2) == 2  # deadline lands at D-J = 2
        assert dbf(plain, 2) == 0


class TestDeadlinePoints:
    def test_contents(self):
        ts = make_taskset([(1, 4, 3), (1, 6, 6)])
        pts = list(deadline_points(ts, 14))
        assert pts == [3, 6, 7, 11, 12]  # 3,7,11 and 6,12

    def test_sorted_unique(self):
        ts = make_taskset([(1, 4), (1, 2)])
        pts = list(deadline_points(ts, 12))
        assert pts == sorted(set(pts))

    def test_respects_horizon(self):
        ts = make_taskset([(1, 5)])
        assert list(deadline_points(ts, 11)) == [5, 10]


class TestProcessorDemandTest:
    def test_accepts_feasible(self, basic_dm_taskset):
        assert processor_demand_test(basic_dm_taskset).schedulable

    def test_rejects_overutilized_immediately(self):
        res = processor_demand_test(make_taskset([(3, 4), (3, 4)]))
        assert not res.schedulable
        assert res.checked_points == 0

    def test_rejects_tight_deadline(self):
        # U < 1 but constrained deadlines overload an interval
        ts = make_taskset([(3, 20, 4), (3, 20, 5)])
        res = processor_demand_test(ts)
        assert not res.schedulable
        assert res.failure_time == 5
        assert res.failure_demand == 6

    def test_full_utilization_harmonic_ok(self):
        assert processor_demand_test(make_taskset([(1, 2), (1, 4), (2, 8)])).schedulable

    def test_edf_optimality_vs_fixed_priority(self, basic_dm_taskset):
        # FP-schedulable (preemptive) implies EDF-feasible
        from repro.core import preemptive_rta

        assert preemptive_rta(basic_dm_taskset).schedulable
        assert processor_demand_test(basic_dm_taskset).schedulable


class TestQPA:
    def test_agrees_with_exhaustive_on_feasible(self, basic_dm_taskset):
        assert qpa_test(basic_dm_taskset).schedulable == (
            processor_demand_test(basic_dm_taskset).schedulable
        )

    def test_agrees_on_infeasible(self):
        ts = make_taskset([(3, 20, 4), (3, 20, 5)])
        assert qpa_test(ts).schedulable == processor_demand_test(ts).schedulable
        assert not qpa_test(ts).schedulable

    def test_checks_fewer_points(self):
        ts = make_taskset([(1, 11, 9), (2, 17, 15), (3, 29, 25), (4, 47, 40)])
        exhaustive = processor_demand_test(ts)
        quick = qpa_test(ts)
        assert quick.schedulable == exhaustive.schedulable
        assert quick.checked_points <= exhaustive.checked_points

    def test_overutilized(self):
        assert not qpa_test(make_taskset([(3, 4), (3, 4)])).schedulable

    def test_randomized_equivalence(self):
        import random

        from repro.gen import random_taskset

        for seed in range(40):
            u = random.Random(seed).uniform(0.5, 1.1)
            if u > 1.0:
                u = 0.99
            ts = random_taskset(4, u, seed=seed, t_min=5, t_max=50,
                                deadline_beta=0.5)
            assert qpa_test(ts).schedulable == (
                processor_demand_test(ts).schedulable
            ), f"seed={seed}"
