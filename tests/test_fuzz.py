"""Tests for the differential soundness-fuzzing subsystem (repro.fuzz).

Covers the three ISSUE oracles as property tests over fuzz-generated
networks, the campaign engine + report schema, the shrinker, and the
regression the subsystem exists to catch: a deliberately-reintroduced
``_scale_deadlines`` truncation must be found and shrunk from a seeded
campaign.
"""

import json

import pytest

from repro.cli import main
from repro.fuzz import (
    FAMILIES,
    CampaignConfig,
    check_kernel_equivalence,
    check_roundtrip,
    check_soundness,
    check_sweep_scaling,
    generate_instance,
    reference_scaled_deadlines,
    run_campaign,
    shrink_network,
    validate_report_dict,
    write_report,
)
from repro.profibus import network_from_dict, network_to_dict
from repro.profibus.network import Network
from repro.profibus.sweep import ttr_sweep


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_generates_valid_network(self, family):
        net = generate_instance(0, family, 0)
        assert net.masters
        assert net.ttr is not None
        assert net.ttr >= net.ring_latency()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_pure_function_of_seed(self, family):
        a = generate_instance(7, family, 3)
        b = generate_instance(7, family, 3)
        assert a == b  # value-equal, fresh instances

    def test_distinct_across_indices(self):
        nets = {generate_instance(0, "jitter-heavy", i) for i in range(6)}
        assert len(nets) > 1

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_instance(0, "nope", 0)

    def test_jitter_family_has_jitter(self):
        net = generate_instance(0, "jitter-heavy", 0)
        assert any(s.J > 0 for m in net.masters for s in m.streams)

    def test_tight_ttr_family_is_tight(self):
        net = generate_instance(0, "tight-ttr", 0)
        from repro.profibus.cycle import token_pass_time

        assert net.ttr - net.ring_latency() <= 2 * token_pass_time(net.phy)


def _sample(n_per_family=3, seed=0):
    return [
        (family, i, generate_instance(seed, family, i))
        for family in sorted(FAMILIES)
        for i in range(n_per_family)
    ]


def _truncating_scale_deadlines(network, factor):
    """The pre-fix `_scale_deadlines` with `int()` truncation — the bug
    the campaign's sweep oracle exists to catch."""
    masters = []
    for m in network.masters:
        streams = [
            s.with_deadline(max(1, min(s.T, int(s.D * factor))))
            for s in m.streams
        ]
        masters.append(m.with_streams(streams))
    return Network(masters=tuple(masters), slaves=network.slaves,
                   phy=network.phy, ttr=network.ttr)


class TestOracleProperties:
    """The ISSUE's three property tests, over fuzz-generated networks."""

    def test_sim_vs_analysis_soundness(self):
        for family, i, net in _sample(2):
            policy = ("fcfs", "dm", "edf")[i % 3]
            out = check_soundness(net, policy, seed=0)
            assert out.status in ("ok", "skipped"), (
                f"{family}#{i} {policy}: {out.detail}"
            )

    def test_serialization_round_trip_identity(self):
        for family, i, net in _sample(3):
            assert network_from_dict(network_to_dict(net)) == net, (
                f"{family}#{i}"
            )

    def test_ttr_sweep_monotone_in_ttr(self):
        # eqs. (11)/(16)/(17) are monotone in TTR: once a policy becomes
        # infeasible on a rising TTR grid it must stay infeasible, and
        # while every stream stays schedulable (all fixed points
        # converge) the worst response never decreases.  Beyond that,
        # diverging streams drop out of the max, so no global claim.
        for family, i, net in _sample(2):
            lo = net.ring_latency()
            grid = [lo, lo + 400, lo + 1600, lo + 6400]
            for policy in ("fcfs", "dm"):
                rows = ttr_sweep(net, grid, policies=(policy,))
                sched = [r.schedulable for r in rows]
                for a, b in zip(sched, sched[1:]):
                    assert a or not b, f"{family}#{i} {policy}: {sched}"
                responses = [r.worst_response for r in rows
                             if r.schedulable]
                assert responses == sorted(responses), (
                    f"{family}#{i} {policy}: {responses}"
                )

    def test_kernel_equivalence(self):
        for family, i, net in _sample(2):
            out = check_kernel_equivalence(net)
            assert out.status == "ok", f"{family}#{i}: {out.detail}"

    def test_sweep_scaling_contract(self):
        for family, i, net in _sample(2):
            out = check_sweep_scaling(net, 0.735)
            assert out.status == "ok", f"{family}#{i}: {out.detail}"


class TestSweepRounding:
    """The satellite sweep bugfix: rounding, not truncation."""

    def test_scale_deadlines_rounds(self):
        from repro.profibus.sweep import _scale_deadlines
        from repro.scenarios import single_master_network

        net = single_master_network()
        d0 = net.masters[0].streams[0].D  # 2500
        factor = 0.9999  # D·f = 2499.75: round → 2500, truncate → 2499
        scaled = _scale_deadlines(net, factor)
        got = scaled.masters[0].streams[0].D
        assert got == int(round(d0 * factor)) == 2500
        assert got != int(d0 * factor)  # truncation would be off by one

    def test_reference_matches_production(self, factory_cell):
        from repro.profibus.sweep import _scale_deadlines

        for factor in (0.251, 0.5, 0.735, 0.999, 1.25):
            scaled = _scale_deadlines(factory_cell, factor)
            got = [s.D for m in scaled.masters for s in m.streams]
            assert got == reference_scaled_deadlines(factory_cell, factor)

    def test_ttr_sweep_rounds_float_values(self, factory_cell):
        from repro.profibus import analyse

        rows = ttr_sweep(factory_cell, [2999.6], policies=("dm",))
        assert rows[0].tcycle == analyse(
            factory_cell, "dm", ttr=3000
        ).tcycle

    def test_ttr_sweep_feasibility_on_rounded_value(self, factory_cell):
        # a float just below the ring latency that rounds up to it is
        # analysable, not structurally infeasible
        ring = factory_cell.ring_latency()
        rows = ttr_sweep(factory_cell, [ring - 0.4], policies=("dm",))
        assert rows[0].worst_response is not None


class TestShrinker:
    def test_shrinks_to_local_minimum(self, factory_cell):
        # predicate: any master carries a stream with D < 25 ms
        limit = 25 * 1500

        def fails(net: Network) -> bool:
            return any(s.D < limit for m in net.masters for s in m.streams)

        shrunk = shrink_network(factory_cell, fails)
        assert fails(shrunk)
        assert len(shrunk.masters) == 1
        assert len(shrunk.masters[0].streams) == 1
        assert not shrunk.slaves

    def test_never_fails_predicate_returns_original(self, factory_cell):
        assert shrink_network(factory_cell, lambda n: False) is factory_cell

    def test_predicate_exception_is_not_failing(self, factory_cell):
        def explosive(net):
            if len(net.masters) < 4:
                raise RuntimeError("boom")
            return True

        shrunk = shrink_network(factory_cell, explosive)
        assert len(shrunk.masters) == 4  # crashes never count as failures


class TestCampaign:
    def test_clean_campaign(self, tmp_path):
        result = run_campaign(CampaignConfig(budget=18, seed=0))
        assert result.ok
        assert result.instances == 18
        assert len(result.family_counts) >= 4
        assert all(n > 0 for n in result.family_counts.values())
        for name in ("soundness", "kernel_equivalence", "roundtrip",
                     "sweep_scaling"):
            assert result.oracle_stats[name]["checked"] > 0
            assert result.oracle_stats[name]["failed"] == 0

        path = write_report(result, tmp_path / "FUZZ_report.json")
        doc = json.loads(path.read_text())
        validate_report_dict(doc)
        assert doc["status"] == "ok"
        assert doc["config"]["seed"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(budget=0)
        with pytest.raises(ValueError):
            CampaignConfig(families=("nope",))
        with pytest.raises(ValueError):
            # 0 would truncate the counterexample list to empty while
            # failures exist — ok/status must never be maskable
            CampaignConfig(max_counterexamples=0)

    def test_ok_derived_from_failure_counters(self, monkeypatch):
        # more failures than max_counterexamples: the truncated list
        # must not launder the run into "ok"
        from repro.profibus import sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_scale_deadlines",
                            _truncating_scale_deadlines)
        result = run_campaign(
            CampaignConfig(budget=12, seed=0, max_counterexamples=1,
                           shrink=False)
        )
        assert result.oracle_stats["sweep_scaling"]["failed"] > 1
        assert len(result.counterexamples) == 1
        assert result.total_failed > 1
        assert not result.ok

    def test_reintroduced_truncation_is_caught_and_shrunk(self, monkeypatch):
        """The acceptance regression: put the old `int(s.D * factor)`
        truncation back into the sweep layer; a seeded campaign must
        find it, and the shrinker must reduce the counterexample to a
        single-master single-stream network that still fails."""
        from repro.profibus import sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_scale_deadlines",
                            _truncating_scale_deadlines)
        result = run_campaign(
            CampaignConfig(budget=12, seed=0, max_counterexamples=1)
        )
        assert not result.ok
        assert result.oracle_stats["sweep_scaling"]["failed"] > 0
        ce = result.counterexamples[0]
        assert ce.oracle == "sweep_scaling"
        # seeded reproduction: the counterexample identifies its instance
        assert generate_instance(ce.seed, ce.family, ce.index) == ce.network
        # the shrinker drove it to a locally-minimal network...
        assert len(ce.shrunk.masters) == 1
        assert len(ce.shrunk.masters[0].streams) == 1
        # ...that still exhibits the divergence
        out = check_sweep_scaling(ce.shrunk, ce.factor, ce.policy)
        assert out.status == "fail"
        assert "reference" in out.detail

    def test_report_counterexample_documents_load(self, monkeypatch):
        from repro.profibus import sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_scale_deadlines",
                            _truncating_scale_deadlines)
        result = run_campaign(
            CampaignConfig(budget=6, seed=3, max_counterexamples=1,
                           shrink=False)
        )
        assert not result.ok
        from repro.fuzz import report_to_dict

        doc = report_to_dict(result)
        validate_report_dict(doc)
        entry = doc["counterexamples"][0]
        assert network_from_dict(entry["network"]) == \
            result.counterexamples[0].network
        assert network_from_dict(entry["shrunk_network"]) == \
            result.counterexamples[0].shrunk
        assert "generate_instance" in entry["repro"]


class TestCliFuzz:
    def test_clean_run_exit_zero(self, capsys, tmp_path):
        out_path = tmp_path / "FUZZ_report.json"
        rc = main(["fuzz", "--budget", "8", "--seed", "1",
                   "--out", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "soundness" in out
        assert "kernel_equivalence" in out
        doc = json.loads(out_path.read_text())
        validate_report_dict(doc)

    def test_family_restriction(self, capsys, tmp_path):
        out_path = tmp_path / "FUZZ_report.json"
        rc = main(["fuzz", "--budget", "4", "--seed", "0",
                   "--families", "tight-ttr", "retry-prone",
                   "--out", str(out_path)])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert set(doc["families"]) == {"tight-ttr", "retry-prone"}
