"""Tests for the differential soundness-fuzzing subsystem (repro.fuzz).

Covers the three ISSUE oracles as property tests over fuzz-generated
networks, the campaign engine + report schema, the shrinker, and the
regression the subsystem exists to catch: a deliberately-reintroduced
``_scale_deadlines`` truncation must be found and shrunk from a seeded
campaign.
"""

import json

import pytest

from repro.cli import main
from repro.fuzz import (
    FAMILIES,
    CampaignConfig,
    check_kernel_equivalence,
    check_roundtrip,
    check_soundness,
    check_sweep_scaling,
    generate_instance,
    reference_scaled_deadlines,
    run_campaign,
    shrink_network,
    validate_report_dict,
    write_report,
)
from repro.profibus import network_from_dict, network_to_dict
from repro.profibus.network import Network
from repro.profibus.sweep import ttr_sweep


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_generates_valid_network(self, family):
        net = generate_instance(0, family, 0)
        assert net.masters
        assert net.ttr is not None
        assert net.ttr >= net.ring_latency()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_pure_function_of_seed(self, family):
        a = generate_instance(7, family, 3)
        b = generate_instance(7, family, 3)
        assert a == b  # value-equal, fresh instances

    def test_distinct_across_indices(self):
        nets = {generate_instance(0, "jitter-heavy", i) for i in range(6)}
        assert len(nets) > 1

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_instance(0, "nope", 0)

    def test_jitter_family_has_jitter(self):
        net = generate_instance(0, "jitter-heavy", 0)
        assert any(s.J > 0 for m in net.masters for s in m.streams)

    def test_tight_ttr_family_is_tight(self):
        net = generate_instance(0, "tight-ttr", 0)
        from repro.profibus.cycle import token_pass_time

        assert net.ttr - net.ring_latency() <= 2 * token_pass_time(net.phy)


def _sample(n_per_family=3, seed=0):
    return [
        (family, i, generate_instance(seed, family, i))
        for family in sorted(FAMILIES)
        for i in range(n_per_family)
    ]


def _truncating_scale_deadlines(network, factor):
    """The pre-fix `_scale_deadlines` with `int()` truncation — the bug
    the campaign's sweep oracle exists to catch."""
    masters = []
    for m in network.masters:
        streams = [
            s.with_deadline(max(1, min(s.T, int(s.D * factor))))
            for s in m.streams
        ]
        masters.append(m.with_streams(streams))
    return Network(masters=tuple(masters), slaves=network.slaves,
                   phy=network.phy, ttr=network.ttr)


class TestOracleProperties:
    """The ISSUE's three property tests, over fuzz-generated networks."""

    def test_sim_vs_analysis_soundness(self):
        for family, i, net in _sample(2):
            policy = ("fcfs", "dm", "edf")[i % 3]
            out = check_soundness(net, policy, seed=0)
            assert out.status in ("ok", "skipped"), (
                f"{family}#{i} {policy}: {out.detail}"
            )

    def test_serialization_round_trip_identity(self):
        for family, i, net in _sample(3):
            assert network_from_dict(network_to_dict(net)) == net, (
                f"{family}#{i}"
            )

    def test_ttr_sweep_monotone_in_ttr(self):
        # eqs. (11)/(16)/(17) are monotone in TTR: once a policy becomes
        # infeasible on a rising TTR grid it must stay infeasible, and
        # while every stream stays schedulable (all fixed points
        # converge) the worst response never decreases.  Beyond that,
        # diverging streams drop out of the max, so no global claim.
        for family, i, net in _sample(2):
            lo = net.ring_latency()
            grid = [lo, lo + 400, lo + 1600, lo + 6400]
            for policy in ("fcfs", "dm"):
                rows = ttr_sweep(net, grid, policies=(policy,))
                sched = [r.schedulable for r in rows]
                for a, b in zip(sched, sched[1:]):
                    assert a or not b, f"{family}#{i} {policy}: {sched}"
                responses = [r.worst_response for r in rows
                             if r.schedulable]
                assert responses == sorted(responses), (
                    f"{family}#{i} {policy}: {responses}"
                )

    def test_kernel_equivalence(self):
        for family, i, net in _sample(2):
            out = check_kernel_equivalence(net)
            assert out.status == "ok", f"{family}#{i}: {out.detail}"

    def test_sweep_scaling_contract(self):
        for family, i, net in _sample(2):
            out = check_sweep_scaling(net, 0.735)
            assert out.status == "ok", f"{family}#{i}: {out.detail}"


class TestSweepRounding:
    """The satellite sweep bugfix: rounding, not truncation."""

    def test_scale_deadlines_rounds(self):
        from repro.profibus.sweep import _scale_deadlines
        from repro.scenarios import single_master_network

        net = single_master_network()
        d0 = net.masters[0].streams[0].D  # 2500
        factor = 0.9999  # D·f = 2499.75: round → 2500, truncate → 2499
        scaled = _scale_deadlines(net, factor)
        got = scaled.masters[0].streams[0].D
        assert got == int(round(d0 * factor)) == 2500
        assert got != int(d0 * factor)  # truncation would be off by one

    def test_reference_matches_production(self, factory_cell):
        from repro.profibus.sweep import _scale_deadlines

        for factor in (0.251, 0.5, 0.735, 0.999, 1.25):
            scaled = _scale_deadlines(factory_cell, factor)
            got = [s.D for m in scaled.masters for s in m.streams]
            assert got == reference_scaled_deadlines(factory_cell, factor)

    def test_ttr_sweep_rounds_float_values(self, factory_cell):
        from repro.profibus import analyse

        rows = ttr_sweep(factory_cell, [2999.6], policies=("dm",))
        assert rows[0].tcycle == analyse(
            factory_cell, "dm", ttr=3000
        ).tcycle

    def test_ttr_sweep_feasibility_on_rounded_value(self, factory_cell):
        # a float just below the ring latency that rounds up to it is
        # analysable, not structurally infeasible
        ring = factory_cell.ring_latency()
        rows = ttr_sweep(factory_cell, [ring - 0.4], policies=("dm",))
        assert rows[0].worst_response is not None


class TestShrinker:
    def test_shrinks_to_local_minimum(self, factory_cell):
        # predicate: any master carries a stream with D < 25 ms
        limit = 25 * 1500

        def fails(net: Network) -> bool:
            return any(s.D < limit for m in net.masters for s in m.streams)

        shrunk = shrink_network(factory_cell, fails)
        assert fails(shrunk)
        assert len(shrunk.masters) == 1
        assert len(shrunk.masters[0].streams) == 1
        assert not shrunk.slaves

    def test_never_fails_predicate_returns_original(self, factory_cell):
        assert shrink_network(factory_cell, lambda n: False) is factory_cell

    def test_predicate_exception_is_not_failing(self, factory_cell):
        def explosive(net):
            if len(net.masters) < 4:
                raise RuntimeError("boom")
            return True

        shrunk = shrink_network(factory_cell, explosive)
        assert len(shrunk.masters) == 4  # crashes never count as failures


class TestCampaign:
    def test_clean_campaign(self, tmp_path):
        result = run_campaign(CampaignConfig(budget=18, seed=0))
        assert result.ok
        assert result.instances == 18
        assert len(result.family_counts) >= 4
        assert all(n > 0 for n in result.family_counts.values())
        for name in ("soundness", "kernel_equivalence", "roundtrip",
                     "sweep_scaling"):
            assert result.oracle_stats[name]["checked"] > 0
            assert result.oracle_stats[name]["failed"] == 0

        path = write_report(result, tmp_path / "FUZZ_report.json")
        doc = json.loads(path.read_text())
        validate_report_dict(doc)
        assert doc["status"] == "ok"
        assert doc["config"]["seed"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(budget=0)
        with pytest.raises(ValueError):
            CampaignConfig(families=("nope",))
        with pytest.raises(ValueError):
            # 0 would truncate the counterexample list to empty while
            # failures exist — ok/status must never be maskable
            CampaignConfig(max_counterexamples=0)

    def test_ok_derived_from_failure_counters(self, monkeypatch):
        # more failures than max_counterexamples: the truncated list
        # must not launder the run into "ok"
        from repro.profibus import sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_scale_deadlines",
                            _truncating_scale_deadlines)
        result = run_campaign(
            CampaignConfig(budget=12, seed=0, max_counterexamples=1,
                           shrink=False)
        )
        assert result.oracle_stats["sweep_scaling"]["failed"] > 1
        assert len(result.counterexamples) == 1
        assert result.total_failed > 1
        assert not result.ok

    def test_reintroduced_truncation_is_caught_and_shrunk(self, monkeypatch):
        """The acceptance regression: put the old `int(s.D * factor)`
        truncation back into the sweep layer; a seeded campaign must
        find it, and the shrinker must reduce the counterexample to a
        single-master single-stream network that still fails."""
        from repro.profibus import sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_scale_deadlines",
                            _truncating_scale_deadlines)
        result = run_campaign(
            CampaignConfig(budget=12, seed=0, max_counterexamples=1)
        )
        assert not result.ok
        assert result.oracle_stats["sweep_scaling"]["failed"] > 0
        ce = result.counterexamples[0]
        assert ce.oracle == "sweep_scaling"
        # seeded reproduction: the counterexample identifies its instance
        assert generate_instance(ce.seed, ce.family, ce.index) == ce.network
        # the shrinker drove it to a locally-minimal network...
        assert len(ce.shrunk.masters) == 1
        assert len(ce.shrunk.masters[0].streams) == 1
        # ...that still exhibits the divergence
        out = check_sweep_scaling(ce.shrunk, ce.factor, ce.policy)
        assert out.status == "fail"
        assert "reference" in out.detail

    def test_report_counterexample_documents_load(self, monkeypatch):
        from repro.profibus import sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_scale_deadlines",
                            _truncating_scale_deadlines)
        result = run_campaign(
            CampaignConfig(budget=6, seed=3, max_counterexamples=1,
                           shrink=False)
        )
        assert not result.ok
        from repro.fuzz import report_to_dict

        doc = report_to_dict(result)
        validate_report_dict(doc)
        entry = doc["counterexamples"][0]
        assert network_from_dict(entry["network"]) == \
            result.counterexamples[0].network
        assert network_from_dict(entry["shrunk_network"]) == \
            result.counterexamples[0].shrunk
        assert "generate_instance" in entry["repro"]


class TestPerMasterRegime:
    """The single-outstanding-request regime is a per-master property:
    the §3/§4 queues are shared, so one backlogged stream (R + J > T)
    floods the queue its neighbours wait in and their printed figures
    stop being claims.  seed-0 multi-master-ring #1536 is the concrete
    instance a 2000-budget campaign trips over: M1/m0s0 has R=28696 but
    T=5088, and its FCFS queue-mate m0s1 — individually in regime —
    observes ~35128 > bound 28696."""

    def test_backlogged_queue_mate_is_not_a_false_positive(self):
        net = generate_instance(0, "multi-master-ring", 1536)
        from repro.profibus.ttr import analyse

        a = analyse(net, "fcfs")
        by_name = {f"{sr.master}/{sr.stream.name}": sr for sr in a.per_stream}
        hog, mate = by_name["M1/m0s0"], by_name["M1/m0s1"]
        assert hog.R + hog.stream.J > hog.stream.T  # out of regime
        assert mate.R + mate.stream.J <= mate.stream.T  # in regime alone
        out = check_soundness(net, "fcfs", seed=0)
        assert out.status == "ok", out.detail

    def test_fully_in_regime_master_still_checked(self):
        # the per-master filter must not blanket-skip healthy masters:
        # a clean instance keeps producing decisive ok rows
        net = generate_instance(0, "tight-ttr", 0)
        out = check_soundness(net, "dm", seed=0)
        assert out.status == "ok"


class TestHorizonAutoExtension:
    """The `incomplete`-verdict skip is now a geometric retry: a horizon
    that starts too short (capped) must be extended until the simulation
    produces a decisive answer, and only an exhausted retry budget is
    recorded as a (tracked) skip."""

    def test_capped_horizon_extends_to_checked_row(self):
        net = generate_instance(0, "multi-master-ring", 0)
        out = check_soundness(net, "dm", seed=0, horizon_cap=2_000,
                              max_extensions=12)
        assert out.status == "ok"
        assert out.extensions > 0  # the cap really was too short

    def test_exhausted_budget_is_a_tracked_skip(self):
        net = generate_instance(0, "multi-master-ring", 0)
        out = check_soundness(net, "dm", seed=0, horizon_cap=2_000,
                              max_extensions=0)
        assert out.status == "skipped"
        assert "incomplete" in out.detail

    def test_extension_result_matches_unconstrained_run(self):
        # the extended run must reach the same verdict the generous
        # default horizon reaches directly
        net = generate_instance(0, "jitter-heavy", 1)
        direct = check_soundness(net, "edf", seed=0)
        extended = check_soundness(net, "edf", seed=0, horizon_cap=4_000,
                                   max_extensions=14)
        assert direct.status == extended.status == "ok"

    def test_campaign_tracks_extensions(self):
        result = run_campaign(CampaignConfig(
            budget=6, seed=0, horizon_cap=2_000,
            max_horizon_extensions=14,
        ))
        assert result.ok
        sound = result.oracle_stats["soundness"]
        assert sound["skipped"] == 0
        assert sound["extended"] > 0
        fam_extended = sum(
            per["soundness"]["extended"]
            for per in result.family_oracle_stats.values()
        )
        assert fam_extended == sound["extended"]


class TestPooledCampaign:
    def test_workers_match_serial(self):
        serial = run_campaign(CampaignConfig(budget=12, seed=5, workers=1))
        pooled = run_campaign(CampaignConfig(budget=12, seed=5, workers=2))
        assert pooled.oracle_stats == serial.oracle_stats
        assert pooled.family_oracle_stats == serial.family_oracle_stats
        assert pooled.family_counts == serial.family_counts
        assert pooled.ok and serial.ok

    def test_pooled_failures_identical_to_serial(self, monkeypatch):
        from repro.profibus import sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_scale_deadlines",
                            _truncating_scale_deadlines)
        serial = run_campaign(CampaignConfig(budget=12, seed=0, workers=1,
                                             shrink=False))
        # pool children fork at submission time, so they inherit the
        # monkeypatched sweep module and fail the same way
        pooled = run_campaign(CampaignConfig(budget=12, seed=0, workers=2,
                                             shrink=False))
        assert not serial.ok and not pooled.ok
        assert pooled.oracle_stats == serial.oracle_stats
        assert [(ce.oracle, ce.family, ce.index, ce.detail)
                for ce in pooled.counterexamples] == \
               [(ce.oracle, ce.family, ce.index, ce.detail)
                for ce in serial.counterexamples]


class TestCheckpointResume:
    def _config(self, path, **kw):
        return CampaignConfig(budget=18, seed=3,
                              checkpoint=str(path / "ck.jsonl"), **kw)

    def test_fresh_run_writes_header_and_rows(self, tmp_path):
        result = run_campaign(self._config(tmp_path))
        assert result.resumed_instances == 0
        lines = [json.loads(l) for l in
                 (tmp_path / "ck.jsonl").read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert lines[0]["seed"] == 3
        rows = [l for l in lines if l["kind"] == "row"]
        assert {r["index"] for r in rows} == set(range(18))

    def test_killed_then_resumed_matches_uninterrupted(self, tmp_path):
        from repro.fuzz import report_to_dict

        full = run_campaign(self._config(tmp_path))
        ck = tmp_path / "ck.jsonl"
        lines = ck.read_text().splitlines()
        # "kill" the campaign: header + 7 rows, the 8th cut mid-write
        ck.write_text("\n".join(lines[:8]) + "\n" + lines[8][:25])
        resumed = run_campaign(self._config(tmp_path))
        assert resumed.resumed_instances == 7
        assert resumed.oracle_stats == full.oracle_stats
        assert resumed.family_oracle_stats == full.family_oracle_stats
        timing_fields = ("created_unix", "timings", "elapsed_seconds",
                         "config", "resumed_instances")
        full_doc = report_to_dict(full)
        resumed_doc = report_to_dict(resumed)
        for key in timing_fields:
            full_doc.pop(key), resumed_doc.pop(key)
        assert resumed_doc == full_doc

    def test_mismatched_header_rejected(self, tmp_path):
        run_campaign(self._config(tmp_path))
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(budget=18, seed=4,  # different seed
                                        checkpoint=str(tmp_path / "ck.jsonl")))

    def test_resume_with_different_workers_is_allowed(self, tmp_path):
        full = run_campaign(self._config(tmp_path, workers=1))
        ck = tmp_path / "ck.jsonl"
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:10]) + "\n")
        resumed = run_campaign(self._config(tmp_path, workers=2))
        assert resumed.resumed_instances == 9
        assert resumed.oracle_stats == full.oracle_stats

    def test_double_kill_keeps_all_progress(self, tmp_path):
        # Regression: resuming used to append straight after a torn
        # trailing line, fusing the first new record into unparseable
        # JSON — a second interruption then lost everything after the
        # first kill point.  The torn line must be truncated away so
        # every resume leg starts on a fresh line.
        full = run_campaign(self._config(tmp_path))
        ck = tmp_path / "ck.jsonl"
        lines = ck.read_text().splitlines()
        # first kill: header + 4 rows, 5th torn mid-write
        ck.write_text("\n".join(lines[:5]) + "\n" + lines[5][:30])
        mid = run_campaign(self._config(tmp_path))
        assert mid.resumed_instances == 4
        # second kill: tear the now-rewritten file again, later on
        lines2 = ck.read_text().splitlines()
        assert all(json.loads(l) for l in lines2)  # no fused garbage
        ck.write_text("\n".join(lines2[:12]) + "\n" + lines2[12][:17])
        final = run_campaign(self._config(tmp_path))
        assert final.resumed_instances == 11  # progress past the 1st kill
        assert final.oracle_stats == full.oracle_stats
        assert final.family_oracle_stats == full.family_oracle_stats

    def test_completed_checkpoint_reruns_nothing(self, tmp_path):
        full = run_campaign(self._config(tmp_path))
        again = run_campaign(self._config(tmp_path))
        assert again.resumed_instances == 18
        assert again.oracle_stats == full.oracle_stats

    def test_empty_checkpoint_file_restarts_cleanly(self, tmp_path):
        """A checkpoint that exists but holds nothing (killed before the
        header flushed) is a fresh start, not an error — and the final
        counters are identical to an uninterrupted run's."""
        full = run_campaign(CampaignConfig(budget=18, seed=3))
        ck = tmp_path / "ck.jsonl"
        ck.write_text("")
        resumed = run_campaign(self._config(tmp_path))
        assert resumed.resumed_instances == 0
        assert resumed.oracle_stats == full.oracle_stats
        assert resumed.family_oracle_stats == full.family_oracle_stats
        lines = ck.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"  # rewritten

    def test_header_only_checkpoint_restarts_cleanly(self, tmp_path):
        full = run_campaign(CampaignConfig(budget=18, seed=3))
        first = run_campaign(self._config(tmp_path))
        ck = tmp_path / "ck.jsonl"
        header = ck.read_text().splitlines()[0]
        ck.write_text(header + "\n")
        resumed = run_campaign(self._config(tmp_path))
        assert resumed.resumed_instances == 0
        assert resumed.oracle_stats == full.oracle_stats
        assert resumed.family_oracle_stats == full.family_oracle_stats
        assert first.oracle_stats == resumed.oracle_stats
        # exactly one header in the rewritten file
        kinds = [json.loads(l)["kind"] for l in
                 ck.read_text().splitlines()]
        assert kinds.count("header") == 1
        assert kinds.count("row") == 18

    def test_fingerprint_mismatch_fails_cleanly_and_preserves_file(
        self, tmp_path
    ):
        """A mismatched header must raise without touching the file, so
        rerunning with the *original* configuration still resumes to
        identical final counters."""
        full = run_campaign(self._config(tmp_path))
        ck = tmp_path / "ck.jsonl"
        before = ck.read_text()
        for bad in (
            CampaignConfig(budget=18, seed=4, checkpoint=str(ck)),
            CampaignConfig(budget=20, seed=3, checkpoint=str(ck)),
            CampaignConfig(budget=18, seed=3, checkpoint=str(ck),
                           horizon_cap=12345),
        ):
            with pytest.raises(ValueError, match="different campaign"):
                run_campaign(bad)
            assert ck.read_text() == before
        again = run_campaign(self._config(tmp_path))
        assert again.resumed_instances == 18
        assert again.oracle_stats == full.oracle_stats
        assert again.family_oracle_stats == full.family_oracle_stats


class TestRedescribePolicies:
    def test_kernel_redescription_uses_campaign_policies(self, monkeypatch):
        """Satellite fix: the shrunk-counterexample detail for the kernel
        oracle must be computed against the campaign's policy set, not
        DEFAULT_POLICIES — the two can disagree under --policies."""
        from repro.fuzz import campaign as campaign_mod

        seen = {}

        def recording_check(network, policies=("SENTINEL",)):
            seen["policies"] = tuple(policies)
            from repro.fuzz.oracles import OracleOutcome

            return OracleOutcome("fail", "kernel detail on shrunk")

        monkeypatch.setattr(campaign_mod, "check_kernel_equivalence",
                            recording_check)
        config = CampaignConfig(budget=1, seed=0, policies=("dm",))
        failure = campaign_mod._Failure(
            oracle=campaign_mod.ORACLE_KERNEL, family="tight-ttr", index=0,
            policy=None, factor=None, detail="original",
        )
        net = generate_instance(0, "tight-ttr", 0)
        detail = campaign_mod._redescribe(failure, net, config)
        assert detail == "kernel detail on shrunk"
        assert seen["policies"] == ("dm",)

    def test_kernel_shrink_predicate_uses_campaign_policies(self, monkeypatch):
        from repro.fuzz import campaign as campaign_mod

        seen = []

        def recording_check(network, policies=("SENTINEL",)):
            seen.append(tuple(policies))
            from repro.fuzz.oracles import OracleOutcome

            return OracleOutcome("ok")

        monkeypatch.setattr(campaign_mod, "check_kernel_equivalence",
                            recording_check)
        config = CampaignConfig(budget=1, seed=0, policies=("edf", "dm"))
        failure = campaign_mod._Failure(
            oracle=campaign_mod.ORACLE_KERNEL, family="tight-ttr", index=0,
            policy=None, factor=None, detail="original",
        )
        predicate = campaign_mod._predicate_for(failure, config)
        predicate(generate_instance(0, "tight-ttr", 0))
        assert seen == [("edf", "dm")]


class TestCliFuzz:
    def test_clean_run_exit_zero(self, capsys, tmp_path):
        out_path = tmp_path / "FUZZ_report.json"
        rc = main(["fuzz", "--budget", "8", "--seed", "1",
                   "--out", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "soundness" in out
        assert "kernel_equivalence" in out
        doc = json.loads(out_path.read_text())
        validate_report_dict(doc)

    def test_family_restriction(self, capsys, tmp_path):
        out_path = tmp_path / "FUZZ_report.json"
        rc = main(["fuzz", "--budget", "4", "--seed", "0",
                   "--families", "tight-ttr", "retry-prone",
                   "--out", str(out_path)])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert set(doc["families"]) == {"tight-ttr", "retry-prone"}
