"""Batch drivers, benchmark driver and the parallel sweep plumbing."""

import json
import pickle
from dataclasses import replace
from functools import partial

import pytest

from repro.gen import random_network
from repro.perf.batch import (
    BatchResult,
    _analyse_pair,
    _point_seed,
    acceptance_curve,
    analyse_many,
    generate_networks,
    pooled_imap,
    pooled_map,
)
from repro.perf.bench import SCHEMA, format_report, run_benchmark, write_benchmark
from repro.perf.config import fast_path_disabled
from repro.profibus import analyse, tdel


def small_workload(n=10, seed=3):
    return generate_networks(n, seed=seed, d_over_t=(0.2, 0.9))


class TestAnalyseMany:
    def test_matches_per_call_analysis(self):
        nets = small_workload()
        rows = analyse_many(nets, workers=1)
        assert len(rows) == len(nets) * 3
        for row in rows:
            res = analyse(nets[row.index], row.policy)
            assert row.schedulable == res.schedulable
            assert row.worst_response == res.worst_response
            assert row.tcycle == res.tcycle
            slacks = [
                sr.slack for sr in res.per_stream if sr.slack is not None
            ]
            expected = min(slacks) if slacks and res.schedulable else None
            assert row.worst_slack == expected

    def test_fast_and_generic_rows_identical(self):
        fast_rows = analyse_many(small_workload(), workers=1)
        with fast_path_disabled():
            generic_rows = analyse_many(small_workload(), workers=1)
        assert fast_rows == generic_rows

    def test_row_order_is_stable(self):
        rows = analyse_many(small_workload(n=4), workers=1)
        assert [(r.index, r.policy) for r in rows] == [
            (i, p) for i in range(4) for p in ("fcfs", "dm", "edf")
        ]

    def test_parallel_matches_serial(self):
        nets = small_workload(n=8)
        serial = analyse_many(nets, workers=1)
        parallel = analyse_many(small_workload(n=8), workers=2, chunksize=2)
        assert serial == parallel

    def test_parallel_generic_matches_serial(self):
        with fast_path_disabled():
            serial = analyse_many(small_workload(n=8), workers=1)
            parallel = analyse_many(
                small_workload(n=8), workers=2, chunksize=2
            )
        assert serial == parallel

    def test_custom_policies(self):
        rows = analyse_many(small_workload(n=3), policies=("dm",), workers=1)
        assert {r.policy for r in rows} == {"dm"}


def _with_float_jitter(net):
    """One stream gets a float ``J``: ``stream_specs`` refuses non-int
    attributes, so fast-mode analysis takes the generic fallback."""
    from repro.profibus.network import Network

    m0 = net.masters[0]
    streams = [replace(m0.streams[0], J=1.0)] + list(m0.streams[1:])
    return Network(masters=(m0.with_streams(streams),) + net.masters[1:],
                   slaves=net.slaves, phy=net.phy, ttr=net.ttr)


class TestPooledMap:
    def test_matches_serial_and_preserves_order(self):
        jobs = list(enumerate(small_workload(n=8)))
        fn = partial(_analyse_pair, policies=("dm", "edf"))
        serial = pooled_map(fn, jobs, workers=1)
        pooled = pooled_map(fn, jobs, workers=2, chunksize=2)
        assert pooled == serial
        assert [rows[0].index for rows in pooled] == list(range(8))

    def test_imap_streams_in_order(self):
        jobs = list(enumerate(small_workload(n=6)))
        fn = partial(_analyse_pair, policies=("dm",))
        seen = [rows[0].index
                for rows in pooled_imap(fn, jobs, workers=2, chunksize=1)]
        assert seen == list(range(6))

    def test_generic_fallback_counted_in_generic_bucket(self):
        # Regression: workers used to report fast+generic as one number
        # and the parent folded it all into the fast bucket, crediting
        # generic-fallback iterations inside fast-mode workers as fast.
        from repro.perf.stats import counters

        nets = small_workload(n=8)
        nets[0] = _with_float_jitter(nets[0])
        counters.reset()
        pooled = analyse_many(nets, workers=2, chunksize=2)
        pooled_split = (counters.fast, counters.generic)
        assert pooled_split[0] > 0
        assert pooled_split[1] > 0  # the float-jitter network's iterations
        counters.reset()
        serial = analyse_many(nets, workers=1)
        assert pooled == serial
        assert (counters.fast, counters.generic) == pooled_split


class TestGenerateNetworks:
    def test_reproducible(self):
        a = generate_networks(5, seed=11)
        b = generate_networks(5, seed=11)
        assert a == b
        assert a is not b

    def test_seed_changes_workload(self):
        assert generate_networks(5, seed=1) != generate_networks(5, seed=2)

    def test_ttr_at_least_ring_latency(self):
        for net in generate_networks(10, seed=5):
            assert net.ttr >= net.ring_latency()

    def test_networks_pickle_without_identity_caches(self):
        net = generate_networks(1, seed=9)[0]
        analyse(net, "dm")  # populate instance memos
        clone = pickle.loads(pickle.dumps(net))
        assert clone == net
        for master in clone.masters:
            assert not hasattr(master, "_analysis_memo")
        # and the clone analyses to the same verdicts
        a, b = analyse(net, "edf"), analyse(clone, "edf")
        assert [sr.R for sr in a.per_stream] == [sr.R for sr in b.per_stream]


class TestAcceptanceCurve:
    def test_counts_and_dominance(self):
        curve = acceptance_curve((1.0, 0.2), 6, workers=1, seed=4)
        assert set(curve) == {1.0, 0.2}
        for counts in curve.values():
            for policy, count in counts.items():
                assert 0 <= count <= 6
            # eq. (16)/(17) dominate eq. (11) pointwise
            assert counts["dm"] >= counts["fcfs"]
            assert counts["edf"] >= counts["fcfs"]

    def test_deterministic(self):
        assert acceptance_curve((0.5,), 5, seed=7) == acceptance_curve(
            (0.5,), 5, seed=7
        )

    def test_fine_grid_points_get_distinct_workloads(self):
        # Regression: `seed * 1_000_003 + int(x * 1000)` collided for
        # tightness levels agreeing to three decimals, feeding 0.2 and
        # 0.2004 identical workloads on fine grids.
        a, b = _point_seed(0, 0.2), _point_seed(0, 0.2004)
        assert a != b
        assert generate_networks(3, seed=a) != generate_networks(3, seed=b)

    def test_point_seed_injective_across_campaign_seeds(self):
        # the old mix also collided across (seed, level) pairs:
        # seed=0/x=1.0 vs seed=1/x=-... ; string encoding cannot
        assert _point_seed(1, 0.2) != _point_seed(0, 0.2)
        assert _point_seed(0, 1.0) != _point_seed(0, 1.0004)


class TestBenchmark:
    def test_report_schema_and_consistency(self, tmp_path):
        report = run_benchmark(n_networks=10, workers=1, rounds=1, seed=2)
        assert report["schema"] == SCHEMA
        assert report["consistent"] is True
        assert report["workload"]["analyses"] == 30
        for mode in ("generic_serial", "fast_serial", "vectorized_serial",
                     "fast_parallel", "vectorized_parallel"):
            entry = report["modes"][mode]
            assert entry["analyses_per_sec"] > 0
            assert entry["iterations"] > 0
        assert report["modes"]["fast_serial"]["speedup_vs_generic"] > 0
        vec = report["modes"]["vectorized_serial"]
        assert vec["speedup_vs_generic"] > 0
        assert vec["speedup_vs_fast"] > 0
        from repro.perf import vector

        assert report["machine"]["numpy"] == vector.numpy_version()
        assert report["machine"]["vector_backend"] == vector.backend_name()
        out = tmp_path / "BENCH_batch.json"
        write_benchmark(report, str(out))
        loaded = json.loads(out.read_text())
        assert loaded["schema"] == SCHEMA
        lines = format_report(report)
        assert any("fast_serial" in line for line in lines)
        assert any("vectorized_serial" in line for line in lines)

    def test_mode_restriction(self):
        report = run_benchmark(n_networks=6, workers=1, rounds=1, seed=3,
                               modes=("generic", "vectorized"))
        assert set(report["modes"]) == {"generic_serial", "vectorized_serial",
                                        "vectorized_parallel"}
        with pytest.raises(ValueError):
            run_benchmark(n_networks=4, workers=1, rounds=1,
                          modes=("warp",))

    def test_cli_bench_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_batch.json"
        rc = main([
            "bench", "--networks", "8", "--rounds", "1", "--workers", "1",
            "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        data = json.loads(out.read_text())
        assert data["schema"] == SCHEMA
        assert "fast_serial" in data["modes"]
        assert "vectorized_serial" in data["modes"]
        assert "wrote" in capsys.readouterr().out

    def test_cli_bench_mode_restriction(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_batch.json"
        rc = main([
            "bench", "--networks", "6", "--rounds", "1", "--workers", "1",
            "--mode", "fast", "vectorized", "--out", str(out),
        ])
        assert rc == 0
        data = json.loads(out.read_text())
        assert set(data["modes"]) == {"fast_serial", "fast_parallel",
                                      "vectorized_serial",
                                      "vectorized_parallel"}
        capsys.readouterr()


class TestSweepWorkers:
    def test_ttr_sweep_parallel_matches_serial(self):
        from repro.profibus.sweep import ttr_sweep

        net = random_network(n_masters=2, streams_per_master=3, seed=21)
        net = net.with_ttr(max(net.ring_latency(), tdel(net)))
        values = [
            net.ring_latency() // 2,  # below ring latency: marker row
            net.ring_latency() + 500,
            net.ring_latency() + 3000,
        ]
        serial = ttr_sweep(net, values, workers=1)
        parallel = ttr_sweep(net, values, workers=2)
        assert serial == parallel
        assert [r.schedulable for r in serial[:3]] == [False] * 3


class TestRngThreading:
    def test_random_network_rng_param(self):
        import random as _random

        rng = _random.Random(99)
        a = random_network(seed=12345, rng=rng)  # seed ignored with rng
        b = random_network(rng=_random.Random(99))
        assert a == b

    def test_random_taskset_rng_param(self):
        import random as _random

        from repro.gen import random_taskset

        a = random_taskset(4, 0.7, rng=_random.Random(5))
        b = random_taskset(4, 0.7, seed=5)
        assert a == b
