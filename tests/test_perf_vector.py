"""The SoA vector engine (`repro.perf.vector`) — packing, lane engine,
and the three-mode bit-equality contract.

Three properties carry the module:

* ``pack_networks`` must round-trip the object model *exactly* — the
  flat arrays read back as the same ``(Tcycle, (T, D, J)…)`` view the
  scalar kernels receive, and anything unrepresentable lands in
  ``fallback`` rather than being coerced;
* the numpy lane engine's convergence masking (retired lanes compacted
  out per sweep) must be observationally identical to full-width
  per-lane iteration — values, convergence flags *and* iteration
  counts — across thousands of random lane sets in all three recurrence
  kinds;
* ``vectorized`` mode must be bit-identical to ``generic`` and ``fast``
  through the public batch driver, on both backends.

Backend-sensitive tests run once per available backend; the numpy
parameter skips cleanly on numpy-free machines (including the
``REPRO_DISABLE_NUMPY=1`` CI leg), where the pure-python fallback is
the engine under test.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import vector
from repro.perf.batch import analyse_many, generate_networks
from repro.perf.stats import counters
from repro.perf.vector import (
    _PACK_LIMIT,
    _pack_value,
    _run_lanes,
    _run_lanes_python,
    pack_networks,
)
from repro.profibus.network import stream_specs
from repro.profibus.timing import tcycle as compute_tcycle

requires_numpy = pytest.mark.skipif(
    vector.numpy_version() is None, reason="numpy unavailable"
)

BACKENDS = [
    pytest.param("python"),
    pytest.param("numpy", marks=requires_numpy),
]

POLICIES = ("fcfs", "dm", "edf")


def _mixed_workload(n=30, seed="vectest"):
    nets = list(generate_networks(n, seed=seed))
    nets += generate_networks(n // 2, seed=f"{seed}-tight",
                              d_over_t=(0.05, 0.4))
    return nets


# ------------------------------------------------------------------ packing

class TestPackRoundTrip:
    def test_pack_round_trips_object_model(self):
        nets = _mixed_workload(40)
        pack = pack_networks(nets)
        assert pack.fallback == ()
        assert pack.n_packed == len(nets)
        for p, net in enumerate(nets):
            tc = compute_tcycle(net, net.require_ttr(), refined=False)
            want = (tc, tuple(stream_specs(m) for m in net.masters))
            assert pack.network_view(p) == want

    def test_pack_respects_ttr_override(self):
        nets = _mixed_workload(6, seed="ttr-override")
        probe = nets[0].require_ttr() + 256
        pack = pack_networks(nets, ttr=probe)
        for p, net in enumerate(nets):
            assert pack.tc[p] == compute_tcycle(net, probe, refined=False)

    def test_non_int_attributes_fall_back(self):
        nets = _mixed_workload(4, seed="fallback")
        broken = nets[1]
        m0 = broken.masters[0]
        streams = list(m0.streams)
        streams[0] = replace(streams[0], T=float(streams[0].T) + 0.5)
        broken = replace(broken, masters=(m0.with_streams(streams),)
                         + broken.masters[1:])
        nets[1] = broken
        pack = pack_networks(nets)
        assert pack.fallback == (1,)
        assert pack.indices == [0] + list(range(2, len(nets)))
        # the packed networks still round-trip
        for p, idx in enumerate(pack.indices):
            net = nets[idx]
            tc = compute_tcycle(net, net.require_ttr(), refined=False)
            assert pack.network_view(p) == (
                tc, tuple(stream_specs(m) for m in net.masters)
            )

    def test_magnitudes_beyond_pack_limit_fall_back(self):
        nets = _mixed_workload(3, seed="huge")
        huge = nets[0]
        m0 = huge.masters[0]
        streams = list(m0.streams)
        streams[0] = replace(streams[0], T=_PACK_LIMIT + 1, D=_PACK_LIMIT)
        huge = replace(huge, masters=(m0.with_streams(streams),)
                       + huge.masters[1:])
        pack = pack_networks([huge] + nets[1:])
        assert pack.fallback == (0,)

    def test_pack_value_is_the_identity_seam(self):
        # the vec-int32-truncation mutant replaces this; unmutated it
        # must pass every magnitude through untouched
        for v in (0, 1, 2**31, 2**32 + 4_000, _PACK_LIMIT):
            assert _pack_value(v) == v

    @given(
        st.lists(
            st.tuples(
                st.integers(3, 10_000),          # T
                st.integers(1, 10_000),          # D
                st.integers(0, 3_000),           # J
            ),
            min_size=0, max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_master_specs_round_trip_any_columns(self, specs):
        # pack-level property without network construction overhead: a
        # hand-packed single-master layout reads back exactly
        pack = vector.NetworkPack()
        pack.networks = (None,)
        pack.indices.append(0)
        pack.tc.append(100)
        pack.master_net.append(0)
        pack.master_tc.append(100)
        for t, d, j in specs:
            pack.stream_T.append(t)
            pack.stream_D.append(d)
            pack.stream_J.append(j)
        pack.master_stream_start.append(len(pack.stream_T))
        pack.net_master_start.append(1)
        pack.net_stream_start.append(len(pack.stream_T))
        assert pack.network_view(0) == (100, (tuple(specs),))


# -------------------------------------------------------------- lane engine

def _random_lanes(rng, n_lanes, kind):
    """Random lane batch guaranteed to terminate: per-lane utilisation
    stays below 1 for the unlimited ceil map, and the strict/capped
    kinds always carry an overshoot limit."""
    base, x0, limit, counts = [], [], [], []
    eC, eT, eJ, eCap = [], [], [], []
    for _ in range(n_lanes):
        cnt = rng.choice((0, 1, 1, 2, 2, 3, 4))
        b = rng.randint(0, 40)
        total_c = 0
        for _ in range(cnt):
            T = rng.randint(25, 90)
            C = rng.randint(1, 5)
            J = rng.randint(0, 30) if rng.random() < 0.5 else 0
            total_c += C
            eC.append(C)
            eT.append(T)
            eJ.append(J)
            eCap.append(rng.randint(1, 7))
        counts.append(cnt)
        base.append(b)
        # seed one map application below the fixed point, like the
        # pipelines do (any seed ≤ lfp is equivalent for a monotone map)
        x0.append(b if rng.random() < 0.5 else b + total_c)
        limit.append(rng.randint(10, 500))
    lim = limit if (kind != "ceil" or rng.random() < 0.5) else None
    cap = eCap if kind == "capped" else None
    return base, x0, lim, counts, eC, eT, eJ, cap


@requires_numpy
class TestLaneEngineMasking:
    """The numpy engine retires converged/overshot lanes and compacts
    the arrays per sweep; every observable must match the full-width
    per-lane reference loop."""

    @pytest.mark.parametrize("kind", ("ceil", "strict", "capped"))
    def test_masked_engine_matches_reference_1000_plus(self, kind):
        rng = random.Random(f"lanes:{kind}")
        checked = 0
        for batch in range(6):
            args = _random_lanes(rng, 200, kind)
            want = _run_lanes_python(kind, *args)
            with vector.backend_forced("numpy"):
                got = _run_lanes(kind, *args)
            assert got[0] == want[0], f"{kind} batch {batch}: values"
            assert got[1] == want[1], f"{kind} batch {batch}: converged"
            assert got[2] == want[2], f"{kind} batch {batch}: iterations"
            checked += len(args[0])
        assert checked >= 1000

    def test_empty_batch(self):
        with vector.backend_forced("numpy"):
            assert _run_lanes("ceil", [], [], None, [], [], [], [], None) \
                == ([], [], 0)

    def test_single_lane_overshoot(self):
        # limit below the fixed point: the lane exits by overshoot and
        # keeps the overshot total (observable in EDF deadline checks)
        args = (["strict", [10], [10], [12], [1], [5], [7], [0], None])
        want = _run_lanes_python(*args)
        with vector.backend_forced("numpy"):
            got = _run_lanes(*args)
        assert got == want
        assert want[1] == [False]


# -------------------------------------------------------- mode equivalence

class TestThreeModeEquality:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_modes_bit_identical(self, backend):
        nets = _mixed_workload(30, seed="threeway")
        generic = analyse_many(nets, POLICIES, workers=1, mode="generic")
        fast = analyse_many(nets, POLICIES, workers=1, mode="fast")
        assert fast == generic
        with vector.backend_forced(backend):
            vec = analyse_many(_mixed_workload(30, seed="threeway"),
                               POLICIES, workers=1, mode="vectorized")
        assert vec == generic

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_response_rows_match_generic(self, backend):
        from repro.perf.config import fast_path_disabled
        from repro.profibus.ttr import analyse

        for net in _mixed_workload(10, seed="rows"):
            for policy in POLICIES:
                with fast_path_disabled():
                    res = analyse(net, policy)
                want = {
                    "tcycle": res.tcycle,
                    "rows": [[sr.master, sr.stream.name, sr.R]
                             for sr in res.per_stream],
                }
                with vector.backend_forced(backend):
                    assert vector.response_rows(net, policy) == want

    def test_vectorized_iterations_counted(self):
        counters.reset()
        analyse_many(_mixed_workload(6, seed="count"), POLICIES,
                     workers=1, mode="vectorized")
        snap = counters.snapshot()
        assert snap["vectorized"] > 0
        assert snap["total"] >= snap["vectorized"]

    def test_unpackable_network_falls_back_identically(self):
        net = _mixed_workload(2, seed="unpack")[0]
        m0 = net.masters[0]
        streams = [replace(s, T=float(s.T)) for s in m0.streams]
        broken = replace(net, masters=(m0.with_streams(streams),)
                         + net.masters[1:])
        rows = analyse_many([broken], POLICIES, workers=1,
                            mode="vectorized")
        assert rows == analyse_many([broken], POLICIES, workers=1,
                                    mode="generic")
