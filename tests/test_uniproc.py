"""Unit tests for the uniprocessor scheduler simulator."""

import pytest

from repro.core import assign_deadline_monotonic, make_taskset
from repro.sim import simulate_uniproc


class TestPreemptiveFP:
    def test_matches_hand_schedule(self, basic_dm_taskset):
        # critical instant: r = [1, 3, 10]
        stats = simulate_uniproc(basic_dm_taskset, 60, policy="fp")
        assert stats.max_response["t0"] == 1
        assert stats.max_response["t1"] == 3
        assert stats.max_response["t2"] == 10

    def test_counts_all_jobs(self, basic_dm_taskset):
        # hyperperiod 60: releases at 0..60 inclusive = 16+11+7
        stats = simulate_uniproc(basic_dm_taskset, 120, policy="fp")
        assert stats.completed["t0"] >= 120 // 4
        assert stats.completed["t1"] >= 120 // 6

    def test_no_misses_on_schedulable_set(self, basic_dm_taskset):
        stats = simulate_uniproc(basic_dm_taskset, 300, policy="fp")
        assert not stats.any_miss

    def test_miss_detected_on_overload(self):
        ts = assign_deadline_monotonic(make_taskset([(3, 5), (3, 6)]))
        stats = simulate_uniproc(ts, 120, policy="fp")
        assert stats.any_miss
        assert stats.missed.get("t1", 0) > 0

    def test_offsets_shift_interference(self, basic_dm_taskset):
        sync = simulate_uniproc(basic_dm_taskset, 240, policy="fp")
        phased = simulate_uniproc(
            basic_dm_taskset, 240, policy="fp", offsets=[0, 1, 2]
        )
        # synchronous release is the worst case for preemptive FP
        assert (
            phased.max_response["t2"] <= sync.max_response["t2"]
        )

    def test_requires_priorities(self):
        ts = make_taskset([(1, 4), (2, 6)])
        with pytest.raises(ValueError):
            simulate_uniproc(ts, 50, policy="fp")

    def test_offsets_length_checked(self, basic_dm_taskset):
        with pytest.raises(ValueError):
            simulate_uniproc(basic_dm_taskset, 50, offsets=[0])


class TestNonpreemptiveFP:
    def test_blocking_visible(self, basic_dm_taskset):
        # t0 can be blocked by a just-started t2: response up to 4
        stats = simulate_uniproc(
            basic_dm_taskset, 300, policy="fp", preemptive=False,
            offsets=[1, 1, 0],  # t2 starts at 0, t0 arrives at 1
        )
        assert stats.max_response["t0"] >= 3  # saw real blocking
        assert stats.max_response["t0"] <= 4  # never beyond eq. (1)

    def test_nonpreemptive_runs_jobs_to_completion(self):
        ts = assign_deadline_monotonic(make_taskset([(1, 10), (5, 20)]))
        stats = simulate_uniproc(ts, 200, policy="fp", preemptive=False)
        # the long job always finishes in one piece: its response is
        # exactly C when it starts free of interference
        assert stats.max_response["t1"] >= 5


class TestEDFPolicies:
    def test_edf_meets_full_utilization(self):
        ts = make_taskset([(1, 2), (1, 4), (2, 8)])  # U = 1
        stats = simulate_uniproc(ts, 400, policy="edf")
        assert not stats.any_miss

    def test_fp_fails_where_edf_succeeds(self):
        # classic: U = 1 non-harmonic is EDF-fine, RM/DM fails
        ts = make_taskset([(2, 4), (5, 10)])
        edf = simulate_uniproc(ts, 400, policy="edf")
        assert not edf.any_miss
        fp = simulate_uniproc(
            assign_deadline_monotonic(ts), 400, policy="fp"
        )
        assert fp.any_miss

    def test_nonpreemptive_edf(self, basic_dm_taskset):
        stats = simulate_uniproc(
            basic_dm_taskset, 300, policy="edf", preemptive=False
        )
        assert not stats.any_miss
        # bound from eqs. (9)-(10): [3, 5, 6]
        assert stats.max_response["t0"] <= 3
        assert stats.max_response["t1"] <= 5
        assert stats.max_response["t2"] <= 6

    def test_unknown_policy(self, basic_dm_taskset):
        with pytest.raises(ValueError):
            simulate_uniproc(basic_dm_taskset, 50, policy="rr")


class TestJitterOnce:
    def test_first_release_delayed(self):
        from repro.core import Task, TaskSet, assign_deadline_monotonic

        ts = assign_deadline_monotonic(TaskSet([
            Task(C=1, T=10, J=4, name="a"), Task(C=2, T=15, name="b"),
        ]))
        stats = simulate_uniproc(ts, 300, policy="fp",
                                 release_jitter_once=True)
        # response measured from notional arrival includes the jitter
        assert stats.max_response["a"] >= 1 + 4
