"""Tests for scenario (de)serialisation."""

import json

import pytest

from repro.profibus import (
    ScenarioFormatError,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.scenarios import factory_cell_network, single_master_network


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [factory_cell_network,
                                         single_master_network])
    def test_round_trip_preserves_analysis(self, factory, tmp_path):
        from repro.profibus import analyse

        net = factory()
        path = tmp_path / "net.json"
        save_network(net, path)
        loaded = load_network(path)
        for policy in ("fcfs", "dm", "edf"):
            a = analyse(net, policy)
            b = analyse(loaded, policy)
            assert a.schedulable == b.schedulable
            assert a.tcycle == b.tcycle
            assert [sr.R for sr in a.per_stream] == [sr.R for sr in b.per_stream]

    def test_round_trip_structure(self):
        net = factory_cell_network()
        doc = network_to_dict(net)
        again = network_to_dict(network_from_dict(doc))
        assert doc == again

    def test_cbits_override_round_trip(self, tmp_path):
        from repro.profibus import Master, MessageStream, Network

        net = Network(masters=(Master(1, (
            MessageStream("x", T=1000, C_bits=777),
        )),), ttr=500)
        path = tmp_path / "n.json"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.masters[0].stream("x").cycle_bits(loaded.phy) == 777


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioFormatError):
            network_from_dict({"masters": [], "bogus": 1})

    def test_typo_in_stream_rejected(self):
        doc = {
            "masters": [{
                "address": 1,
                "streams": [{"name": "s", "T": 100, "dealine": 50}],
            }],
        }
        with pytest.raises(ScenarioFormatError):
            network_from_dict(doc)

    def test_missing_masters(self):
        with pytest.raises(ScenarioFormatError):
            network_from_dict({"phy": {}})

    def test_non_object_document(self):
        with pytest.raises(ScenarioFormatError):
            network_from_dict([1, 2, 3])

    def test_invalid_json_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ScenarioFormatError):
            load_network(p)

    def test_unknown_phy_key(self):
        with pytest.raises(ScenarioFormatError):
            network_from_dict({"masters": [{"address": 1}],
                               "phy": {"baudrate": 9600}})

    def test_semantic_errors_propagate(self):
        # model-level validation still applies after parsing
        with pytest.raises(ValueError):
            network_from_dict({"masters": [
                {"address": 1, "streams": [{"name": "s", "T": 0}]},
            ]})


class TestMinimalDocuments:
    def test_defaults_fill_in(self):
        net = network_from_dict({"masters": [{"address": 3}]})
        assert net.phy.baud_rate == 500_000
        assert net.ttr is None
        assert net.masters[0].name == "M3"

    def test_slaves_parsed(self):
        net = network_from_dict({
            "masters": [{"address": 1}],
            "slaves": [{"address": 9, "name": "drive"}],
        })
        assert net.slaves[0].name == "drive"


class TestDefaultAwareFilter:
    """Regression: optional fields are omitted when they equal the
    dataclass *default*, not when they are merely falsy."""

    def test_max_retry_zero_round_trips(self, tmp_path):
        # max_retry=0 (no retries) is falsy but differs from the default
        # (None = inherit the PHY limit); the old falsy filter dropped it
        from repro.profibus import Master, MessageCycleSpec, MessageStream, Network

        net = Network(masters=(Master(1, (
            MessageStream("x", T=10_000,
                          spec=MessageCycleSpec(req_payload=4,
                                                max_retry=0)),
        )),), ttr=500)
        doc = network_to_dict(net)
        assert doc["masters"][0]["streams"][0]["cycle"]["max_retry"] == 0
        loaded = network_from_dict(doc)
        assert loaded == net
        assert loaded.masters[0].stream("x").spec.max_retry == 0
        # the dropped override changed the analysed cycle length
        assert loaded.masters[0].stream("x").cycle_bits(loaded.phy) == \
            net.masters[0].stream("x").cycle_bits(net.phy)

    def test_exact_network_equality_round_trip(self):
        net = factory_cell_network()
        assert network_from_dict(network_to_dict(net)) == net

    def test_default_values_still_omitted(self):
        from repro.profibus import Master, MessageCycleSpec, MessageStream, Network

        net = Network(masters=(Master(1, (
            MessageStream("plain", T=1000,
                          spec=MessageCycleSpec(req_payload=8)),
        )),), ttr=500)
        stream_doc = network_to_dict(net)["masters"][0]["streams"][0]
        assert "J" not in stream_doc
        assert "high_priority" not in stream_doc
        cycle = stream_doc["cycle"]
        assert set(cycle) == {"req_payload"}  # all other fields at default


class TestFingerprint:
    """The canonical content fingerprint: the value-identity key shared
    by the service cache, corpus entries and fuzz checkpoints."""

    def test_spellings_of_fingerprint_agree(self):
        from repro.profibus.serialization import (
            network_doc_fingerprint,
            network_fingerprint,
        )

        net = factory_cell_network()
        fp = net.fingerprint()
        assert fp == network_fingerprint(net)
        assert fp == network_doc_fingerprint(network_to_dict(net))
        assert len(fp) == 64 and int(fp, 16) >= 0  # a sha256 hex digest

    def test_stable_across_round_trip(self, tmp_path):
        net = factory_cell_network()
        save_network(net, tmp_path / "net.json")
        assert load_network(tmp_path / "net.json").fingerprint() == \
            net.fingerprint()

    def test_stable_across_document_spelling(self):
        net = factory_cell_network()
        doc = network_to_dict(net)
        respelled = json.loads(json.dumps(doc))
        # reorder keys and spell a default-valued optional field out
        respelled["masters"] = [dict(reversed(list(m.items())))
                                for m in respelled["masters"]]
        for master in respelled["masters"]:
            for stream in master["streams"]:
                stream.setdefault("J", 0)
        assert network_from_dict(respelled).fingerprint() == net.fingerprint()

    def test_stable_across_pickle(self):
        import pickle

        net = factory_cell_network()
        fp = net.fingerprint()  # memoise, then drop the memo on pickle
        clone = pickle.loads(pickle.dumps(net))
        assert "_fingerprint" not in clone.__dict__
        assert clone.fingerprint() == fp

    def test_semantic_changes_diverge(self):
        net = factory_cell_network()
        base_doc = network_to_dict(net)
        fingerprints = {net.fingerprint()}

        def variant(mutate):
            doc = json.loads(json.dumps(base_doc))
            mutate(doc)
            return network_from_dict(doc).fingerprint()

        def set_stream(doc, key, value):
            doc["masters"][0]["streams"][0][key] = value

        fingerprints.add(variant(lambda d: set_stream(d, "T", 999_999)))
        fingerprints.add(variant(lambda d: set_stream(d, "D", 1_234)))
        fingerprints.add(variant(lambda d: set_stream(d, "J", 77)))
        fingerprints.add(variant(
            lambda d: d.__setitem__("ttr", d["ttr"] + 1)))
        fingerprints.add(variant(
            lambda d: d["phy"].__setitem__("baud_rate", 93_750)))
        fingerprints.add(variant(
            lambda d: d["masters"].reverse()))  # ring order is semantic
        assert len(fingerprints) == 7  # every mutation changed the digest
