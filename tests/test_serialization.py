"""Tests for scenario (de)serialisation."""

import json

import pytest

from repro.profibus import (
    ScenarioFormatError,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.scenarios import factory_cell_network, single_master_network


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [factory_cell_network,
                                         single_master_network])
    def test_round_trip_preserves_analysis(self, factory, tmp_path):
        from repro.profibus import analyse

        net = factory()
        path = tmp_path / "net.json"
        save_network(net, path)
        loaded = load_network(path)
        for policy in ("fcfs", "dm", "edf"):
            a = analyse(net, policy)
            b = analyse(loaded, policy)
            assert a.schedulable == b.schedulable
            assert a.tcycle == b.tcycle
            assert [sr.R for sr in a.per_stream] == [sr.R for sr in b.per_stream]

    def test_round_trip_structure(self):
        net = factory_cell_network()
        doc = network_to_dict(net)
        again = network_to_dict(network_from_dict(doc))
        assert doc == again

    def test_cbits_override_round_trip(self, tmp_path):
        from repro.profibus import Master, MessageStream, Network

        net = Network(masters=(Master(1, (
            MessageStream("x", T=1000, C_bits=777),
        )),), ttr=500)
        path = tmp_path / "n.json"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.masters[0].stream("x").cycle_bits(loaded.phy) == 777


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioFormatError):
            network_from_dict({"masters": [], "bogus": 1})

    def test_typo_in_stream_rejected(self):
        doc = {
            "masters": [{
                "address": 1,
                "streams": [{"name": "s", "T": 100, "dealine": 50}],
            }],
        }
        with pytest.raises(ScenarioFormatError):
            network_from_dict(doc)

    def test_missing_masters(self):
        with pytest.raises(ScenarioFormatError):
            network_from_dict({"phy": {}})

    def test_non_object_document(self):
        with pytest.raises(ScenarioFormatError):
            network_from_dict([1, 2, 3])

    def test_invalid_json_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ScenarioFormatError):
            load_network(p)

    def test_unknown_phy_key(self):
        with pytest.raises(ScenarioFormatError):
            network_from_dict({"masters": [{"address": 1}],
                               "phy": {"baudrate": 9600}})

    def test_semantic_errors_propagate(self):
        # model-level validation still applies after parsing
        with pytest.raises(ValueError):
            network_from_dict({"masters": [
                {"address": 1, "streams": [{"name": "s", "T": 0}]},
            ]})


class TestMinimalDocuments:
    def test_defaults_fill_in(self):
        net = network_from_dict({"masters": [{"address": 3}]})
        assert net.phy.baud_rate == 500_000
        assert net.ttr is None
        assert net.masters[0].name == "M3"

    def test_slaves_parsed(self):
        net = network_from_dict({
            "masters": [{"address": 1}],
            "slaves": [{"address": 9, "name": "drive"}],
        })
        assert net.slaves[0].name == "drive"


class TestDefaultAwareFilter:
    """Regression: optional fields are omitted when they equal the
    dataclass *default*, not when they are merely falsy."""

    def test_max_retry_zero_round_trips(self, tmp_path):
        # max_retry=0 (no retries) is falsy but differs from the default
        # (None = inherit the PHY limit); the old falsy filter dropped it
        from repro.profibus import Master, MessageCycleSpec, MessageStream, Network

        net = Network(masters=(Master(1, (
            MessageStream("x", T=10_000,
                          spec=MessageCycleSpec(req_payload=4,
                                                max_retry=0)),
        )),), ttr=500)
        doc = network_to_dict(net)
        assert doc["masters"][0]["streams"][0]["cycle"]["max_retry"] == 0
        loaded = network_from_dict(doc)
        assert loaded == net
        assert loaded.masters[0].stream("x").spec.max_retry == 0
        # the dropped override changed the analysed cycle length
        assert loaded.masters[0].stream("x").cycle_bits(loaded.phy) == \
            net.masters[0].stream("x").cycle_bits(net.phy)

    def test_exact_network_equality_round_trip(self):
        net = factory_cell_network()
        assert network_from_dict(network_to_dict(net)) == net

    def test_default_values_still_omitted(self):
        from repro.profibus import Master, MessageCycleSpec, MessageStream, Network

        net = Network(masters=(Master(1, (
            MessageStream("plain", T=1000,
                          spec=MessageCycleSpec(req_payload=8)),
        )),), ttr=500)
        stream_doc = network_to_dict(net)["masters"][0]["streams"][0]
        assert "J" not in stream_doc
        assert "high_priority" not in stream_doc
        cycle = stream_doc["cycle"]
        assert set(cycle) == {"req_payload"}  # all other fields at default
