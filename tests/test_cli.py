"""Tests for the profibus-rt command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyse", "--scenario", "nope"])

    def test_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyse", "--policy", "lifo"])


class TestAnalyse:
    def test_dm_schedulable_exit_zero(self, capsys):
        rc = main(["analyse", "--scenario", "factory-cell", "--policy", "dm"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "schedulable: True" in out
        assert "axis-setpoint" in out

    def test_fcfs_miss_exit_one(self, capsys):
        rc = main(["analyse", "--scenario", "factory-cell", "--policy", "fcfs"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "MISS" in out

    def test_ttr_override(self, capsys):
        rc = main(["analyse", "--scenario", "factory-cell", "--policy", "dm",
                   "--ttr", "8000"])
        out = capsys.readouterr().out
        assert "TTR=8000" in out

    def test_refined_flag(self, capsys):
        rc = main(["analyse", "--scenario", "factory-cell", "--policy", "dm",
                   "--refined"])
        assert rc in (0, 1)


class TestTtr:
    def test_reports_all_policies(self, capsys):
        rc = main(["ttr", "--scenario", "factory-cell"])
        out = capsys.readouterr().out
        assert rc == 0
        for pol in ("fcfs", "dm", "edf"):
            assert pol in out

    def test_single_master_fcfs_infeasible(self, capsys):
        rc = main(["ttr", "--scenario", "single-master"])
        out = capsys.readouterr().out
        assert "infeasible" in out


class TestSimulate:
    def test_sound_run_exit_zero(self, capsys):
        rc = main(["simulate", "--scenario", "single-master",
                   "--policy", "edf", "--horizon-ms", "500"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all bounds sound: True" in out

    def test_observed_column_present(self, capsys):
        main(["simulate", "--scenario", "single-master",
              "--policy", "fcfs", "--horizon-ms", "300"])
        out = capsys.readouterr().out
        assert "observed" in out
        assert "max TRR observed" in out


class TestReport:
    def test_breakdown_fields(self, capsys):
        rc = main(["report", "--scenario", "paper-illustration"])
        out = capsys.readouterr().out
        assert rc == 0
        for needle in ("ring latency", "Tdel (eq. 13)", "Tcycle (eq. 14)",
                       "per-master longest cycles"):
            assert needle in out


class TestBandwidth:
    def test_reports_fraction_per_policy(self, capsys):
        rc = main(["bandwidth", "--scenario", "factory-cell"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "% of bus time" in out
        for pol in ("fcfs", "dm", "edf"):
            assert pol in out


class TestExportAndFile:
    def test_export_then_analyse_file(self, tmp_path, capsys):
        path = tmp_path / "net.json"
        rc = main(["export", "--scenario", "single-master", str(path)])
        assert rc == 0
        assert path.exists()
        capsys.readouterr()
        rc = main(["analyse", "--file", str(path), "--policy", "dm"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "schedulable: True" in out

    def test_file_and_ttr_override(self, tmp_path, capsys):
        path = tmp_path / "net.json"
        main(["export", "--scenario", "single-master", str(path)])
        capsys.readouterr()
        rc = main(["analyse", "--file", str(path), "--policy", "dm",
                   "--ttr", "2000"])
        out = capsys.readouterr().out
        assert "TTR=2000" in out


class TestExitCodeMatrix:
    """One row per failure mode: the CLI must exit with a *clean*
    diagnostic and a documented code — argparse rejections exit 2,
    runtime rejections exit via SystemExit with a message (code 1 when
    raised with a string), never a traceback."""

    def test_bad_scenario_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["analyse", "--scenario", "not-a-plant"])
        assert exc.value.code == 2

    def test_bad_policy_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["analyse", "--policy", "lifo"])
        assert exc.value.code == 2

    def test_conflicting_scenario_and_file_exit_2(self, tmp_path):
        path = tmp_path / "net.json"
        with pytest.raises(SystemExit) as exc:
            main(["analyse", "--scenario", "factory-cell",
                  "--file", str(path)])
        assert exc.value.code == 2

    def test_missing_file_is_a_clean_message(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["analyse", "--file", str(tmp_path / "missing.json")])
        assert "cannot read scenario file" in str(exc.value.code)

    def test_malformed_file_is_a_clean_message(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit) as exc:
            main(["analyse", "--file", str(path)])
        assert "bad scenario file" in str(exc.value.code)

    def test_unknown_key_in_file_is_a_clean_message(self, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text('{"masters": [{"address": 1, "dealine": 5}]}')
        with pytest.raises(SystemExit) as exc:
            main(["analyse", "--file", str(path)])
        assert "bad scenario file" in str(exc.value.code)

    def test_unknown_scenario_listed_before_file_processing(self, tmp_path):
        """Programmatic callers (argparse can't reach this): an unknown
        scenario is diagnosed with the valid choices *before* any file
        handling touches the filesystem."""
        import argparse

        from repro.cli import _load_network

        args = argparse.Namespace(
            scenario="bogus", file=str(tmp_path / "never-read.json"),
            ttr=None,
        )
        with pytest.raises(SystemExit) as exc:
            _load_network(args)
        message = str(exc.value.code)
        assert "unknown scenario 'bogus'" in message
        assert "factory-cell" in message  # the valid choices are listed

    def test_namespace_without_any_source_is_diagnosed(self):
        import argparse

        from repro.cli import _load_network

        with pytest.raises(SystemExit) as exc:
            _load_network(argparse.Namespace(scenario=None, file=None))
        assert "need --scenario or --file" in str(exc.value.code)


class TestTrace:
    def test_timeline_rendered(self, capsys):
        rc = main(["trace", "--scenario", "single-master", "--policy", "dm",
                   "--horizon-ms", "60", "--window-ms", "20", "--width", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "token arrival" in out
        assert "bus utilisation" in out
        assert "|" in out
