"""Tests for the profibus-rt command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyse", "--scenario", "nope"])

    def test_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyse", "--policy", "lifo"])


class TestAnalyse:
    def test_dm_schedulable_exit_zero(self, capsys):
        rc = main(["analyse", "--scenario", "factory-cell", "--policy", "dm"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "schedulable: True" in out
        assert "axis-setpoint" in out

    def test_fcfs_miss_exit_one(self, capsys):
        rc = main(["analyse", "--scenario", "factory-cell", "--policy", "fcfs"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "MISS" in out

    def test_ttr_override(self, capsys):
        rc = main(["analyse", "--scenario", "factory-cell", "--policy", "dm",
                   "--ttr", "8000"])
        out = capsys.readouterr().out
        assert "TTR=8000" in out

    def test_refined_flag(self, capsys):
        rc = main(["analyse", "--scenario", "factory-cell", "--policy", "dm",
                   "--refined"])
        assert rc in (0, 1)


class TestTtr:
    def test_reports_all_policies(self, capsys):
        rc = main(["ttr", "--scenario", "factory-cell"])
        out = capsys.readouterr().out
        assert rc == 0
        for pol in ("fcfs", "dm", "edf"):
            assert pol in out

    def test_single_master_fcfs_infeasible(self, capsys):
        rc = main(["ttr", "--scenario", "single-master"])
        out = capsys.readouterr().out
        assert "infeasible" in out


class TestSimulate:
    def test_sound_run_exit_zero(self, capsys):
        rc = main(["simulate", "--scenario", "single-master",
                   "--policy", "edf", "--horizon-ms", "500"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all bounds sound: True" in out

    def test_observed_column_present(self, capsys):
        main(["simulate", "--scenario", "single-master",
              "--policy", "fcfs", "--horizon-ms", "300"])
        out = capsys.readouterr().out
        assert "observed" in out
        assert "max TRR observed" in out


class TestReport:
    def test_breakdown_fields(self, capsys):
        rc = main(["report", "--scenario", "paper-illustration"])
        out = capsys.readouterr().out
        assert rc == 0
        for needle in ("ring latency", "Tdel (eq. 13)", "Tcycle (eq. 14)",
                       "per-master longest cycles"):
            assert needle in out


class TestBandwidth:
    def test_reports_fraction_per_policy(self, capsys):
        rc = main(["bandwidth", "--scenario", "factory-cell"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "% of bus time" in out
        for pol in ("fcfs", "dm", "edf"):
            assert pol in out


class TestExportAndFile:
    def test_export_then_analyse_file(self, tmp_path, capsys):
        path = tmp_path / "net.json"
        rc = main(["export", "--scenario", "single-master", str(path)])
        assert rc == 0
        assert path.exists()
        capsys.readouterr()
        rc = main(["analyse", "--file", str(path), "--policy", "dm"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "schedulable: True" in out

    def test_file_and_ttr_override(self, tmp_path, capsys):
        path = tmp_path / "net.json"
        main(["export", "--scenario", "single-master", str(path)])
        capsys.readouterr()
        rc = main(["analyse", "--file", str(path), "--policy", "dm",
                   "--ttr", "2000"])
        out = capsys.readouterr().out
        assert "TTR=2000" in out


class TestTrace:
    def test_timeline_rendered(self, capsys):
        rc = main(["trace", "--scenario", "single-master", "--policy", "dm",
                   "--horizon-ms", "60", "--window-ms", "20", "--width", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "token arrival" in out
        assert "bus utilisation" in out
        assert "|" in out
