"""Tests for :mod:`repro.lint` — the static invariant checker.

Four layers:

* **rule strength** — every known-bad tree under ``tests/lint_fixtures``
  must be flagged by *exactly* its intended rule (the static analogue
  of the corpus mutation harness: N/N fixtures killed);
* **shipped tree is clean** — ``lint src/`` reports zero findings, so
  every accepted exception in the tree is an explained inline
  suppression;
* **CLI contract** — exit-code matrix (0 clean / 1 findings / 2 usage
  error), text and JSON reporters, ``profibus-rt/lint/v2`` document
  shape;
* **mechanics** — suppression comments, baseline round-trip, parse
  failures, rule selection.

The interprocedural flow layer (REP010–REP013) has its own suite in
``test_lint_flow.py``; here it only participates through the combined
rule catalogue and the fixture kill matrix.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    ALL_RULES,
    FLOW_RULES,
    LintUsageError,
    render_json,
    render_text,
    run_lint,
)
from repro.schemas import FAMILIES, LINT_SCHEMA, SCHEMAS, schema_family

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tests" / "lint_fixtures"

FIXTURE_CASES = sorted(p for p in FIXTURES.iterdir() if p.is_dir())


def _write(base: Path, rel: str, text: str) -> Path:
    path = base / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return path


# ---------------------------------------------------------- rule strength

def test_fixture_suite_covers_every_rule():
    intended = {case.name[:6].upper() for case in FIXTURE_CASES}
    assert intended == set(ALL_RULES) | set(FLOW_RULES), (
        "every rule needs at least one known-bad fixture it must kill"
    )


@pytest.mark.parametrize("case", FIXTURE_CASES, ids=lambda p: p.name)
def test_fixture_is_killed_by_exactly_its_intended_rule(case):
    intended = case.name[:6].upper()
    result = run_lint([case])
    rules_hit = {f.rule for f in result.findings}
    assert result.findings, f"{case.name}: known-bad tree produced no findings"
    assert rules_hit == {intended}, (
        f"{case.name}: expected only {intended}, got {sorted(rules_hit)}"
    )
    assert result.exit_code == 1


def test_fixture_kill_count_is_total():
    killed = [case.name for case in FIXTURE_CASES
              if run_lint([case]).findings]
    assert killed == [case.name for case in FIXTURE_CASES], (
        "every fixture must be killed — a surviving fixture means a "
        "rule lost its teeth"
    )


# ------------------------------------------------------ shipped tree clean

def test_shipped_tree_is_lint_clean():
    result = run_lint([SRC])
    assert result.findings == [], (
        "committed tree must lint clean; fix the violation or record "
        "an inline '# lint: disable=REPxxx — <reason>':\n"
        + "\n".join(f"{f.path}:{f.line}: {f.rule} {f.message}"
                    for f in result.findings)
    )
    assert result.ok and result.exit_code == 0
    # the deliberate float seams are all explained inline
    assert result.suppressed > 0


def test_shipped_tree_lints_every_module():
    n_modules = len(list(SRC.rglob("*.py")))
    assert run_lint([SRC]).files == n_modules


# ----------------------------------------------------------- CLI contract

def test_cli_exit_zero_on_clean_tree(capsys):
    assert cli_main(["lint", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_exit_one_on_findings(capsys):
    case = FIXTURES / "rep001_float_division"
    assert cli_main(["lint", str(case)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out


def test_cli_exit_two_on_unknown_rule(capsys):
    assert cli_main(["lint", str(SRC), "--rules", "REP999"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err


def test_cli_exit_two_on_missing_path(capsys):
    assert cli_main(["lint", str(REPO / "no-such-dir-anywhere")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_exit_two_on_update_baseline_without_baseline(capsys):
    assert cli_main(["lint", str(SRC), "--update-baseline"]) == 2
    assert "--baseline" in capsys.readouterr().err


def test_cli_rules_filter_blinds_other_rules(capsys):
    case = FIXTURES / "rep001_float_division"
    assert cli_main(["lint", str(case), "--rules", "REP003"]) == 0
    capsys.readouterr()


def test_cli_json_document_shape(capsys):
    case = FIXTURES / "rep006_frozen_mutation"
    assert cli_main(["lint", str(case), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    # lint: disable=REP003 — pins the frozen tag verbatim
    assert doc["schema"] == LINT_SCHEMA == "profibus-rt/lint/v2"
    assert doc["ok"] is False
    assert doc["files"] == 1
    assert doc["counts"]["findings"] == len(doc["findings"]) == 2
    assert {r["id"] for r in doc["rules"]} == \
        set(ALL_RULES) | set(FLOW_RULES)
    assert set(doc["graph"]) == {"modules", "functions", "edges",
                                 "unresolved"}
    for f in doc["findings"]:
        assert set(f) == {"rule", "path", "line", "col", "message"}
        assert f["rule"] == "REP006"
    # findings arrive sorted by (path, line, col, rule)
    keys = [(f["path"], f["line"], f["col"], f["rule"])
            for f in doc["findings"]]
    assert keys == sorted(keys)


def test_cli_json_clean_tree_is_ok_document(capsys):
    assert cli_main(["lint", str(SRC), "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert doc["findings"] == []
    assert doc["counts"]["suppressed"] > 0


def test_render_text_and_json_agree_on_counts():
    result = run_lint([FIXTURES / "rep002_wallclock"])
    doc = result.to_doc()
    assert "2 finding(s)" in render_text(doc)
    assert json.loads(render_json(doc))["counts"]["findings"] == 2


# ------------------------------------------------------------ suppressions

KERNEL_VIOLATION = """\
    def bound(total, n):
        return total / n
"""


def test_same_line_suppression(tmp_path):
    _write(tmp_path, "repro/profibus/dm.py",
           "def bound(total, n):\n"
           "    return total / n  # lint: disable=REP001 — test seam\n")
    result = run_lint([tmp_path])
    assert result.findings == []
    assert result.suppressed == 1


def test_standalone_comment_suppresses_next_line(tmp_path):
    _write(tmp_path, "repro/profibus/dm.py",
           "def bound(total, n):\n"
           "    # lint: disable=REP001 — test seam\n"
           "    return total / n\n")
    result = run_lint([tmp_path])
    assert result.findings == []
    assert result.suppressed == 1


def test_file_level_suppression(tmp_path):
    _write(tmp_path, "repro/profibus/dm.py",
           "# lint: disable-file=REP001\n"
           "def bound(total, n):\n"
           "    return total / n\n"
           "EPS = 1e-9\n")
    result = run_lint([tmp_path])
    assert result.findings == []
    assert result.suppressed == 2


def test_wrong_rule_id_does_not_suppress(tmp_path):
    _write(tmp_path, "repro/profibus/dm.py",
           "def bound(total, n):\n"
           "    return total / n  # lint: disable=REP002 — wrong rule\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP001"]


def test_comma_list_suppresses_both_rules(tmp_path):
    _write(tmp_path, "repro/profibus/dm.py",
           "import time\n"
           "def f(x):\n"
           "    return x / time.time()  # lint: disable=REP001,REP002 — t\n")
    result = run_lint([tmp_path])
    assert result.findings == []
    assert result.suppressed == 2


# ---------------------------------------------------------------- baseline

def test_baseline_round_trip(tmp_path, capsys):
    tree = tmp_path / "tree"
    _write(tree, "repro/profibus/dm.py", KERNEL_VIOLATION)
    baseline = tmp_path / "baseline.jsonl"

    # freeze: reports clean, writes the file
    assert cli_main(["lint", str(tree), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
    capsys.readouterr()
    rows = [json.loads(line)
            for line in baseline.read_text().splitlines() if line.strip()]
    assert len(rows) == 1 and rows[0]["rule"] == "REP001"

    # replay: the baselined finding is subtracted
    assert cli_main(["lint", str(tree), "--baseline", str(baseline),
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["baselined"] == 1
    assert doc["findings"] == []

    # a NEW violation still fails while the old one stays baselined
    _write(tree, "repro/profibus/edf.py",
           "def g(x):\n    return float(x)\n")
    assert cli_main(["lint", str(tree), "--baseline", str(baseline),
                     "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["baselined"] == 1
    assert [f["path"] for f in doc["findings"]] == [
        str(tree / "repro/profibus/edf.py")]


def test_baseline_survives_line_drift(tmp_path):
    tree = tmp_path / "tree"
    target = _write(tree, "repro/profibus/dm.py", KERNEL_VIOLATION)
    baseline = tmp_path / "baseline.jsonl"
    run_lint([tree], baseline=baseline, update_baseline=True)
    # shift the finding down three lines; the key is line-independent
    target.write_text("# one\n# two\n# three\n" + target.read_text())
    result = run_lint([tree], baseline=baseline)
    assert result.findings == [] and result.baselined == 1


def test_corrupt_baseline_is_usage_error(tmp_path, capsys):
    tree = tmp_path / "tree"
    _write(tree, "repro/profibus/dm.py", KERNEL_VIOLATION)
    baseline = tmp_path / "baseline.jsonl"
    baseline.write_text('{"rule": "REP001"\n')
    assert cli_main(["lint", str(tree), "--baseline", str(baseline)]) == 2
    assert "bad baseline row" in capsys.readouterr().err


def test_missing_baseline_file_is_ignored(tmp_path):
    tree = tmp_path / "tree"
    _write(tree, "repro/profibus/dm.py", KERNEL_VIOLATION)
    result = run_lint([tree], baseline=tmp_path / "nonexistent.jsonl")
    assert len(result.findings) == 1 and result.baselined == 0


def test_disable_file_with_baseline_entry_for_same_file(tmp_path, capsys):
    # A file can end up both inline-suppressed AND baselined (the
    # disable-file was added after the baseline froze): the inline
    # suppression wins, the baseline row simply never matches, and the
    # run is clean — no crash, no spurious finding, no double count.
    tree = tmp_path / "tree"
    target = _write(tree, "repro/profibus/dm.py", KERNEL_VIOLATION)
    baseline = tmp_path / "baseline.jsonl"
    run_lint([tree], baseline=baseline, update_baseline=True)
    assert baseline.read_text().strip()

    target.write_text("# lint: disable-file=REP001\n" + target.read_text())
    assert cli_main(["lint", str(tree), "--baseline", str(baseline),
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"] == []
    assert doc["counts"]["suppressed"] == 1
    assert doc["counts"]["baselined"] == 0


def test_baseline_row_with_dead_rule_id_is_inert(tmp_path, capsys):
    # A baseline written under an older rule catalogue may list a rule
    # id that no longer exists: the row loads, matches nothing, and the
    # live findings still gate the exit code.
    tree = tmp_path / "tree"
    _write(tree, "repro/profibus/dm.py", KERNEL_VIOLATION)
    baseline = tmp_path / "baseline.jsonl"
    baseline.write_text(json.dumps(
        {"rule": "REP999", "path": "repro/gone.py",
         "message": "retired finding"}) + "\n")
    assert cli_main(["lint", str(tree), "--baseline", str(baseline),
                     "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["baselined"] == 0
    assert [f["rule"] for f in doc["findings"]] == ["REP001"]

    # and on an otherwise-clean tree the dead row keeps exit code 0
    clean = tmp_path / "clean"
    _write(clean, "repro/profibus/dm.py", "def ok(a, b):\n    return a + b\n")
    assert cli_main(["lint", str(clean), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


# --------------------------------------------------------------- mechanics

def test_syntax_error_becomes_rep000_finding(tmp_path):
    _write(tmp_path, "repro/broken.py", "def f(:\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP000"]
    assert result.exit_code == 1


def test_unknown_rule_raises_usage_error(tmp_path):
    with pytest.raises(LintUsageError):
        run_lint([tmp_path], rule_ids=["NOPE42"])


def test_duplicate_path_lints_once(tmp_path):
    _write(tmp_path, "repro/profibus/dm.py", KERNEL_VIOLATION)
    result = run_lint([tmp_path, tmp_path])
    assert len(result.findings) == 1 and result.files == 1


def test_out_of_scope_module_is_not_kernel_checked(tmp_path):
    # floats are fine outside the kernel-critical modules
    _write(tmp_path, "repro/profibus/bandwidth.py",
           "def frac(a, b):\n    return a / b\n")
    assert run_lint([tmp_path]).findings == []


def test_seeded_rng_construction_is_allowed(tmp_path):
    _write(tmp_path, "repro/gen/taskset.py",
           "import random\n"
           "def make(seed):\n"
           "    return random.Random(seed).randint(1, 10)\n")
    assert run_lint([tmp_path]).findings == []


def test_registry_divergent_duplicate_is_flagged(tmp_path):
    _write(tmp_path, "repro/schemas.py",
           'A_SCHEMA = "profibus-rt/api/v1"\n'
           'B_SCHEMA = "profibus-rt/api/v2"\n')
    result = run_lint([tmp_path], rule_ids=["REP003"])
    assert any("divergent versions" in f.message for f in result.findings)


def test_registry_undocumented_entry_is_flagged(tmp_path):
    _write(tmp_path, "repro/schemas.py",
           'NEW_SCHEMA = "profibus-rt/brand-new/v1"\n')
    (tmp_path / "PERF.md").write_text("# perf\nnothing documented here\n")
    result = run_lint([tmp_path], rule_ids=["REP003"])
    assert any("undocumented" in f.message for f in result.findings)


def test_partial_of_local_def_is_flagged(tmp_path):
    _write(tmp_path, "repro/anywhere.py",
           "from functools import partial\n"
           "from repro.perf.batch import pooled_map\n"
           "def run(items):\n"
           "    def worker(x, k):\n"
           "        return x + k\n"
           "    return pooled_map(partial(worker, k=2), items)\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP004"]


def test_module_level_partial_is_accepted(tmp_path):
    _write(tmp_path, "repro/anywhere.py",
           "from functools import partial\n"
           "from repro.perf.batch import pooled_map\n"
           "def worker(x, k):\n"
           "    return x + k\n"
           "def run(items):\n"
           "    return pooled_map(partial(worker, k=2), items)\n")
    assert run_lint([tmp_path]).findings == []


# ------------------------------------------------------- registry hygiene

def test_registry_has_one_version_per_family():
    families = [schema_family(v) for v in SCHEMAS.values()]
    assert len(families) == len(set(families))
    assert set(FAMILIES.values()) == set(SCHEMAS.values())


def test_registry_values_are_well_formed():
    for name, value in SCHEMAS.items():
        assert name.endswith("_SCHEMA")
        assert value.startswith("profibus-rt/")
        assert value.rsplit("/", 1)[1].startswith("v")


def test_registry_is_documented_in_perf_md():
    perf = (REPO / "PERF.md").read_text()
    missing = [v for v in SCHEMAS.values() if v not in perf]
    assert not missing, f"PERF.md never mentions {missing}"
