"""Unit tests for TTR derivation (eq. (15) + binary-search generalisation)."""

import pytest

from repro.profibus import (
    analyse,
    fcfs_max_feasible_ttr,
    max_feasible_ttr,
    schedulable_with_ttr,
    ttr_advantage,
)


class TestAnalyseDispatch:
    def test_known_policies(self, single_master):
        for pol in ("fcfs", "dm", "edf"):
            res = analyse(single_master, pol)
            assert res.policy == pol

    def test_unknown_policy(self, single_master):
        with pytest.raises(ValueError):
            analyse(single_master, "lifo")


class TestSchedulableWithTtr:
    def test_below_ring_latency_false(self, single_master):
        assert not schedulable_with_ttr(
            single_master, "dm", single_master.ring_latency() - 1
        )

    def test_monotone_in_ttr(self, single_master):
        # feasibility is monotone decreasing in TTR
        feasible = [
            schedulable_with_ttr(single_master, "dm", ttr)
            for ttr in range(400, 4000, 200)
        ]
        # once it flips to False it stays False
        seen_false = False
        for f in feasible:
            if not f:
                seen_false = True
            if seen_false:
                assert not f


class TestMaxFeasibleTtr:
    def test_fcfs_uses_closed_form(self, single_master):
        assert max_feasible_ttr(single_master, "fcfs") == fcfs_max_feasible_ttr(
            single_master
        )

    def test_binary_search_is_maximal(self, single_master):
        for pol in ("dm", "edf"):
            best = max_feasible_ttr(single_master, pol)
            assert best is not None
            assert schedulable_with_ttr(single_master, pol, best)
            assert not schedulable_with_ttr(single_master, pol, best + 1)

    def test_none_when_infeasible_at_min(self, single_master):
        # shrink deadlines to make even the minimum TTR infeasible
        m = single_master.masters[0]
        tight = single_master.with_ttr(None)
        from repro.profibus import Master, Network

        tight = Network(
            masters=(m.with_streams(
                [s.with_deadline(100) for s in m.streams]
            ),),
            phy=single_master.phy,
        )
        assert max_feasible_ttr(tight, "dm") is None

    def test_priority_policies_beat_fcfs(self, single_master, factory_cell):
        for net in (single_master, factory_cell):
            adv = ttr_advantage(net)
            fcfs = adv["fcfs"] or 0
            assert adv["dm"] is not None and adv["dm"] > fcfs
            assert adv["edf"] is not None and adv["edf"] >= adv["dm"]

    def test_hi_cap_respected(self, single_master):
        best = max_feasible_ttr(single_master, "dm", hi=600)
        assert best == 600 or schedulable_with_ttr(single_master, "dm", best)
