"""Tests for GAP ring-maintenance modelling (extension)."""

import pytest

from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    gap_aware_cm,
    gap_aware_tcycle,
    gap_aware_tdel,
    gap_cycle_bits,
    tcycle,
    tdel,
)
from repro.profibus.timing import longest_cycle
from repro.sim import TokenBusConfig, simulate_token_bus


def _tiny_cycle_net(ttr=2_000):
    """Masters whose message cycles are *shorter* than a gap poll, so the
    gap-aware bound differs from the plain one."""
    phy = PhyParameters()
    streams = lambda k: (MessageStream(f"m{k}s", T=50_000, C_bits=150),)
    return Network(
        masters=(Master(1, streams(1)), Master(2, streams(2))),
        phy=phy,
        ttr=ttr,
    )


class TestGapCycle:
    def test_length_composition(self):
        phy = PhyParameters()
        # SD1 (66 bits) + slot time + tid1
        assert gap_cycle_bits(phy) == 66 + phy.tsl + phy.tid1

    def test_gap_aware_cm_max(self):
        net = _tiny_cycle_net()
        m = net.masters[0]
        assert longest_cycle(m, net.phy) == 150
        assert gap_aware_cm(m, net.phy) == gap_cycle_bits(net.phy)

    def test_gap_aware_tdel_dominates_plain(self):
        net = _tiny_cycle_net()
        assert gap_aware_tdel(net) >= tdel(net)
        assert gap_aware_tcycle(net) >= tcycle(net)

    def test_no_change_when_cycles_longer(self, factory_cell):
        # every factory-cell master has a cycle longer than a gap poll
        assert gap_aware_tdel(factory_cell) == tdel(factory_cell)


class TestGapSimulation:
    def test_polls_issued_every_g_visits(self):
        net = _tiny_cycle_net()
        cfg = TokenBusConfig(gap_update_factor=10)
        res = simulate_token_bus(net, 1_000_000, config=cfg)
        for ms in res.masters.values():
            assert ms.gap_polls > 0
            # at most one poll per G visits
            assert ms.gap_polls <= ms.token_visits / 10 + 1

    def test_disabled_by_default(self, factory_cell):
        res = simulate_token_bus(factory_cell, 300_000)
        assert all(ms.gap_polls == 0 for ms in res.masters.values())

    def test_gap_aware_bound_holds_under_stress(self):
        net = _tiny_cycle_net()
        lap = {m.name: longest_cycle(m, net.phy) for m in net.masters}
        cfg = TokenBusConfig(low_always_pending=lap, gap_update_factor=2)
        res = simulate_token_bus(net, 2_000_000, config=cfg)
        assert res.max_trr <= gap_aware_tcycle(net)

    def test_polls_deferred_when_token_late(self):
        # TTR at the ring latency: the token is never early enough for
        # gap polls -> none are ever issued
        net = _tiny_cycle_net(ttr=None)
        net = net.with_ttr(net.ring_latency())
        lap = {m.name: 150 for m in net.masters}
        cfg = TokenBusConfig(low_always_pending=lap, gap_update_factor=2)
        res = simulate_token_bus(net, 500_000, config=cfg)
        # with saturating lows and a minimal TTR, budget is always gone
        total_polls = sum(ms.gap_polls for ms in res.masters.values())
        total_lows = sum(ms.low_sent for ms in res.masters.values())
        assert total_polls <= total_lows + len(net.masters)
