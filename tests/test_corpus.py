"""Tests for the golden regression corpus (repro.corpus)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.corpus import (
    MUTANTS,
    CorpusEntry,
    append_entry,
    canonical_json,
    check_corpus,
    load_corpus,
    promote_report_doc,
    record_network,
    run_mutation_harness,
    section_digest,
    validate_entry_doc,
    write_seed_corpus,
)
from repro.corpus.golden import first_difference
from repro.corpus.store import SEED_FUZZ_EXEMPLARS
from repro.fuzz import CampaignConfig, run_campaign
from repro.fuzz.report import report_to_dict
from repro.profibus.serialization import network_to_dict
from repro.scenarios import single_master_network

REPO_CORPUS = Path(__file__).resolve().parent.parent / "corpus"


# ------------------------------------------------------------ entry model

class TestEntryModel:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == \
            canonical_json({"a": [2, 3], "b": 1})

    def test_digest_changes_with_any_value(self):
        a = {"rows": [[1, 2, 3]]}
        b = {"rows": [[1, 2, 4]]}
        assert section_digest(a) != section_digest(b)

    def test_validate_rejects_hand_edited_golden(self):
        entry = record_network(
            single_master_network(), "scenario:single-master",
            {"source": "scenario"},
        )
        doc = entry.to_doc()
        validate_entry_doc(doc)  # intact: fine
        doc["golden"]["analysis"]["probe_ttr"] += 1
        with pytest.raises(ValueError, match="digest"):
            validate_entry_doc(doc)

    def test_validate_rejects_wrong_schema_and_missing_keys(self):
        with pytest.raises(ValueError, match="schema"):
            validate_entry_doc({"schema": "nope"})
        entry = record_network(single_master_network(), "x", {})
        doc = entry.to_doc()
        del doc["network"]
        with pytest.raises(ValueError, match="network"):
            validate_entry_doc(doc)


# ------------------------------------------------------------------ store

class TestStore:
    def test_record_then_check_round_trip(self, tmp_path):
        entry = record_network(
            single_master_network(), "scenario:single-master",
            {"source": "scenario", "scenario": "single-master"},
        )
        append_entry(tmp_path, "local.jsonl", entry)
        report = check_corpus(tmp_path)
        assert report.ok
        assert [r.entry_id for r in report.results] == \
            ["scenario:single-master"]

    def test_duplicate_id_rejected_on_append_and_load(self, tmp_path):
        entry = record_network(single_master_network(), "dup", {})
        append_entry(tmp_path, "a.jsonl", entry)
        with pytest.raises(ValueError, match="already exists"):
            append_entry(tmp_path, "b.jsonl", entry)
        # hand-crafted duplicate across files
        (tmp_path / "b.jsonl").write_text(
            canonical_json(entry.to_doc()) + "\n"
        )
        with pytest.raises(ValueError, match="duplicate"):
            load_corpus(tmp_path)

    def test_update_replaces_in_place(self, tmp_path):
        net = single_master_network()
        entry = record_network(net, "e", {"v": 1})
        append_entry(tmp_path, "a.jsonl", entry)
        entry2 = record_network(net, "e", {"v": 2})
        append_entry(tmp_path, "other.jsonl", entry2, update=True)
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        assert loaded[0].provenance == {"v": 2}
        assert not (tmp_path / "other.jsonl").exists()  # replaced, not moved

    def test_seed_defaults_refuse_to_create_duplicate_ids(self, tmp_path):
        """--seed-defaults rewrites the seed files wholesale; a seed id
        already recorded in a *different* file must be rejected, or the
        directory would end up unloadable with duplicate ids."""
        entry = record_network(single_master_network(),
                               "scenario:single-master", {})
        append_entry(tmp_path, "local.jsonl", entry)
        with pytest.raises(ValueError, match="local.jsonl"):
            write_seed_corpus(tmp_path)
        load_corpus(tmp_path)  # directory left intact and loadable

    def test_corrupt_line_reported_with_location(self, tmp_path):
        (tmp_path / "bad.jsonl").write_text("{not json\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_corpus(tmp_path)

    def test_check_detects_a_drifted_golden(self, tmp_path):
        entry = record_network(single_master_network(), "e", {})
        doc = entry.to_doc()
        # simulate a regression: shift one frozen response, re-digest so
        # the entry itself is well-formed
        doc["golden"]["analysis"]["modes"]["fast"]["base"]["dm"]["rows"][0][2] += 1
        doc["digests"]["analysis"] = section_digest(doc["golden"]["analysis"])
        (tmp_path / "a.jsonl").write_text(canonical_json(doc) + "\n")
        report = check_corpus(tmp_path)
        assert not report.ok
        sections = {s for s, _ in report.results[0].mismatches}
        assert "analysis" in sections
        detail = dict(report.results[0].mismatches)["analysis"]
        assert "golden" in detail and "recomputed" in detail

    def test_first_difference_locates_path(self):
        a = {"x": [1, {"y": 2}]}
        b = {"x": [1, {"y": 3}]}
        assert first_difference(a, b) == "$.x[1].y: golden 2 != recomputed 3"
        assert first_difference(a, a) is None


# -------------------------------------------------------- shipped corpus

class TestShippedCorpus:
    def test_committed_corpus_is_bit_exact(self):
        report = check_corpus(REPO_CORPUS)
        assert report.ok, "\n".join(report.format_lines(verbose=True))

    def test_committed_corpus_has_the_seeded_population(self):
        entries = load_corpus(REPO_CORPUS)
        ids = {e.entry_id for e in entries}
        for scenario in ("factory-cell", "paper-illustration",
                         "single-master"):
            assert f"scenario:{scenario}" in ids
        for family, index in SEED_FUZZ_EXEMPLARS.items():
            assert f"fuzz:{family}#{index}@seed0" in ids

    def test_seed_corpus_regenerates_identically(self, tmp_path):
        """The committed files are exactly what --seed-defaults writes —
        no hand edits, and recording is deterministic."""
        write_seed_corpus(tmp_path)
        for path in sorted(REPO_CORPUS.glob("*.jsonl")):
            if path.name == "promoted.jsonl":
                continue  # grows via promotion, not seeding
            assert (tmp_path / path.name).read_text() == path.read_text(), \
                f"{path.name} drifted from --seed-defaults output"

    def test_short_horizon_entry_freezes_pending_accounting(self):
        entries = {e.entry_id: e for e in load_corpus(REPO_CORPUS)}
        rows = entries["scenario:factory-cell-short-horizon"] \
            .golden["validation"]["rows"]
        # name, bound, observed, completed, released, unfinished,
        # pending_age, effective_observed, verdict
        pending = [r for r in rows if r[6] > r[2]]
        assert pending, "short-horizon entry lost its pending rows"
        assert any(r[8] == "incomplete" for r in rows)


# ------------------------------------------------------ mutation strength

class TestPooledCheck:
    """``corpus check --workers N``: entries are independent, so the
    pooled report must be identical to the serial one (the container
    may only have one core — equality, not wall-clock, is the test)."""

    IDS = ("probe:event-order", "scenario:single-master")

    def test_pooled_report_matches_serial(self):
        serial = check_corpus(REPO_CORPUS, entry_ids=self.IDS)
        pooled = check_corpus(REPO_CORPUS, entry_ids=self.IDS, workers=2)
        assert pooled.ok
        assert pooled.results == serial.results
        assert pooled.format_lines(verbose=True) == \
            serial.format_lines(verbose=True)

    def test_pooled_check_cli(self, capsys):
        assert main(["corpus", "check", "--dir", str(REPO_CORPUS),
                     "--entry", "probe:event-order", "--workers", "2"]) == 0
        assert "1/1 entries bit-exact" in capsys.readouterr().out


class TestMutationStrength:
    def test_all_mutants_killed(self):
        report = run_mutation_harness(REPO_CORPUS)
        assert report.baseline_ok
        assert not report.survivors, "\n".join(report.format_lines())
        # the acceptance bar: at least 8 named analytic mutants die
        assert report.killed >= 8
        assert report.killed == len(MUTANTS)
        for outcome in report.outcomes:
            assert outcome.killed_by_entry
            assert outcome.killed_by_sections

    def test_harness_restores_every_seam(self):
        """After the harness, the unmutated check still passes — no
        patch leaked out of its context manager."""
        run_mutation_harness(REPO_CORPUS,
                             mutant_names=["tdel-drops-overrunner",
                                           "validate-ignores-pending",
                                           "serialization-drops-jitter"])
        assert check_corpus(REPO_CORPUS).ok

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError, match="unknown mutant"):
            run_mutation_harness(REPO_CORPUS, mutant_names=["nope"])

    def test_mutants_are_honest(self):
        """Every mutant changes behaviour somewhere: killed by a real
        section, not by accident of the harness."""
        for mutant in MUTANTS.values():
            assert mutant.expected_killers
            assert mutant.description


# -------------------------------------------------------------- promotion

def _fake_report_doc(network, oracle="sweep_scaling", family="tight-ttr",
                     index=3, seed=7):
    doc = network_to_dict(network)
    counters = {"checked": 1, "failed": 1, "skipped": 0, "extended": 0}
    clean = {"checked": 1, "failed": 0, "skipped": 0, "extended": 0}
    oracles = {name: (counters if name == oracle else dict(clean))
               for name in ("soundness", "kernel_equivalence", "roundtrip",
                            "sweep_scaling")}
    return {
        # lint: disable=REP003 — literal on purpose: the fixture must
        # not drift with the registry it is testing against
        "schema": "profibus-rt/fuzz/v2",
        "config": {}, "instances": 1, "families": {family: 1},
        "oracles": oracles,
        "family_oracles": {family: {k: dict(v) for k, v in oracles.items()}},
        "counterexamples": [{
            "oracle": oracle, "family": family, "index": index, "seed": seed,
            "policy": "dm", "factor": 0.75, "detail": "d",
            "network": doc, "shrunk_network": doc, "shrunk_detail": "sd",
        }],
        "timings": {"total_seconds": 0.0},
        "status": "fail",
    }


class TestPromotion:
    def test_promote_then_idempotent(self, tmp_path):
        doc = _fake_report_doc(single_master_network())
        result = promote_report_doc(doc, tmp_path)
        assert result.ok
        # the failing policy is part of the identity: the same instance
        # can fail the same oracle under a different --policies rotation
        assert result.added == ["fuzz:tight-ttr#3@seed7:sweep_scaling:dm"]
        again = promote_report_doc(doc, tmp_path)
        assert again.added == [] and again.skipped == result.added
        entries = load_corpus(tmp_path)
        assert entries[0].provenance["source"] == "fuzz-counterexample"
        assert entries[0].provenance["oracle"] == "sweep_scaling"
        # the frozen entry checks clean once the (hypothetical) bug is
        # out of the code base — which it is, here
        assert check_corpus(tmp_path).ok

    def test_promoted_entry_pins_failure_coordinates(self, tmp_path):
        doc = _fake_report_doc(single_master_network())
        promote_report_doc(doc, tmp_path)
        entry = load_corpus(tmp_path)[0]
        assert 0.75 in entry.config["sweep_factors"]
        assert entry.config["validation"]["policy"] == "dm"

    def test_counterexample_missing_keys_is_an_error_not_a_crash(
        self, tmp_path
    ):
        """validate_report_dict only checks the report's top level; a
        hand-trimmed counterexample must come back as a promotion error,
        never a KeyError traceback."""
        doc = _fake_report_doc(single_master_network())
        del doc["counterexamples"][0]["shrunk_network"]
        del doc["counterexamples"][0]["oracle"]
        result = promote_report_doc(doc, tmp_path)
        assert not result.ok
        assert result.errors[0][0] == "counterexamples[0]"
        assert "missing key(s)" in result.errors[0][1]
        # optional fields may be absent without blocking promotion
        doc2 = _fake_report_doc(single_master_network())
        for key in ("policy", "factor", "detail", "shrunk_detail"):
            del doc2["counterexamples"][0][key]
        result2 = promote_report_doc(doc2, tmp_path)
        assert result2.ok and len(result2.added) == 1

    def test_distinct_policies_promote_as_distinct_entries(self, tmp_path):
        """The same (oracle, family, index, seed) failing under another
        --policies rotation is a different regression — it must not be
        skipped as already-promoted."""
        doc = _fake_report_doc(single_master_network())
        promote_report_doc(doc, tmp_path)
        doc["counterexamples"][0]["policy"] = "edf"
        result = promote_report_doc(doc, tmp_path)
        assert result.added == ["fuzz:tight-ttr#3@seed7:sweep_scaling:edf"]
        entries = {e.entry_id: e for e in load_corpus(tmp_path)}
        assert entries["fuzz:tight-ttr#3@seed7:sweep_scaling:edf"] \
            .config["validation"]["policy"] == "edf"

    def test_same_content_under_new_coordinates_is_value_deduped(
            self, tmp_path):
        """A counterexample whose *network content* is already frozen —
        even under different fuzz coordinates (index/seed), i.e. a
        different entry id — is skipped: the fingerprint value key, not
        the name, decides what counts as already-promoted."""
        promote_report_doc(_fake_report_doc(single_master_network()),
                           tmp_path)
        again = promote_report_doc(
            _fake_report_doc(single_master_network(), index=9, seed=11),
            tmp_path)
        assert again.ok
        assert again.added == []
        assert again.skipped == ["fuzz:tight-ttr#9@seed11:sweep_scaling:dm"]
        assert len(load_corpus(tmp_path)) == 1

    def test_same_content_different_oracle_still_promotes(self, tmp_path):
        """The value key is (fingerprint, oracle, policy): the same
        network failing a *different* oracle is new evidence."""
        promote_report_doc(_fake_report_doc(single_master_network()),
                           tmp_path)
        other = promote_report_doc(
            _fake_report_doc(single_master_network(), oracle="soundness"),
            tmp_path)
        assert other.added == ["fuzz:tight-ttr#3@seed7:soundness:dm"]
        assert len(load_corpus(tmp_path)) == 2

    def test_torn_promoted_line_does_not_block_promotion(self, tmp_path):
        """A kill mid-append leaves a partial trailing line; the next
        promotion must treat that entry as not-yet-recorded instead of
        crashing after the campaign already spent its budget — and a new
        entry appended afterwards must not fuse with the torn fragment
        into one unparseable line."""
        doc = _fake_report_doc(single_master_network())
        promote_report_doc(doc, tmp_path)
        path = tmp_path / "promoted.jsonl"
        intact = path.read_text()
        path.write_text(intact + intact[: len(intact) // 3].rstrip("\n"))
        result = promote_report_doc(doc, tmp_path)
        assert result.ok
        assert result.skipped  # the intact line still counts as present
        # a NEW counterexample (different network content — same content
        # would be skipped by the fingerprint value-dedup) lands on a
        # fresh line (torn tail dropped: it was never durably recorded,
        # so nothing is lost)
        doc2 = _fake_report_doc(single_master_network(n_streams=3), index=9)
        result2 = promote_report_doc(doc2, tmp_path)
        assert result2.added
        entries = load_corpus(tmp_path)  # strict parse: file fully valid
        assert {e.entry_id for e in entries} == \
            set(result.skipped) | set(result2.added)
        assert check_corpus(tmp_path).ok

    def test_unparseable_shrunk_network_is_an_error(self, tmp_path):
        doc = _fake_report_doc(single_master_network())
        doc["counterexamples"][0]["shrunk_network"] = {"masters": "nope"}
        result = promote_report_doc(doc, tmp_path)
        assert not result.ok
        assert "does not parse" in result.errors[0][1]

    def test_campaign_auto_promotes_shrunk_counterexamples(self, tmp_path):
        """End to end: a campaign run under the catalogued truncation
        mutant finds failures and freezes their shrunk counterexamples
        into config.corpus_dir at campaign end."""
        corpus_dir = tmp_path / "corpus"
        with MUTANTS["sweep-truncated-deadline-scale"].apply():
            result = run_campaign(CampaignConfig(
                budget=12, seed=0, corpus_dir=str(corpus_dir),
            ))
        assert not result.ok
        assert result.promoted_entries
        assert not result.promotion_errors
        entries = load_corpus(corpus_dir)
        assert {e.entry_id for e in entries} == set(result.promoted_entries)
        doc = report_to_dict(result)
        assert doc["corpus_promotion"]["added"] == \
            list(result.promoted_entries)
        assert doc["config"]["corpus_dir"] == str(corpus_dir)
        # each promoted entry pins its own failing coordinates: the
        # counterexample's sweep factor joins the default grid
        for e in entries:
            assert e.provenance["factor"] in e.config["sweep_factors"]
            assert e.config["validation"]["policy"] == \
                e.provenance["policy"]
        # the goldens were frozen *under the injected bug*; with the bug
        # gone (the mutant context exited) the sweep section must flag
        # EVERY promoted entry — the pinned factor guarantees the
        # divergence is inside the frozen grid
        report = check_corpus(corpus_dir)
        assert not report.ok
        assert len(report.failed) == len(report.results)
        assert all(
            "sweep" in {s for s, _ in r.mismatches} for r in report.failed
        )


# ------------------------------------------------------------------- CLI

class TestCorpusCli:
    def test_check_committed_corpus(self, capsys):
        rc = main(["corpus", "check", "--dir", str(REPO_CORPUS)])
        out = capsys.readouterr().out
        assert rc == 0
        n = len(load_corpus(REPO_CORPUS))  # grows with promotions
        assert f"{n}/{n} entries bit-exact" in out

    def test_record_scenario_then_check(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        rc = main(["corpus", "record", "--dir", d,
                   "--scenario", "single-master"])
        assert rc == 0
        rc = main(["corpus", "check", "--dir", d])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scenario:single-master" in out

    def test_record_file_derives_id(self, tmp_path, capsys):
        path = tmp_path / "plant.json"
        main(["export", "--scenario", "single-master", str(path)])
        d = str(tmp_path / "c")
        rc = main(["corpus", "record", "--dir", d, "--file", str(path)])
        assert rc == 0
        assert load_corpus(d)[0].entry_id == "file:plant"

    def test_record_without_source_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["corpus", "record", "--dir", str(tmp_path)])

    def test_mutants_subcommand_single_kill(self, capsys):
        rc = main(["corpus", "mutants", "--dir", str(REPO_CORPUS),
                   "--mutant", "fcfs-queue-undercount"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "killed" in out and "1/1" in out

    def test_diff_points_at_divergence(self, tmp_path, capsys):
        entry = record_network(single_master_network(), "e", {})
        doc = entry.to_doc()
        doc["golden"]["sweep"]["ttr"][0][3] = \
            not doc["golden"]["sweep"]["ttr"][0][3]
        doc["digests"]["sweep"] = section_digest(doc["golden"]["sweep"])
        (tmp_path / "a.jsonl").write_text(canonical_json(doc) + "\n")
        rc = main(["corpus", "diff", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "sweep" in out and "$." in out

    def test_promote_missing_report_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["corpus", "promote", "--dir", str(tmp_path),
                  "--report", str(tmp_path / "nope.json")])

    def test_update_refreezes_all(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        main(["corpus", "record", "--dir", d, "--scenario", "single-master"])
        capsys.readouterr()
        rc = main(["corpus", "record", "--dir", d, "--update"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "refroze 1 entries" in out
        assert check_corpus(d).ok

    def test_targeted_update_preserves_pinned_config(self, tmp_path):
        """Re-recording an existing entry by source keeps its pinned
        config and provenance — the short-horizon entry must not revert
        to derived defaults and silently stop testing pending ages."""
        from repro.corpus.store import FACTORY_CELL_SHORT_HORIZON

        d = str(tmp_path / "c")
        write_seed_corpus(d)
        rc = main(["corpus", "record", "--dir", d,
                   "--scenario", "factory-cell",
                   "--id", "scenario:factory-cell-short-horizon",
                   "--update"])
        assert rc == 0
        entries = {e.entry_id: e for e in load_corpus(d)}
        entry = entries["scenario:factory-cell-short-horizon"]
        assert entry.config["validation"]["horizon"] == \
            FACTORY_CELL_SHORT_HORIZON
        assert "note" in entry.provenance
        assert check_corpus(d).ok

    def test_half_executing_flag_combinations_rejected(self, tmp_path):
        d = str(tmp_path / "c")
        with pytest.raises(SystemExit, match="--seed-defaults"):
            main(["corpus", "record", "--dir", d, "--seed-defaults",
                  "--ttr", "9999"])
        with pytest.raises(SystemExit, match="refreezes the whole corpus"):
            main(["corpus", "record", "--dir", d, "--update",
                  "--id", "scenario:single-master"])
