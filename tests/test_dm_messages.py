"""Unit tests for the DM message analysis (eq. (16))."""

import pytest

from repro.profibus import (
    Master,
    MessageStream,
    Network,
    PhyParameters,
    dm_analysis,
    dm_response_time_paper_form,
    dm_response_times,
    fcfs_analysis,
    tcycle,
)


def _single_master(deadlines, periods=None, ttr=2_000):
    phy = PhyParameters()
    n = len(deadlines)
    periods = periods or [100_000] * n
    streams = tuple(
        MessageStream(f"s{i}", T=periods[i], D=deadlines[i], C_bits=500)
        for i in range(n)
    )
    return Network(masters=(Master(1, streams),), phy=phy, ttr=ttr)


class TestEq16Structure:
    def test_highest_priority_two_tcycles(self):
        # blocking (one token cycle) + own transmission (one token cycle)
        net = _single_master([10_000, 50_000, 90_000])
        tc = tcycle(net)
        res = dm_analysis(net)
        assert res.response("M1", "s0").R == 2 * tc

    def test_interference_adds_token_cycles(self):
        net = _single_master([10_000, 50_000, 90_000])
        tc = tcycle(net)
        res = dm_analysis(net)
        # s1: blocking + one s0 arrival + own  => 3 Tcycle (periods huge)
        assert res.response("M1", "s1").R == 3 * tc
        # s2 (lowest): no blocking, interference from s0+s1 + own => 3 Tcycle
        assert res.response("M1", "s2").R == 3 * tc

    def test_single_stream_master(self):
        net = _single_master([50_000])
        tc = tcycle(net)
        res = dm_analysis(net)
        # no lower streams -> no blocking; no higher -> own cycle only
        assert res.response("M1", "s0").R == tc

    def test_fast_period_interferes_repeatedly(self):
        # middle stream: blocking from s2, repeated hits from fast s0
        net = _single_master(
            [10_000, 95_000, 99_000], periods=[4_000, 100_000, 100_000]
        )
        tc = tcycle(net)  # 2000 + 500 = 2500
        res = dm_analysis(net)
        # s1: w = B(2500) + s0 interference; w=7500 has releases {0,4000}
        # -> w = 2500 + 2*2500 = 7500 fixed point; R = w + Tc = 10000
        assert res.response("M1", "s1").R == 4 * tc

    def test_q_is_r_minus_tcycle(self):
        net = _single_master([10_000, 50_000])
        tc = tcycle(net)
        res = dm_analysis(net)
        for sr in res.per_stream:
            assert sr.Q == sr.R - tc


class TestDMvsFCFS:
    def test_tightest_stream_improves(self):
        net = _single_master([10_000, 50_000, 90_000, 90_001])
        dm = dm_analysis(net)
        fcfs = fcfs_analysis(net)
        assert (
            dm.response("M1", "s0").R < fcfs.response("M1", "s0").R
        )

    def test_fcfs_r_uniform_dm_graded(self):
        net = _single_master([10_000, 50_000, 90_000])
        fcfs_rs = {sr.stream.name: sr.R for sr in fcfs_analysis(net).per_stream}
        dm_rs = {sr.stream.name: sr.R for sr in dm_analysis(net).per_stream}
        assert len(set(fcfs_rs.values())) == 1
        assert dm_rs["s0"] <= dm_rs["s1"] <= dm_rs["s2"]

    def test_paper_headline_single_master(self, single_master):
        from repro.profibus import analyse

        assert not analyse(single_master, "fcfs").schedulable
        assert analyse(single_master, "dm").schedulable


class TestJitterHandling:
    def test_jitter_increases_interference(self):
        base = _single_master([10_000, 50_000])
        jittered = Network(
            masters=(base.masters[0].with_streams([
                base.masters[0].streams[0].with_jitter(8_000),
                base.masters[0].streams[1],
            ]),),
            phy=base.phy,
            ttr=base.ttr,
        )
        r_base = dm_analysis(base).response("M1", "s1").R
        r_jit = dm_analysis(jittered).response("M1", "s1").R
        assert r_jit >= r_base


class TestPaperForm:
    def test_lowest_priority_lacks_own_cycle(self):
        # documents the printed eq. (16) anomaly (DESIGN.md): for the
        # lowest-priority stream T*cycle = 0 and the recursion returns
        # interference only
        net = _single_master([10_000, 50_000])
        master = net.masters[0]
        tc = tcycle(net)
        r_paper = dm_response_time_paper_form(master, tc, "s1")
        r_ours = dm_analysis(net).response("M1", "s1").R
        assert r_paper < r_ours

    def test_non_lowest_matches_tindell_form_here(self):
        # for the highest-priority stream with long periods both forms
        # coincide: T*cycle + no interference vs B + own
        net = _single_master([10_000, 50_000, 90_000])
        master = net.masters[0]
        tc = tcycle(net)
        r_paper = dm_response_time_paper_form(master, tc, "s0")
        # paper form: T* + sum over hp (none) = Tcycle; ours: 2 Tcycle
        assert r_paper == tc

    def test_unknown_stream_raises(self):
        net = _single_master([10_000])
        with pytest.raises(KeyError):
            dm_response_time_paper_form(net.masters[0], tcycle(net), "zz")


class TestMultiMasterIndependence:
    def test_per_master_analysis_isolated(self):
        phy = PhyParameters()
        m1 = Master(1, (MessageStream("a", T=100_000, D=20_000, C_bits=500),))
        m2 = Master(2, (
            MessageStream("b", T=100_000, D=20_000, C_bits=500),
            MessageStream("c", T=100_000, D=50_000, C_bits=500),
        ))
        net = Network(masters=(m1, m2), phy=phy, ttr=2_000)
        res = dm_analysis(net)
        tc = res.tcycle
        # m1's single stream: one token cycle; unaffected by m2's queue
        assert res.response("M1", "a").R == tc
        assert res.response("M2", "b").R == 2 * tc
