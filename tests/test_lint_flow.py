"""Tests for the interprocedural flow layer — ``repro.lint.flow`` and
the call graph underneath it (``repro.lint.graph`` / ``symbols``).

Five layers:

* **call graph** — cross-module resolution, unresolved-call categories
  (recorded, never dropped), deterministic ``--dump-graph`` artifact;
* **rule semantics** — what each of REP010–REP013 must flag *and* the
  negatives it must not (executor hop, seeded RNG, module-level
  partial), the part a kill matrix alone cannot pin;
* **taint paths** — the REP010 finding names every hop down to the
  float source;
* **runner plumbing** — ``--no-flow``, flow rule selection via
  ``--rules``, fixture-tree exclusion + ``--include-fixtures``;
* **``--changed-only``** — git-restricted runs and the warned full-run
  fallback outside a checkout.
"""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import build_graph, run_lint
from repro.schemas import CALLGRAPH_SCHEMA

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tests" / "lint_fixtures"


def _write(base: Path, rel: str, text: str) -> Path:
    path = base / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return path


# --------------------------------------------------------------- call graph

def test_cross_module_call_resolves_to_qualname(tmp_path):
    _write(tmp_path, "repro/profibus/helper.py",
           "def scale(x):\n    return x + 1\n")
    _write(tmp_path, "repro/profibus/user.py",
           "from .helper import scale\n"
           "def apply(x):\n    return scale(x)\n")
    graph = build_graph([(p, str(p)) for p in
                         sorted(tmp_path.rglob("*.py"))])
    edges = {(s.caller, s.callee)
             for sites in graph.calls.values() for s in sites}
    assert ("repro.profibus.user.apply",
            "repro.profibus.helper.scale") in edges


def test_unresolved_calls_are_recorded_with_categories(tmp_path):
    _write(tmp_path, "repro/profibus/probe.py",
           "import math\n"
           "def f(obj):\n"
           "    len([1])\n"
           "    math.gcd(2, 4)\n"
           "    ghost()\n"
           "    obj.method()\n")
    graph = build_graph([(p, str(p)) for p in
                         sorted(tmp_path.rglob("*.py"))])
    misses = {(m.name, m.category)
              for lst in graph.unresolved.values() for m in lst}
    assert {("len", "builtin"), ("math.gcd", "external"),
            ("ghost", "unknown"), ("obj.method", "method")} <= misses


def test_unparseable_file_is_skipped_not_fatal(tmp_path):
    p = _write(tmp_path, "repro/broken.py", "def f(:\n")
    graph = build_graph([(p, str(p))])
    assert [display for display, _ in graph.skipped] == [str(p)]
    assert graph.modules == {}


def test_dump_graph_is_byte_identical_across_runs(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    run_lint([SRC], flow=False, dump_graph=a)
    run_lint([SRC], flow=False, dump_graph=b)
    assert a.read_bytes() == b.read_bytes()
    doc = json.loads(a.read_text())
    # lint: disable=REP003 — pins the frozen tag verbatim
    assert doc["schema"] == CALLGRAPH_SCHEMA == "profibus-rt/callgraph/v1"
    assert set(doc) == {"schema", "modules", "functions", "counts",
                        "skipped"}
    assert doc["counts"]["modules"] == len(doc["modules"]) > 0
    assert doc["counts"]["functions"] == len(doc["functions"]) > 0


def test_dump_graph_cli_and_stats_in_report(tmp_path, capsys):
    out = tmp_path / "graph.json"
    assert cli_main(["lint", str(SRC), "--format", "json",
                     "--dump-graph", str(out)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["graph"]["modules"] == \
        json.loads(out.read_text())["counts"]["modules"]


# ----------------------------------------------------------- REP010 taint

def test_rep010_taint_path_names_every_hop():
    result = run_lint([FIXTURES / "rep010_float_helper"])
    assert [f.rule for f in result.findings] == ["REP010"]
    message = result.findings[0].message
    # boundary: the kernel function and the function it calls
    assert "repro.profibus.dm.dm_bound" in message
    assert "repro.profibus.timing.scale_budget" in message
    # intermediate hop and the source itself, each with a location
    assert "repro.profibus.timing.slack_margin" in message
    assert "float literal 1.5" in message
    assert "timing.py:8" in message  # the literal's own line


def test_rep010_kernel_internal_float_is_rep001_not_rep010(tmp_path):
    # floats *inside* a kernel module stay REP001's finding; REP010
    # only fires on cross-module taint
    _write(tmp_path, "repro/profibus/dm.py",
           "def bound(a, b):\n    return a / b\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP001"]


def test_rep010_suppression_at_boundary_site(tmp_path):
    _write(tmp_path, "repro/profibus/timing.py",
           "def scale(x):\n    return x * 1.5\n")
    _write(tmp_path, "repro/profibus/dm.py",
           "from .timing import scale\n"
           "def bound(x):\n"
           "    return scale(x)  # lint: disable=REP010 — test seam\n")
    result = run_lint([tmp_path])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------- REP011 purity

def test_rep011_seeded_rng_is_pure(tmp_path):
    _write(tmp_path, "repro/fuzz/families.py",
           "import random\n"
           "def generate_instance(seed, family, index):\n"
           "    rng = random.Random(f'{seed}:{family}:{index}')\n"
           "    return rng.randint(1, 10)\n")
    assert run_lint([tmp_path]).findings == []


def test_rep011_direct_impurity_in_entry_is_flagged(tmp_path):
    _write(tmp_path, "repro/corpus/golden.py",
           "import time\n"
           "def compute_golden(network):\n"
           "    return {'at': time.time()}\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP011"]
    assert "wall-clock time.time()" in result.findings[0].message


def test_rep011_fingerprint_entry_outside_entry_modules(tmp_path):
    # global mutation is an impurity only the flow layer sees (REP002's
    # per-file scope does not cover it), and fingerprint() is an entry
    # wherever it is defined
    _write(tmp_path, "repro/profibus/network.py",
           "_count = 0\n"
           "def fingerprint(doc):\n"
           "    global _count\n"
           "    _count = _count + 1\n"
           "    return (_count, str(doc))\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP011"]
    assert "mutation of global '_count'" in result.findings[0].message


def test_rep011_impurity_in_non_entry_is_not_flagged(tmp_path):
    # impure helpers are fine as long as no determinism-critical entry
    # reaches them
    _write(tmp_path, "repro/perf/probe.py",
           "import time\n"
           "def bench_once(fn):\n    return time.perf_counter()\n")
    assert run_lint([tmp_path]).findings == []


# ------------------------------------------------------ REP012 async-safety

def test_rep012_executor_hop_is_not_flagged(tmp_path):
    _write(tmp_path, "repro/service/server.py",
           "import asyncio\n"
           "def _load(path):\n"
           "    with open(path) as fh:\n"
           "        return fh.read()\n"
           "async def handle(path):\n"
           "    loop = asyncio.get_running_loop()\n"
           "    return await loop.run_in_executor(None, _load, path)\n")
    assert run_lint([tmp_path]).findings == []


def test_rep012_direct_blocking_in_coroutine(tmp_path):
    _write(tmp_path, "repro/service/server.py",
           "import time\n"
           "async def handle():\n"
           "    time.sleep(1)\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP012"]
    assert "time.sleep()" in result.findings[0].message


def test_rep012_flagged_once_at_the_offending_frame(tmp_path):
    # a coroutine calling another *service coroutine* that blocks is
    # not re-flagged at the caller: the finding anchors where the fix
    # belongs
    _write(tmp_path, "repro/service/server.py",
           "async def outer(path):\n"
           "    return await inner(path)\n"
           "async def inner(path):\n"
           "    with open(path) as fh:\n"
           "        return fh.read()\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP012"]
    assert "inner" in result.findings[0].message
    assert result.findings[0].line == 4  # the open(), not outer's await


def test_rep012_blocking_outside_service_is_not_flagged(tmp_path):
    _write(tmp_path, "repro/perf/batch.py",
           "async def drive(paths):\n"
           "    return [open(p).read() for p in paths]\n")
    assert run_lint([tmp_path]).findings == []


# ------------------------------------------- REP013 pickle-reachability

def test_rep013_fixture_names_the_runtime_binding():
    result = run_lint([FIXTURES / "rep013_runtime_binding"])
    assert [f.rule for f in result.findings] == ["REP013"]
    assert "'handler'" in result.findings[0].message


def test_rep013_module_level_partial_closure_is_accepted(tmp_path):
    _write(tmp_path, "repro/anywhere.py",
           "from functools import partial\n"
           "from repro.perf.batch import pooled_map\n"
           "def helper(x):\n    return x + 1\n"
           "def worker(x, k):\n    return helper(x) + k\n"
           "def run(items):\n"
           "    return pooled_map(partial(worker, k=2), items)\n")
    assert run_lint([tmp_path]).findings == []


def test_rep013_lambda_partial_argument_is_flagged(tmp_path):
    _write(tmp_path, "repro/anywhere.py",
           "from functools import partial\n"
           "from repro.perf.batch import pooled_map\n"
           "def worker(x, key):\n    return key(x)\n"
           "def run(items):\n"
           "    return pooled_map(partial(worker, key=lambda v: v), items)\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP013"]
    assert "lambda" in result.findings[0].message


def test_rep013_module_level_lambda_submission_is_flagged(tmp_path):
    _write(tmp_path, "repro/anywhere.py",
           "from repro.perf.batch import pooled_map\n"
           "worker = lambda x: x + 1\n"
           "def run(items):\n"
           "    return pooled_map(worker, items)\n")
    result = run_lint([tmp_path])
    assert [f.rule for f in result.findings] == ["REP013"]
    assert "<lambda>" in result.findings[0].message


# --------------------------------------------------------- runner plumbing

def test_no_flow_skips_graph_and_flow_findings():
    result = run_lint([FIXTURES / "rep010_float_helper"], flow=False)
    assert result.findings == []
    assert result.graph_stats is None
    assert result.to_doc()["graph"] is None


def test_rules_filter_selects_flow_rule(capsys):
    case = FIXTURES / "rep010_float_helper"
    assert cli_main(["lint", str(case), "--rules", "REP010"]) == 1
    assert "REP010" in capsys.readouterr().out
    # and a flow-only filter blinds the syntactic rules
    bad = FIXTURES / "rep001_float_division"
    assert cli_main(["lint", str(bad), "--rules", "REP012"]) == 0
    capsys.readouterr()


def test_fixture_trees_are_excluded_from_default_discovery(tmp_path):
    _write(tmp_path, "repro/core/ok.py", "def f(x):\n    return x\n")
    _write(tmp_path, "tests/lint_fixtures/bad/repro/profibus/dm.py",
           "def bound(a, b):\n    return a / b\n")
    assert run_lint([tmp_path]).findings == []
    included = run_lint([tmp_path], include_fixtures=True)
    assert [f.rule for f in included.findings] == ["REP001"]
    assert included.files == run_lint([tmp_path]).files + 1


def test_explicit_fixture_path_is_always_kept(tmp_path):
    bad = _write(tmp_path, "tests/lint_fixtures/bad/repro/profibus/dm.py",
                 "def bound(a, b):\n    return a / b\n")
    # naming the tree (or the file) directly means the caller wants it
    assert run_lint([bad.parent]).findings
    assert run_lint([bad]).findings


# ----------------------------------------------------------- changed-only

def _git(cwd, *args):
    subprocess.run(["git", "-c", "user.email=lint@test",
                    "-c", "user.name=lint", *args],
                   cwd=cwd, check=True, capture_output=True)


def test_changed_only_outside_git_warns_and_lints_everything(tmp_path):
    _write(tmp_path, "repro/profibus/dm.py",
           "def bound(a, b):\n    return a / b\n")
    result = run_lint([tmp_path], changed_only=True)
    assert [f.rule for f in result.findings] == ["REP001"]
    assert any("not a git checkout" in w for w in result.warnings)


def test_changed_only_restricts_to_git_diff(tmp_path):
    tree = tmp_path / "tree"
    old = _write(tree, "repro/profibus/dm.py",
                 "def bound(a, b):\n    return a / b\n")
    new = _write(tree, "repro/profibus/edf.py",
                 "def ok(a, b):\n    return a + b\n")
    _git(tree, "init", "-q")
    _git(tree, "add", "-A")
    _git(tree, "commit", "-q", "-m", "seed")
    # dm.py's violation is old news; edf.py gains a fresh one
    new.write_text("def bad(a):\n    return float(a)\n")

    result = run_lint([tree], changed_only=True)
    assert result.warnings == []
    assert [f.path for f in result.findings] == [str(new)]
    assert result.files == 1

    # without the flag both violations surface
    full = run_lint([tree])
    assert {f.path for f in full.findings} == {str(old), str(new)}


def test_changed_only_cli_warning_goes_to_stderr(tmp_path, capsys):
    _write(tmp_path, "repro/core/ok.py", "def f(x):\n    return x\n")
    assert cli_main(["lint", str(tmp_path), "--changed-only"]) == 0
    assert "not a git checkout" in capsys.readouterr().err
