"""Corpus entry model and canonical digests.

One entry = one network frozen with everything the toolbox computes
about it.  The on-disk form is one JSON object per line of a
``corpus/*.jsonl`` file::

    {
      "schema": "profibus-rt/corpus/v1",
      "id": "scenario:factory-cell",
      "fingerprint": "sha256 of the canonical network content",
      "provenance": {"source": "scenario", "scenario": "factory-cell"},
      "network": { ... scenario document ... },
      "config":  { ... pinned evaluation knobs ... },
      "golden":  {"analysis": {...}, "sweep": {...},
                  "roundtrip": {...}, "validation": {...}},
      "digests": {"analysis": "sha256...", ...}
    }

The ``fingerprint`` is :func:`repro.profibus.serialization.network_fingerprint`
of the stored network — the same value key the shared result cache and
the fuzz checkpoints use — so "is this network content already frozen?"
is one set lookup, however the entry was named.

Everything is canonicalised (sorted keys, no whitespace) before
digesting, so ``corpus check`` compares *bit-exact* recomputations: a
one-unit drift in a single response time changes the section digest.
The full golden sections are stored alongside their digests so
``corpus diff`` can point at the first diverging value instead of just
reporting a hash mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict

from ..profibus import serialization as serialization_mod
from ..profibus.network import Network
from ..schemas import CORPUS_SCHEMA

#: Golden sections, in the (cheap-first) order ``check`` evaluates them.
GOLDEN_SECTIONS = ("analysis", "sweep", "roundtrip", "validation")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def section_digest(obj: Any) -> str:
    """SHA-256 over the canonical JSON encoding."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CorpusEntry:
    """One frozen network + its golden results."""

    entry_id: str
    provenance: Dict[str, Any]
    network_doc: Dict[str, Any]
    config: Dict[str, Any]
    golden: Dict[str, Any]
    digests: Dict[str, str]
    #: canonical content fingerprint of ``network_doc`` (value identity)
    fingerprint: str = ""

    def network(self) -> Network:
        """Parse the stored scenario document (fresh instance: analysis
        memos never leak between entries or check runs)."""
        return serialization_mod.network_from_dict(self.network_doc)

    def to_doc(self) -> Dict[str, Any]:
        doc = {
            "schema": CORPUS_SCHEMA,
            "id": self.entry_id,
            "provenance": self.provenance,
            "network": self.network_doc,
            "config": self.config,
            "golden": self.golden,
            "digests": self.digests,
        }
        if self.fingerprint:
            doc["fingerprint"] = self.fingerprint
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "CorpusEntry":
        validate_entry_doc(doc)
        return cls(
            entry_id=doc["id"],
            provenance=doc["provenance"],
            network_doc=doc["network"],
            config=doc["config"],
            golden=doc["golden"],
            digests=doc["digests"],
            fingerprint=doc.get("fingerprint", ""),
        )


def validate_entry_doc(doc: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when ``doc`` is not a well-formed v1 entry.

    Also re-derives every section digest from the stored golden — a
    hand-edited golden that no longer matches its recorded digest is a
    corrupt entry, not a passing one — and, when the entry carries a
    ``fingerprint``, recomputes it from the stored network (a stale
    fingerprint would silently break the value-identity dedup paths).
    """
    if not isinstance(doc, dict):
        raise ValueError("corpus entry must be a JSON object")
    if doc.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"unexpected corpus schema {doc.get('schema')!r}")
    for key in ("id", "provenance", "network", "config", "golden", "digests"):
        if key not in doc:
            raise ValueError(f"corpus entry missing key {key!r}")
    if not isinstance(doc["id"], str) or not doc["id"]:
        raise ValueError("corpus entry id must be a non-empty string")
    golden, digests = doc["golden"], doc["digests"]
    for section in GOLDEN_SECTIONS:
        if section not in golden:
            raise ValueError(
                f"entry {doc['id']!r} missing golden section {section!r}"
            )
        expected = digests.get(section)
        actual = section_digest(golden[section])
        if expected != actual:
            raise ValueError(
                f"entry {doc['id']!r}: stored digest for {section!r} "
                f"({expected}) does not match its golden ({actual}); "
                "the entry was hand-edited or truncated — re-record it"
            )
    stored_fp = doc.get("fingerprint")
    if stored_fp is not None:
        if not isinstance(stored_fp, str) or not stored_fp:
            raise ValueError(
                f"entry {doc['id']!r}: fingerprint must be a non-empty "
                "string when present"
            )
        # hash the stored document directly (record always writes the
        # canonical network_to_dict form) — deliberately NOT through the
        # late-bound serialisation seam, which the mutation harness
        # patches; entry validation must stay trustworthy under mutants
        actual_fp = serialization_mod.network_doc_fingerprint(doc["network"])
        if stored_fp != actual_fp:
            raise ValueError(
                f"entry {doc['id']!r}: stored fingerprint ({stored_fp}) "
                f"does not match its network content ({actual_fp}); "
                "the network was edited — re-record the entry"
            )
