"""Mutation-strength harness: can the corpus actually kill bugs?

A golden corpus is only as good as its killing power.  This module
keeps a catalogue of **known-bad analysis variants** — each one a
historically plausible regression (several literally happened in this
repo's history, several are the classic published mistakes the paper's
own analysis corrects) — and injects them through the same late-bound
module seams :mod:`repro.corpus.golden` computes through.  The harness
then asserts that ``corpus check`` *fails* under every mutant: a mutant
that survives marks a blind spot the corpus must grow an entry for.

Catalogue (each entry names the layer it corrupts):

* ``dm-dropped-blocking`` — eq. (16) without the ``B_i`` term (the
  lower-priority just-staged request is free).
* ``dm-single-instance-busy-period`` — only the first instance of the
  level-i busy period is examined (the pre-Davis-2007 unsoundness the
  multi-instance correction in ``rta_fixed`` exists for).
* ``dm-stale-interference-cache`` — the per-master response-row memo
  ignores its ``Tcycle`` key and serves the previous analysis' rows.
* ``fcfs-queue-undercount`` — eq. (11) with ``(nh−1)·Tcycle``.
* ``edf-blocking-subtract-one`` — eqs. (17)–(18) with the ``C−1``
  blocking refinement the paper's transfer explicitly does not use.
* ``tdel-drops-overrunner`` — eq. (13) missing its largest per-master
  cycle term.
* ``sweep-truncated-deadline-scale`` — ``_scale_deadlines`` truncates
  instead of rounding (the PR 3 regression).
* ``csv-drops-header`` — ``rows_to_csv`` stops emitting the header row.
* ``serialization-drops-jitter`` — ``network_to_dict`` silently loses
  non-zero ``J`` fields.
* ``validate-ignores-pending`` — ``effective_observed`` ignores
  pending-request age (the vacuous-pass hole PR 3 closed).
* ``sim-mac-before-release`` — the DES calendar fires same-instant
  events MAC-first, so a request released at the token-arrival instant
  misses that token visit (inverts the engine's determinism contract;
  killed by the dedicated ``probe:event-order`` corpus entry).
* ``vec-int32-truncation`` — the vector engine's packing seam narrows
  every stream attribute to int32 (the classic dtype-downcast
  regression a numpy rewrite invites); killed by the dedicated
  ``probe:wide-values`` corpus entry whose periods and deadlines exceed
  2³², so the wraparound silently analyses a much smaller network.

Mutants patch module attributes inside a context manager and restore
them afterwards, so the harness leaves the process clean even on error.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from pathlib import Path


@contextmanager
def _patched(*patches: Tuple[Any, str, Any]) -> Iterator[None]:
    """Temporarily set attributes (or dict entries) on modules/classes:
    each patch is ``(target, name, replacement)``; a ``dict`` target is
    patched by key."""
    saved: List[Tuple[Any, str, Any]] = []
    try:
        for target, name, replacement in patches:
            if isinstance(target, dict):
                saved.append((target, name, target[name]))
                target[name] = replacement
            else:
                saved.append((target, name, getattr(target, name)))
                setattr(target, name, replacement)
        yield
    finally:
        for target, name, original in reversed(saved):
            if isinstance(target, dict):
                target[name] = original
            else:
                setattr(target, name, original)


@dataclass(frozen=True)
class Mutant:
    """One known-bad analysis variant."""

    name: str
    description: str
    #: which golden section(s) are expected to kill it (documentation;
    #: the harness accepts a kill from any section)
    expected_killers: Tuple[str, ...]
    #: zero-arg factory returning the active patch context manager
    apply: Callable[[], Any]


# ------------------------------------------------------------ DM mutants

def _dm_dropped_blocking():
    from ..core import rta_fixed

    def no_blocking(taskset, task, subtract_one=False):
        return 0

    return _patched((rta_fixed, "nonpreemptive_blocking", no_blocking))


def _dm_single_instance():
    from ..core import rta_fixed
    from ..core.results import ResponseTime
    from ..profibus import dm as dm_mod

    def first_instance_only(taskset, task, strict_start=True,
                            max_instances=100_000):
        solved = rta_fixed.nonpreemptive_start_time(
            taskset, task, strict_start=strict_start, instance=0
        )
        if solved is None:
            return ResponseTime(task=task, value=None)
        w, its = solved
        r = w + task.C
        if r + task.J > task.D:
            return ResponseTime(task=task, value=None, iterations=its)
        return ResponseTime(task=task, value=r + task.J, iterations=its)

    return _patched(
        (dm_mod, "nonpreemptive_response_time", first_instance_only)
    )


def _dm_stale_cache():
    from ..perf.config import fast_path_enabled
    from ..profibus import dm as dm_mod
    from ..profibus.network import master_memo

    original = dm_mod.dm_response_times

    def stale_dm_response_times(master, tc):
        if fast_path_enabled():
            memo = master_memo(master)
            entry = memo.get("dm_rows")
            if entry is not None:  # BUG: the Tcycle key is never checked
                return list(entry[1])
        # cache miss: the real implementation computes and stores the
        # (tc, rows) slot this wrapper will then serve stale
        return original(master, tc)

    return _patched((dm_mod, "dm_response_times", stale_dm_response_times))


# ---------------------------------------------------- FCFS / EDF mutants

def _fcfs_undercount():
    from ..profibus import fcfs as fcfs_mod
    from ..profibus import ttr as ttr_mod
    from ..profibus.results import NetworkAnalysis, StreamResponse
    from ..profibus.timing import tcycle as compute_tcycle

    def undercounting_fcfs_analysis(network, ttr=None, refined=False):
        if ttr is None:
            ttr = network.require_ttr()
        tc = compute_tcycle(network, ttr, refined=refined)
        per_stream = []
        phy = network.phy
        for master in network.masters:
            r = max(0, master.nh - 1) * tc  # BUG: own request not counted
            per_stream.extend(
                StreamResponse(master=master.name, stream=s, R=r,
                               Q=r - s.cycle_bits(phy))
                for s in master.high_streams
            )
        return NetworkAnalysis(policy="fcfs", ttr=ttr, tcycle=tc,
                               per_stream=tuple(per_stream),
                               detail={"refined": refined})

    return _patched(
        (fcfs_mod, "fcfs_analysis", undercounting_fcfs_analysis),
        (ttr_mod._POLICIES, "fcfs", undercounting_fcfs_analysis),
    )


def _edf_subtract_one():
    from ..profibus import edf as edf_mod

    original = edf_mod.edf_response_time

    def subtracting_edf_response_time(taskset, task, preemptive=True,
                                      limit_factor=4,
                                      blocking_subtract_one=True):
        return original(
            taskset, task, preemptive=preemptive, limit_factor=limit_factor,
            blocking_subtract_one=True,  # BUG: forces the C−1 refinement
        )

    return _patched(
        (edf_mod, "edf_response_time", subtracting_edf_response_time)
    )


# ------------------------------------------------------- timing mutants

def _tdel_drops_overrunner():
    from ..profibus import timing as timing_mod

    def tdel_missing_overrunner(network):
        phy = network.phy
        cms = [timing_mod.longest_cycle(m, phy) for m in network.masters]
        return sum(cms) - max(cms) if cms else 0  # BUG: drops max term

    return _patched((timing_mod, "tdel", tdel_missing_overrunner))


# ------------------------------------------------ sweep / serialization

def _sweep_truncates():
    from ..profibus import sweep as sweep_mod
    from ..profibus.network import Network

    def truncating_scale_deadlines(network, factor):
        masters = []
        for m in network.masters:
            streams = [
                s.with_deadline(max(1, min(s.T, int(s.D * factor))))  # BUG
                for s in m.streams
            ]
            masters.append(m.with_streams(streams))
        return Network(masters=tuple(masters), slaves=network.slaves,
                       phy=network.phy, ttr=network.ttr)

    return _patched((sweep_mod, "_scale_deadlines",
                     truncating_scale_deadlines))


def _csv_drops_header():
    from ..profibus import sweep as sweep_mod

    original = sweep_mod.rows_to_csv

    def headerless_rows_to_csv(rows):
        csv = original(rows)
        return csv.split("\n", 1)[1] if "\n" in csv else csv  # BUG

    return _patched((sweep_mod, "rows_to_csv", headerless_rows_to_csv))


def _serialization_drops_jitter():
    from ..profibus import serialization as serialization_mod

    original = serialization_mod.network_to_dict

    def jitterless_network_to_dict(network):
        doc = original(network)
        for master in doc["masters"]:
            for stream in master["streams"]:
                stream.pop("J", None)  # BUG: jitter silently lost
        return doc

    return _patched(
        (serialization_mod, "network_to_dict", jitterless_network_to_dict)
    )


# ----------------------------------------------------------- sim mutants

def _validate_ignores_pending():
    from ..sim import validate as validate_mod

    return _patched((
        validate_mod.ValidationRow, "effective_observed",
        property(lambda self: self.observed),  # BUG: pending age ignored
    ))


def _sim_mac_before_release():
    from ..sim import engine as engine_mod

    original = engine_mod.Simulator.schedule

    def swapped_schedule(self, time, callback,
                         priority=engine_mod.PRIO_MAC):
        # BUG: inverts the same-instant convention — MAC decisions fire
        # before releases, so a request queued at the token-arrival
        # instant is invisible to that token visit
        if priority == engine_mod.PRIO_RELEASE:
            priority = engine_mod.PRIO_MAC
        elif priority == engine_mod.PRIO_MAC:
            priority = engine_mod.PRIO_RELEASE
        return original(self, time, callback, priority)

    return _patched((engine_mod.Simulator, "schedule", swapped_schedule))


# -------------------------------------------------------- vector mutants

def _vec_int32_truncation():
    from ..perf import vector as vector_mod

    def truncating_pack_value(v):
        # BUG: int32 wraparound at the SoA packing seam — values beyond
        # 2³¹ re-enter as small (or negative) ints and the vector
        # kernels analyse a different network than the one given.
        # Values above 2³² wrap to small *positives*, so the mutant
        # produces wrong-but-computable goldens rather than a crash.
        return ((v + 2**31) % 2**32) - 2**31

    return _patched((vector_mod, "_pack_value", truncating_pack_value))


MUTANTS: Dict[str, Mutant] = {
    m.name: m
    for m in (
        Mutant("dm-dropped-blocking",
               "eq. (16) without the lower-priority blocking term B_i",
               ("analysis",), _dm_dropped_blocking),
        Mutant("dm-single-instance-busy-period",
               "only instance q=0 of the level-i busy period examined "
               "(pre-Davis-2007)",
               ("analysis",), _dm_single_instance),
        Mutant("dm-stale-interference-cache",
               "per-master DM row memo ignores its Tcycle key",
               ("analysis",), _dm_stale_cache),
        Mutant("fcfs-queue-undercount",
               "eq. (11) computed as (nh-1)*Tcycle",
               ("analysis",), _fcfs_undercount),
        Mutant("edf-blocking-subtract-one",
               "eqs. (17)-(18) with the C-1 blocking refinement",
               ("analysis",), _edf_subtract_one),
        Mutant("tdel-drops-overrunner",
               "eq. (13) missing its largest per-master cycle term",
               ("analysis", "sweep", "validation"), _tdel_drops_overrunner),
        Mutant("sweep-truncated-deadline-scale",
               "_scale_deadlines truncates instead of rounding",
               ("sweep",), _sweep_truncates),
        Mutant("csv-drops-header",
               "rows_to_csv stops emitting the header row",
               ("sweep",), _csv_drops_header),
        Mutant("serialization-drops-jitter",
               "network_to_dict silently drops non-zero J fields",
               ("roundtrip",), _serialization_drops_jitter),
        Mutant("validate-ignores-pending",
               "effective_observed ignores pending-request age",
               ("validation",), _validate_ignores_pending),
        Mutant("sim-mac-before-release",
               "same-instant token-bus events fire MAC before releases "
               "(the t=0 critical instant goes unobserved)",
               ("validation",), _sim_mac_before_release),
        Mutant("vec-int32-truncation",
               "vector packing seam narrows stream attributes to int32 "
               "(values beyond 2^31 wrap around)",
               ("analysis",), _vec_int32_truncation),
    )
}


@dataclass(frozen=True)
class MutantOutcome:
    mutant: str
    killed: bool
    #: first corpus entry whose check failed under the mutant
    killed_by_entry: Optional[str] = None
    #: golden sections (or self-consistency oracles) that failed
    killed_by_sections: Tuple[str, ...] = ()


@dataclass(frozen=True)
class MutationReport:
    outcomes: List[MutantOutcome]
    baseline_ok: bool

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.killed)

    @property
    def survivors(self) -> List[str]:
        return [o.mutant for o in self.outcomes if not o.killed]

    @property
    def ok(self) -> bool:
        return self.baseline_ok and not self.survivors

    def format_lines(self) -> List[str]:
        lines = []
        if not self.baseline_ok:
            lines.append("  BASELINE FAILED — corpus check must pass "
                         "unmutated before kills mean anything")
        for o in self.outcomes:
            if o.killed:
                sections = ", ".join(o.killed_by_sections)
                lines.append(f"  killed    {o.mutant:<34} "
                             f"by {o.killed_by_entry} [{sections}]")
            else:
                lines.append(f"  SURVIVED  {o.mutant:<34} "
                             "— the corpus has a blind spot here")
        lines.append(
            f"mutation strength: {self.killed}/{len(self.outcomes)} "
            f"mutants killed"
        )
        return lines


def run_mutation_harness(
    directory: Union[str, Path] = "corpus",
    mutant_names: Optional[List[str]] = None,
) -> MutationReport:
    """Baseline-check the corpus, then inject each mutant and assert
    ``corpus check`` kills it.

    Each mutant's check short-circuits at the first failing section of
    the first failing entry — one kill is enough evidence — so the
    harness cost stays close to one full corpus check plus one partial
    check per mutant.
    """
    from .store import check_corpus

    if mutant_names is None:
        mutants = list(MUTANTS.values())
    else:
        unknown = set(mutant_names) - set(MUTANTS)
        if unknown:
            raise ValueError(
                f"unknown mutant(s) {sorted(unknown)}; "
                f"pick from {sorted(MUTANTS)}"
            )
        mutants = [MUTANTS[name] for name in mutant_names]

    baseline = check_corpus(directory)
    outcomes: List[MutantOutcome] = []
    for mutant in mutants:
        with mutant.apply():
            report = check_corpus(directory, fail_fast=True,
                                  stop_on_first_failure=True)
        failed = report.failed
        if failed:
            first = failed[0]
            outcomes.append(MutantOutcome(
                mutant=mutant.name,
                killed=True,
                killed_by_entry=first.entry_id,
                killed_by_sections=tuple(s for s, _ in first.mismatches),
            ))
        else:
            outcomes.append(MutantOutcome(mutant=mutant.name, killed=False))
    return MutationReport(outcomes=outcomes, baseline_ok=baseline.ok)
