"""Golden regression corpus.

The fuzz campaigns of :mod:`repro.fuzz` *find* soundness bugs; this
subpackage *keeps* them found.  A corpus is a versioned on-disk set of
JSONL entries (``corpus/*.jsonl``), each a serialized network plus
provenance plus **frozen bit-exact goldens** of everything the toolbox
computes about it:

* per-policy analysis results (eqs. (11)/(16)/(17)), on both the fast
  kernel path and the generic exact path, at the entry's TTR *and* at a
  probe TTR (so stale per-master caches cannot hide);
* batch-driver summaries through :func:`repro.perf.batch.analyse_many`;
* sweep rows (deadline-scale / TTR / baud) and their CSV rendering;
* scenario-document round-trip identity;
* token-bus sim-validation verdicts at a pinned horizon.

``repro-cli corpus check`` recomputes every section and compares it
bit-exactly against the frozen golden — a silent regression in any
analysis layer fails in seconds, long after the fuzz seed that first
found it stopped rediscovering it.  ``corpus promote`` (and the
``corpus_dir`` campaign option) turns every shrunk fuzz counterexample
into a permanent corpus entry at campaign end.

The mutation-strength harness (:mod:`repro.corpus.mutants`) measures
the corpus's killing power: it injects known-bad analysis variants
(dropped blocking term, truncated ``_scale_deadlines``, single-instance
busy period, stale interference cache, ...) through the same
late-bound module seams the golden computation calls through, and
asserts ``corpus check`` kills each one.
"""

from .entry import (
    CORPUS_SCHEMA,
    GOLDEN_SECTIONS,
    CorpusEntry,
    canonical_json,
    section_digest,
    validate_entry_doc,
)
from .golden import check_network_golden, compute_golden, default_config
from .mutants import MUTANTS, Mutant, MutationReport, run_mutation_harness
from .store import (
    DEFAULT_CORPUS_DIR,
    CheckReport,
    PromotionResult,
    append_entry,
    check_corpus,
    load_corpus,
    promote_counterexamples,
    promote_report_doc,
    record_network,
    refreeze_corpus,
    seed_entries,
    write_seed_corpus,
)

__all__ = [
    "CORPUS_SCHEMA",
    "CheckReport",
    "CorpusEntry",
    "DEFAULT_CORPUS_DIR",
    "GOLDEN_SECTIONS",
    "MUTANTS",
    "Mutant",
    "MutationReport",
    "PromotionResult",
    "append_entry",
    "canonical_json",
    "check_corpus",
    "check_network_golden",
    "compute_golden",
    "default_config",
    "load_corpus",
    "promote_counterexamples",
    "promote_report_doc",
    "record_network",
    "refreeze_corpus",
    "run_mutation_harness",
    "section_digest",
    "seed_entries",
    "validate_entry_doc",
    "write_seed_corpus",
]
