"""Golden computation and bit-exact checking.

Every quantity is computed through **late-bound module attributes**
(``ttr_mod.analyse``, ``sweep_mod.deadline_scale_sweep``,
``serialization_mod.network_to_dict``, ``validate_mod.validate_network``,
``batch_mod.analyse_many``) — the injectable-analysis seam.  The
mutation harness (:mod:`repro.corpus.mutants`) swaps those attributes
for known-bad variants; because the check resolves them at call time,
an injected mutant flows through the exact code paths a real regression
would, and the frozen goldens must kill it.

Sections:

``analysis``
    Per-policy per-stream response times and ``Tcycle`` from
    :func:`repro.profibus.ttr.analyse`, evaluated on the fast kernel
    path, the generic exact path **and** the structure-of-arrays vector
    kernels (:func:`repro.perf.vector.response_rows` — whichever
    backend is active, numpy or the pure-python fallback; the frozen
    values are backend-independent by the bit-equality contract), at
    the entry's own TTR and at a probe TTR (``config["ttr_probe"]``) —
    the probe re-analyses the *same* master objects at a second
    ``Tcycle``, so a cache that goes stale across analysis inputs
    cannot return the first answer twice unnoticed.  Plus the batch
    summaries from :func:`repro.perf.batch.analyse_many` in all three
    modes.
``sweep``
    ``deadline_scale_sweep`` / ``ttr_sweep`` / ``baud_sweep`` rows at
    pinned grids, and a digest of their ``rows_to_csv`` rendering
    (freezes the CSV contract: header, escaping, ``None`` cells).
``roundtrip``
    Digest of ``network_to_dict(network)`` — must reproduce the stored
    scenario document bit-exactly.
``validation``
    Token-bus simulation verdict rows (:mod:`repro.sim.validate`) at a
    pinned policy/horizon, including per-row ``effective_observed`` so
    pending-request accounting is frozen too.

Besides comparing recomputations against the frozen goldens,
:func:`check_network_golden` enforces two **self-consistency oracles**
that do not depend on the stored values at all: the fast and vectorized
analysis modes must each agree with the generic one, and the scenario
document must be a round-trip fixed point.  A counterexample promoted into the
corpus *before* its bug is fixed therefore keeps failing ``corpus
check`` even though its goldens were recorded under the bug; once the
fix lands, ``corpus record --update`` refreezes the corrected values.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..perf import batch as batch_mod
from ..perf import vector as vector_mod
from ..perf.config import set_fast_path
from ..profibus import serialization as serialization_mod
from ..profibus import sweep as sweep_mod
from ..profibus import ttr as ttr_mod
from ..profibus.network import Network
from ..sim import validate as validate_mod
from .entry import GOLDEN_SECTIONS, canonical_json, section_digest

DEFAULT_POLICIES: Tuple[str, ...] = ("fcfs", "dm", "edf")

#: Deadline-scale factors with fractional parts that separate rounding
#: from truncation on realistic bit-time deadlines.
DEFAULT_SWEEP_FACTORS: Tuple[float, ...] = (0.7003, 1.25)

#: Baud grid for the sweep section (bounded for check latency; the full
#: STANDARD_BAUD_RATES grid is covered by tests/test_sweep.py).
DEFAULT_BAUD_RATES: Tuple[int, ...] = (187_500, 500_000, 1_500_000)

#: Default cap on the validation-simulation horizon (bit times) — keeps
#: ``corpus check`` in the seconds range; entries may pin any horizon.
DEFAULT_HORIZON_CAP = 200_000


def default_config(
    network: Network,
    validation_policy: str = "dm",
    validation_horizon: Optional[int] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    sweep_factors: Sequence[float] = DEFAULT_SWEEP_FACTORS,
    baud_rates: Sequence[int] = DEFAULT_BAUD_RATES,
) -> Dict[str, Any]:
    """Pinned evaluation knobs for one entry (stored, so ``check``
    replays exactly what ``record`` froze)."""
    ttr = network.require_ttr()
    if validation_horizon is None:
        analysis = ttr_mod.analyse(network, validation_policy)
        finite = [sr.R for sr in analysis.per_stream if sr.R is not None]
        max_tj = max(
            (s.T + s.J for m in network.masters for s in m.streams), default=1
        )
        required = (2 * max(finite, default=0) + 2 * max_tj
                    + 4 * analysis.tcycle + network.ring_latency())
        validation_horizon = min(required, DEFAULT_HORIZON_CAP)
    return {
        "policies": list(policies),
        "ttr_probe": ttr + 256,
        "sweep_factors": list(sweep_factors),
        # a fractional grid value freezes the round-not-truncate contract
        "ttr_values": [ttr, ttr + 0.5, ttr + 512],
        "baud_rates": list(baud_rates),
        "validation": {
            "policy": validation_policy,
            "horizon": validation_horizon,
        },
    }


def _analysis_rows(network: Network, policy: str,
                   ttr: Optional[int] = None) -> Dict[str, Any]:
    res = ttr_mod.analyse(network, policy, ttr=ttr)
    return {
        "tcycle": res.tcycle,
        "rows": [[sr.master, sr.stream.name, sr.R] for sr in res.per_stream],
    }


def _batch_rows(network: Network, policies: Sequence[str],
                mode: Optional[str] = None) -> List[List[Any]]:
    return [
        [r.index, r.policy, r.schedulable, r.worst_response, r.worst_slack,
         r.tcycle]
        for r in batch_mod.analyse_many([network], policies, workers=1,
                                        mode=mode)
    ]


def _sweep_rows(rows) -> List[List[Any]]:
    return [
        [r.parameter, r.value, r.policy, r.schedulable, r.worst_response,
         r.worst_slack, r.tcycle]
        for r in rows
    ]


def _compute_analysis(network: Network, config: Dict[str, Any]) -> Dict[str, Any]:
    policies = tuple(config["policies"])
    out: Dict[str, Any] = {"probe_ttr": config["ttr_probe"], "modes": {}}
    for mode, fast in (("fast", True), ("generic", False)):
        previous = set_fast_path(fast)
        try:
            # Base before probe: the probe must revisit masters whose
            # caches the base analysis just warmed.
            base = {p: _analysis_rows(network, p) for p in policies}
            probe = {
                p: _analysis_rows(network, p, ttr=config["ttr_probe"])
                for p in policies
            }
            batch = _batch_rows(network, policies)
        finally:
            set_fast_path(previous)
        out["modes"][mode] = {"base": base, "probe": probe, "batch": batch}
    # Third leg: the SoA vector kernels.  ``response_rows`` returns the
    # exact ``_analysis_rows`` shape, so the three mode documents stay
    # directly comparable (the kernel-equivalence oracle below relies
    # on that).
    out["modes"]["vectorized"] = {
        "base": {p: vector_mod.response_rows(network, p) for p in policies},
        "probe": {
            p: vector_mod.response_rows(network, p, ttr=config["ttr_probe"])
            for p in policies
        },
        "batch": _batch_rows(network, policies, mode="vectorized"),
    }
    return out


def _compute_sweep(network: Network, config: Dict[str, Any]) -> Dict[str, Any]:
    policies = tuple(config["policies"])
    ds = sweep_mod.deadline_scale_sweep(network, config["sweep_factors"],
                                        policies=policies)
    tt = sweep_mod.ttr_sweep(network, config["ttr_values"],
                             policies=policies)
    bd = sweep_mod.baud_sweep(network, config["baud_rates"],
                              policies=policies)
    return {
        "deadline_scale": _sweep_rows(ds),
        "ttr": _sweep_rows(tt),
        "baud": _sweep_rows(bd),
        "csv_sha256": section_digest(sweep_mod.rows_to_csv(ds + tt + bd)),
    }


def _compute_roundtrip(network: Network, config: Dict[str, Any]) -> Dict[str, Any]:
    doc = serialization_mod.network_to_dict(network)
    return {"doc_sha256": section_digest(doc)}


def _compute_validation(network: Network, config: Dict[str, Any]) -> Dict[str, Any]:
    vcfg = config["validation"]
    report = validate_mod.validate_network(network, vcfg["policy"],
                                           vcfg["horizon"])
    return {
        "policy": vcfg["policy"],
        "horizon": vcfg["horizon"],
        "rows": [
            [r.name, r.bound, r.observed, r.completed, r.released,
             r.unfinished, r.pending_age, r.effective_observed, r.verdict]
            for r in report.rows
        ],
        "all_sound": report.all_sound,
        "tcycle_bound": report.detail["tcycle_bound"],
        "max_trr_observed": report.detail["max_trr_observed"],
        "events": report.detail["events"],
    }


_SECTION_FNS = {
    "analysis": _compute_analysis,
    "sweep": _compute_sweep,
    "roundtrip": _compute_roundtrip,
    "validation": _compute_validation,
}


def compute_golden(
    network: Network,
    config: Dict[str, Any],
    sections: Sequence[str] = GOLDEN_SECTIONS,
) -> Dict[str, Any]:
    """The requested golden sections for ``network`` under ``config``."""
    unknown = set(sections) - set(_SECTION_FNS)
    if unknown:
        raise ValueError(f"unknown golden section(s) {sorted(unknown)}")
    return {name: _SECTION_FNS[name](network, config) for name in sections}


def first_difference(a: Any, b: Any, path: str = "$") -> Optional[str]:
    """Human-readable locator of the first divergence between two
    JSON-like values (golden vs recomputed), or ``None`` if equal."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                return f"{path}.{key}: only in recomputation"
            if key not in b:
                return f"{path}.{key}: missing from recomputation"
            sub = first_difference(a[key], b[key], f"{path}.{key}")
            if sub:
                return sub
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            sub = first_difference(x, y, f"{path}[{i}]")
            if sub:
                return sub
        return None
    if a != b:
        return f"{path}: golden {a!r} != recomputed {b!r}"
    return None


def check_network_golden(
    network_doc: Dict[str, Any],
    config: Dict[str, Any],
    golden: Dict[str, Any],
    fail_fast: bool = False,
) -> List[Tuple[str, str]]:
    """Recompute each golden section and compare bit-exactly.

    Returns ``(section, detail)`` mismatch pairs — empty means the
    entry passes.  Sections are evaluated cheap-first
    (analysis → sweep → roundtrip → validation: the simulation is the
    dominant cost) and ``fail_fast`` stops at the first mismatch, which
    is what makes the mutation harness affordable.

    Beyond the golden comparison proper, two self-consistency oracles
    run regardless of the frozen values: fast-vs-generic analysis
    equality, and scenario-document round-trip identity against the
    *stored* document (not just its recorded digest).
    """
    mismatches: List[Tuple[str, str]] = []
    network = serialization_mod.network_from_dict(network_doc)
    for section in GOLDEN_SECTIONS:
        if section not in golden:
            continue
        recomputed = _SECTION_FNS[section](network, config)
        if canonical_json(recomputed) != canonical_json(golden[section]):
            detail = first_difference(golden[section], recomputed) or "differs"
            mismatches.append((section, detail))
        if section == "analysis":
            modes = recomputed["modes"]
            generic = modes["generic"]
            for other in ("fast", "vectorized"):
                if other not in modes:
                    continue  # goldens frozen before the mode existed
                if canonical_json(modes[other]) != canonical_json(generic):
                    mismatches.append((
                        "analysis:kernel-equivalence",
                        first_difference(generic, modes[other])
                        or f"{other} != generic",
                    ))
        if section == "roundtrip":
            redoc = serialization_mod.network_to_dict(network)
            if canonical_json(redoc) != canonical_json(network_doc):
                mismatches.append((
                    "roundtrip:identity",
                    first_difference(network_doc, redoc) or "doc not a fixed point",
                ))
        if mismatches and fail_fast:
            break
    return mismatches
