"""The on-disk corpus: JSONL files under ``corpus/``.

Layout: every ``*.jsonl`` file under the corpus directory holds one
entry per line (see :mod:`repro.corpus.entry` for the document shape).
The seeded corpus ships as:

* ``event-order.jsonl`` — the DES event-ordering probe (name sorts
  first, so mutation-harness kills meet it before anything else);
* ``scenarios.jsonl`` — the three built-in scenarios;
* ``wide-values.jsonl`` — the >2³² magnitude probe that keeps the
  vector engine's packing seam honest about integer width;
* ``fuzz.jsonl`` — one exemplar instance per fuzz family, recorded at a
  pinned campaign seed;
* ``promoted.jsonl`` — shrunk counterexamples promoted from fuzz
  campaigns (``repro-cli corpus promote`` / the ``corpus_dir`` campaign
  option appends here).

Entry ids are unique across the whole directory; promotion is
idempotent (an already-present id is skipped, never duplicated).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..profibus import serialization as serialization_mod
from ..profibus.network import Network
from .entry import CorpusEntry, canonical_json, section_digest
from .golden import compute_golden, check_network_golden, default_config

DEFAULT_CORPUS_DIR = "corpus"

#: Campaign seed the shipped fuzz exemplars were generated at.
SEED_FUZZ_SEED = 0

#: One exemplar instance per family (index under :data:`SEED_FUZZ_SEED`).
#: Indices are curated, not arbitrary: together with the built-in
#: scenarios they must kill every mutant in
#: :data:`repro.corpus.mutants.MUTANTS` (asserted by the tier-1 tests),
#: which needs e.g. a jittered network for the serialization mutant and
#: a multi-instance busy period for the pre-Davis-2007 DM variant.
SEED_FUZZ_EXEMPLARS: Dict[str, int] = {
    "multi-master-ring": 0,
    "jitter-heavy": 0,
    "low-dominated": 0,
    "retry-prone": 0,
    "mixed-baud": 0,
    "tight-ttr": 0,
}

#: Validation horizon for the flagship factory-cell entry (long enough
#: for every stream to complete several responses).
FACTORY_CELL_VALIDATION_HORIZON = 30_000

#: Validation horizon for the event-ordering probe entry — a few token
#: rotations: long enough for every first response (whose observed value
#: moves the moment same-instant releases stop preceding MAC decisions),
#: short enough that the probe kill costs milliseconds.  The probe file
#: name sorts *before* the other corpus files, so the mutation harness's
#: stop-on-first-failure check meets it first.
EVENT_ORDER_PROBE_HORIZON = 12_000


def event_order_probe_network() -> "Network":
    """A deliberately minimal network whose validation golden pins the
    DES same-instant convention (releases before MAC decisions).

    Every stream releases synchronously at t=0 — the instant the token
    first arrives — so the frozen observed responses are only
    reproducible while the t=0 releases are visible to the t=0 MAC
    decision.  An engine that fires MAC events first pushes every first
    response a full token rotation out, and this entry dies loudly.
    """
    from ..profibus.cycle import MessageCycleSpec
    from ..profibus.network import Master
    from ..profibus.phy import PhyParameters
    from ..profibus.stream import MessageStream

    ms = 500  # bit times per millisecond at 500 kbit/s
    m1 = Master(1, (
        MessageStream("ping", T=20 * ms, D=10 * ms,
                      spec=MessageCycleSpec(req_payload=2, resp_payload=2)),
    ))
    m2 = Master(2, (
        MessageStream("pong", T=24 * ms, D=12 * ms,
                      spec=MessageCycleSpec(req_payload=2, resp_payload=2)),
    ))
    net = Network(masters=(m1, m2), phy=PhyParameters(baud_rate=500_000))
    return net.with_ttr(max(600, net.ring_latency()))


#: Validation horizon for the wide-values probe — the streams' periods
#: dwarf any feasible horizon, so a few token rotations cover the one
#: synchronous release each stream gets.
WIDE_VALUES_PROBE_HORIZON = 12_000


def wide_values_probe_network() -> "Network":
    """A network whose periods and deadlines exceed 2³² — the dtype
    canary for the structure-of-arrays vector engine.

    Every stream attribute stays well under the engine's
    ``_PACK_LIMIT`` (2⁴⁴), so the network takes the vector path rather
    than the scalar fallback — but any packing seam that narrows to
    int32 (the ``vec-int32-truncation`` mutant) wraps these magnitudes
    around to *small positive* values and silently analyses a much
    tighter network, which the frozen goldens catch.  Magnitudes sit
    above 2³² (not merely 2³¹) exactly so the wraparound lands positive:
    a wrong-but-computable analysis kills through a golden mismatch,
    where a negative-period crash would abort the check instead.
    """
    from ..profibus.cycle import MessageCycleSpec
    from ..profibus.network import Master
    from ..profibus.phy import PhyParameters
    from ..profibus.stream import MessageStream

    wide = 1 << 32
    spec = MessageCycleSpec(req_payload=2, resp_payload=2)
    m1 = Master(1, (
        MessageStream("slow-scan", T=wide + 4_000, D=wide + 2_000,
                      spec=spec),
        MessageStream("slow-log", T=wide + 8_000, D=wide + 3_000,
                      J=wide + 500, spec=spec),
    ))
    m2 = Master(2, (
        MessageStream("slow-sync", T=wide + 6_000, D=wide + 2_500,
                      spec=spec),
    ))
    net = Network(masters=(m1, m2), phy=PhyParameters(baud_rate=500_000))
    return net.with_ttr(max(900, net.ring_latency()))


#: A second factory-cell entry pins a horizon *shorter than several
#: streams' first completion*, so its frozen verdict rows contain
#: releases still pending at the horizon (``incomplete`` verdicts,
#: ``effective_observed`` driven by pending age) — the corpus must keep
#: the pending-age accounting of :mod:`repro.sim.validate` honest, not
#: only the completed responses.  With synchronous no-jitter traffic the
#: worst response sits at the t=0 critical instant, so only an
#: early-horizon cut can leave a pending request older than anything
#: already observed.
FACTORY_CELL_SHORT_HORIZON = 6_000


def _corpus_files(directory: Union[str, Path]) -> List[Path]:
    return sorted(Path(directory).glob("*.jsonl"))


def load_corpus(directory: Union[str, Path]) -> List[CorpusEntry]:
    """Every entry in the directory, file order then line order.
    Raises ``ValueError`` on malformed entries or duplicate ids."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"corpus directory {directory} does not exist")
    entries: List[CorpusEntry] = []
    seen: Dict[str, str] = {}
    for path in _corpus_files(directory):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            try:
                entry = CorpusEntry.from_doc(doc)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            if entry.entry_id in seen:
                raise ValueError(
                    f"{path}:{lineno}: duplicate entry id "
                    f"{entry.entry_id!r} (first seen in {seen[entry.entry_id]})"
                )
            seen[entry.entry_id] = f"{path}:{lineno}"
            entries.append(entry)
    return entries


def _existing_ids(directory: Path) -> Dict[str, Path]:
    """Entry id → file, tolerating malformed lines.

    Promotion consults this to decide what is already recorded, and a
    kill mid-append can leave a partial trailing line behind — such a
    line means the entry was *not* durably recorded, so skipping it
    (rather than raising mid-campaign and losing the whole result) is
    the correct reading.  ``load_corpus`` stays strict: a corrupt line
    still fails ``corpus check`` loudly, with its location.
    """
    ids: Dict[str, Path] = {}
    for path in _corpus_files(directory):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry_id = json.loads(line).get("id")
            except json.JSONDecodeError:
                continue
            if isinstance(entry_id, str):
                ids[entry_id] = path
    return ids


def append_entry(
    directory: Union[str, Path],
    filename: str,
    entry: CorpusEntry,
    update: bool = False,
) -> None:
    """Append ``entry`` to ``directory/filename``.  With ``update``, an
    existing entry with the same id (in any corpus file) is replaced in
    place; without it, a duplicate id raises."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing = _existing_ids(directory)
    if entry.entry_id in existing:
        if not update:
            raise ValueError(
                f"entry {entry.entry_id!r} already exists in "
                f"{existing[entry.entry_id]}; pass update=True to refreeze"
            )
        path = existing[entry.entry_id]
        replaced = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                line_id = json.loads(line).get("id")
            except json.JSONDecodeError:
                # a torn partial line (tolerated by _existing_ids) must
                # not crash a replace; keep it for load_corpus to flag
                line_id = None
            replaced.append(
                canonical_json(entry.to_doc())
                if line_id == entry.entry_id else line
            )
        path.write_text("\n".join(replaced) + "\n")
        return
    _append_doc(directory, filename, entry)


def _append_doc(directory: Path, filename: str, entry: CorpusEntry) -> None:
    """Durably append one entry line (torn trailing lines repaired
    first) — the single writer behind every append path."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / filename
    _repair_trailing(path)
    with path.open("a") as fh:
        fh.write(canonical_json(entry.to_doc()) + "\n")


def record_network(
    network: Network,
    entry_id: str,
    provenance: Dict[str, Any],
    config: Optional[Dict[str, Any]] = None,
    **config_overrides: Any,
) -> CorpusEntry:
    """Freeze ``network`` into a corpus entry.

    The goldens are computed on a *re-parsed* copy of the scenario
    document, so record and check see identical cache-cold objects.
    """
    doc = serialization_mod.network_to_dict(network)
    parsed = serialization_mod.network_from_dict(doc)
    if config is None:
        config = default_config(parsed, **config_overrides)
    golden = compute_golden(parsed, config)
    return CorpusEntry(
        entry_id=entry_id,
        provenance=provenance,
        network_doc=doc,
        config=config,
        golden=golden,
        digests={name: section_digest(sec) for name, sec in golden.items()},
        fingerprint=parsed.fingerprint(),
    )


def seed_entries() -> List[Tuple[str, CorpusEntry]]:
    """The shipped corpus: ``(filename, entry)`` pairs for the three
    built-in scenarios plus one exemplar per fuzz family."""
    from ..fuzz.families import generate_instance
    from ..scenarios import (
        factory_cell_network,
        paper_illustration_network,
        single_master_network,
    )

    out: List[Tuple[str, CorpusEntry]] = []
    scenarios = (
        ("factory-cell", "factory-cell", factory_cell_network(),
         {"validation_horizon": FACTORY_CELL_VALIDATION_HORIZON}, None),
        ("factory-cell-short-horizon", "factory-cell",
         factory_cell_network(),
         {"validation_horizon": FACTORY_CELL_SHORT_HORIZON},
         "horizon cuts first completions: freezes pending-age accounting"),
        ("paper-illustration", "paper-illustration",
         paper_illustration_network().with_ttr(3000), {}, None),
        ("single-master", "single-master", single_master_network(), {}, None),
    )
    for entry_name, scenario, net, overrides, note in scenarios:
        provenance = {"source": "scenario", "scenario": scenario}
        if note:
            provenance["note"] = note
        out.append((
            "scenarios.jsonl",
            record_network(
                net,
                entry_id=f"scenario:{entry_name}",
                provenance=provenance,
                **overrides,
            ),
        ))
    out.append((
        "event-order.jsonl",
        record_network(
            event_order_probe_network(),
            entry_id="probe:event-order",
            provenance={
                "source": "probe",
                "note": ("synchronous t=0 releases pin the DES "
                         "same-instant convention (releases before MAC); "
                         "file name sorts first so the mutation harness "
                         "meets this entry before any other"),
            },
            validation_horizon=EVENT_ORDER_PROBE_HORIZON,
        ),
    ))
    out.append((
        "wide-values.jsonl",
        record_network(
            wide_values_probe_network(),
            entry_id="probe:wide-values",
            provenance={
                "source": "probe",
                "note": ("periods/deadlines/jitter beyond 2^32 make this "
                         "the dtype canary for the vector engine: an "
                         "int32-narrowing packing seam (the "
                         "vec-int32-truncation mutant) wraps them to "
                         "small positives and the frozen analysis "
                         "goldens diverge"),
            },
            validation_horizon=WIDE_VALUES_PROBE_HORIZON,
        ),
    ))
    for family in sorted(SEED_FUZZ_EXEMPLARS):
        index = SEED_FUZZ_EXEMPLARS[family]
        net = generate_instance(SEED_FUZZ_SEED, family, index)
        out.append((
            "fuzz.jsonl",
            record_network(
                net,
                entry_id=f"fuzz:{family}#{index}@seed{SEED_FUZZ_SEED}",
                provenance={
                    "source": "fuzz",
                    "family": family,
                    "index": index,
                    "seed": SEED_FUZZ_SEED,
                    "shrunk": False,
                    "repro": (
                        f"repro.fuzz.generate_instance(seed={SEED_FUZZ_SEED}, "
                        f"family={family!r}, index={index})"
                    ),
                },
            ),
        ))
    return out


def write_seed_corpus(directory: Union[str, Path]) -> List[str]:
    """(Re)write the seeded corpus files; returns the entry ids.

    The seed filenames are rewritten wholesale, but a seed id already
    recorded in some *other* corpus file is rejected up front —
    overwriting around it would leave the directory with duplicate ids
    and every subsequent ``load_corpus`` failing."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_file: Dict[str, List[CorpusEntry]] = {}
    for filename, entry in seed_entries():
        by_file.setdefault(filename, []).append(entry)
    foreign = {
        entry_id: path
        for entry_id, path in _existing_ids(directory).items()
        if path.name not in by_file
    }
    collisions = sorted(
        f"{e.entry_id} (in {foreign[e.entry_id].name})"
        for entries in by_file.values()
        for e in entries
        if e.entry_id in foreign
    )
    if collisions:
        raise ValueError(
            f"seed id(s) already recorded outside the seed files: "
            f"{collisions}; remove them before --seed-defaults"
        )
    ids: List[str] = []
    for filename, entries in by_file.items():
        path = directory / filename
        path.write_text(
            "".join(canonical_json(e.to_doc()) + "\n" for e in entries)
        )
        ids.extend(e.entry_id for e in entries)
    return ids


def refreeze_corpus(directory: Union[str, Path]) -> List[str]:
    """Re-record every entry in place under its own pinned config — the
    step after an *intentional* analytic change.  One pass per corpus
    file (re-recording N entries through per-entry ``append_entry``
    would rescan and rewrite the directory N times).  Returns the
    refrozen entry ids in file order."""
    directory = Path(directory)
    load_corpus(directory)  # strict validation (duplicates, corruption)
    ids: List[str] = []
    for path in _corpus_files(directory):
        refrozen: List[str] = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            old = CorpusEntry.from_doc(json.loads(line))
            entry = record_network(old.network(), old.entry_id,
                                   old.provenance, config=old.config)
            refrozen.append(canonical_json(entry.to_doc()))
            ids.append(entry.entry_id)
        path.write_text("".join(doc + "\n" for doc in refrozen))
    return ids


# ------------------------------------------------------------------ check

@dataclass(frozen=True)
class EntryResult:
    entry_id: str
    mismatches: List[Tuple[str, str]]

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass(frozen=True)
class CheckReport:
    results: List[EntryResult]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failed(self) -> List[EntryResult]:
        return [r for r in self.results if not r.ok]

    def format_lines(self, verbose: bool = False) -> List[str]:
        lines = []
        for r in self.results:
            if r.ok:
                lines.append(f"  ok    {r.entry_id}")
            else:
                sections = ", ".join(sorted({s for s, _ in r.mismatches}))
                lines.append(f"  FAIL  {r.entry_id}  [{sections}]")
                if verbose:
                    for section, detail in r.mismatches:
                        lines.append(f"        {section}: {detail}")
        n_fail = len(self.failed)
        lines.append(
            f"corpus check: {len(self.results) - n_fail}/{len(self.results)} "
            f"entries bit-exact" + (f", {n_fail} FAILED" if n_fail else "")
        )
        return lines


def _check_entry_job(
    job: Tuple[str, Dict[str, Any], Dict[str, Any], Dict[str, Any]],
    fail_fast: bool,
) -> EntryResult:
    """Recheck one entry — module-level and picklable, so
    :func:`repro.perf.batch.pooled_imap` can ship it to pool workers
    (everything in the job is the entry's own JSON-ready documents)."""
    entry_id, network_doc, config, golden = job
    return EntryResult(
        entry_id,
        check_network_golden(network_doc, config, golden,
                             fail_fast=fail_fast),
    )


def check_corpus(
    directory: Union[str, Path] = DEFAULT_CORPUS_DIR,
    entry_ids: Optional[Sequence[str]] = None,
    fail_fast: bool = False,
    stop_on_first_failure: bool = False,
    workers: Optional[int] = 1,
) -> CheckReport:
    """Recompute every entry's golden sections and compare bit-exactly.

    ``fail_fast`` short-circuits *within* an entry at its first
    mismatching section; ``stop_on_first_failure`` additionally stops
    at the first failing entry (the mutation harness uses both — one
    killing entry is enough evidence).

    ``workers`` spreads the per-entry recomputation over the shared
    :func:`repro.perf.batch.pooled_imap` engine (``1`` = serial
    in-process, ``None`` = cpu count).  Results come back in entry
    order either way, and the entries are independent, so the report is
    identical to a serial run.  The mutation harness must stay serial:
    its in-process monkeypatches do not reach spawned pool workers.
    """
    entries = load_corpus(directory)
    if entry_ids is not None:
        wanted = set(entry_ids)
        unknown = wanted - {e.entry_id for e in entries}
        if unknown:
            raise ValueError(f"unknown corpus entry id(s) {sorted(unknown)}")
        entries = [e for e in entries if e.entry_id in wanted]
    from functools import partial

    from ..perf.batch import pooled_imap

    jobs = [(e.entry_id, e.network_doc, e.config, e.golden) for e in entries]
    results: List[EntryResult] = []
    # chunksize=1: a corpus is tens of entries, each seconds of work —
    # per-entry scheduling beats pickling amortisation here
    for result in pooled_imap(partial(_check_entry_job, fail_fast=fail_fast),
                              jobs, workers=workers, chunksize=1):
        results.append(result)
        if not result.ok and stop_on_first_failure:
            break
    return CheckReport(results)


# --------------------------------------------------------------- promotion

@dataclass(frozen=True)
class PromotionResult:
    added: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    #: ``(entry_id, error)`` for counterexamples that could not be
    #: frozen — a non-promotable counterexample is a build failure
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def _repair_trailing(path: Path) -> None:
    """Drop a torn trailing line (a kill mid-append) before appending.

    The partial line was never durably recorded — ``_existing_ids``
    already treats its entry as absent — so truncating back to the last
    intact newline loses nothing, while appending straight after it
    would fuse the new entry into one unparseable line (the fuzz
    checkpoint writer handles the same hazard the same way)."""
    if not path.exists():
        return
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return
    cut = data.rfind(b"\n") + 1  # 0 when no newline survives
    with path.open("r+b") as fh:
        fh.truncate(cut)


def _promotion_overrides(provenance: Dict[str, Any]) -> Dict[str, Any]:
    """Pin the counterexample's own failure point into the entry config:
    its sweep factor joins the default grid and its policy drives the
    validation simulation, so the frozen goldens cover the *exact*
    coordinates the fuzz oracle failed at — not just the default grid,
    which may round/simulate identically on this network."""
    from ..corpus.golden import DEFAULT_SWEEP_FACTORS

    overrides: Dict[str, Any] = {}
    factor = provenance.get("factor")
    if isinstance(factor, (int, float)) and factor > 0:
        overrides["sweep_factors"] = sorted(
            set(DEFAULT_SWEEP_FACTORS) | {factor}
        )
    policy = provenance.get("policy")
    if policy in ("fcfs", "dm", "edf"):
        overrides["validation_policy"] = policy
    return overrides


def _counterexample_identity(provenance: Dict[str, Any]) -> str:
    """The policy is part of the identity where the oracle has one: the
    same instance can fail the same oracle under different ``--policies``
    rotations across campaigns, and each such failure pins different
    coordinates — collapsing them to one id would silently drop the
    later one as already-promoted."""
    base = (f"fuzz:{provenance['family']}#{provenance['index']}"
            f"@seed{provenance['seed']}:{provenance['oracle']}")
    policy = provenance.get("policy")
    return f"{base}:{policy}" if policy else base


#: ``(entry_id, provenance, network-or-None, error-or-None)`` — the one
#: shape both promotion front ends normalise their counterexamples to.
_PromotionItem = Tuple[str, Dict[str, Any], Optional[Network], Optional[str]]


def _existing_value_keys(directory: Path) -> set:
    """``(fingerprint, oracle, policy)`` for every entry that records a
    fingerprint — the value-identity view of the corpus.  Tolerant of
    malformed lines for the same reason :func:`_existing_ids` is."""
    keys = set()
    for path in _corpus_files(directory):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(doc, dict):
                continue
            fp = doc.get("fingerprint")
            if not isinstance(fp, str) or not fp:
                continue
            provenance = doc.get("provenance") or {}
            keys.add((fp, provenance.get("oracle"),
                      provenance.get("policy")))
    return keys


def _promote_batch(
    items: Iterable[_PromotionItem],
    directory: Union[str, Path],
) -> PromotionResult:
    """The single promotion loop.  Existing ids are scanned once per
    batch (per-item directory scans would be quadratic in corpus size)
    and updated in place as entries land in ``promoted.jsonl``.

    Dedup is two-level: by entry id (same campaign re-run) and by value
    key — canonical network fingerprint + oracle + policy — so two
    campaigns that shrink *different* instances to the same network
    under the same failing coordinates freeze it once, not twice under
    different names."""
    directory = Path(directory)
    existing = set(_existing_ids(directory))
    value_keys = _existing_value_keys(directory)
    added: List[str] = []
    skipped: List[str] = []
    errors: List[Tuple[str, str]] = []
    path = directory / "promoted.jsonl"
    fh: Optional[Any] = None
    try:
        for entry_id, provenance, network, error in items:
            if error is not None:
                errors.append((entry_id, error))
                continue
            if entry_id in existing:
                skipped.append(entry_id)
                continue
            value_key = (network.fingerprint(), provenance.get("oracle"),
                         provenance.get("policy"))
            if value_key in value_keys:
                skipped.append(entry_id)
                continue
            try:
                entry = record_network(network, entry_id, provenance,
                                       **_promotion_overrides(provenance))
                if fh is None:
                    # one repair + one append handle per batch (a torn
                    # trailing line is a pre-existing condition, not
                    # something this loop can create between writes)
                    directory.mkdir(parents=True, exist_ok=True)
                    _repair_trailing(path)
                    fh = path.open("a")
                fh.write(canonical_json(entry.to_doc()) + "\n")
                fh.flush()
            except Exception as exc:
                errors.append((entry_id, str(exc)))
            else:
                existing.add(entry_id)
                value_keys.add(value_key)
                added.append(entry_id)
    finally:
        if fh is not None:
            fh.close()
    return PromotionResult(added=added, skipped=skipped, errors=errors)


def _counterexample_provenance(oracle, family, index, seed, policy, factor,
                               detail, shrunk_detail) -> Dict[str, Any]:
    return {
        "source": "fuzz-counterexample",
        "oracle": oracle,
        "family": family,
        "index": index,
        "seed": seed,
        "policy": policy,
        "factor": factor,
        "detail": detail,
        "shrunk": True,
        "shrunk_detail": shrunk_detail,
    }


def promote_counterexamples(
    counterexamples: Iterable,
    directory: Union[str, Path] = DEFAULT_CORPUS_DIR,
) -> PromotionResult:
    """Freeze shrunk :class:`repro.fuzz.CounterExample` objects into the
    corpus (``promoted.jsonl``).  Idempotent per entry id."""
    items: List[_PromotionItem] = []
    for ce in counterexamples:
        provenance = _counterexample_provenance(
            ce.oracle, ce.family, ce.index, ce.seed, ce.policy, ce.factor,
            ce.detail, ce.shrunk_detail,
        )
        items.append((_counterexample_identity(provenance), provenance,
                      ce.shrunk, None))
    return _promote_batch(items, directory)


def promote_report_doc(
    doc: Dict[str, Any],
    directory: Union[str, Path] = DEFAULT_CORPUS_DIR,
) -> PromotionResult:
    """Promote every counterexample of a ``FUZZ_report.json`` document
    (schema ``profibus-rt/fuzz/v2``) into the corpus."""
    from ..fuzz.report import validate_report_dict

    validate_report_dict(doc)
    items: List[_PromotionItem] = []
    for position, ce in enumerate(doc["counterexamples"]):
        # validate_report_dict only checks the report's top-level shape,
        # so a hand-trimmed counterexample must surface as a promotion
        # error, not a KeyError traceback
        missing = [key for key in ("oracle", "family", "index", "seed",
                                   "shrunk_network")
                   if key not in ce]
        if missing:
            items.append((f"counterexamples[{position}]", {}, None,
                          f"missing key(s) {missing}"))
            continue
        provenance = _counterexample_provenance(
            ce["oracle"], ce["family"], ce["index"], ce["seed"],
            ce.get("policy"), ce.get("factor"), ce.get("detail", ""),
            ce.get("shrunk_detail", ""),
        )
        entry_id = _counterexample_identity(provenance)
        try:
            network = serialization_mod.network_from_dict(ce["shrunk_network"])
        except Exception as exc:
            items.append((entry_id, provenance, None,
                          f"shrunk network does not parse: {exc}"))
            continue
        items.append((entry_id, provenance, network, None))
    return _promote_batch(items, directory)
