"""Release jitter of message requests — §4.1 of the paper.

Messages inherit period and priority from the application tasks that
generate them; the *release jitter* of a message stream is the
variability in when the generating task actually enqueues the request.
The paper describes two task models:

* **Combined model** — one task places the request, auto-suspends until
  the response arrives, then finishes.  The message's release jitter is
  the worst-case response time of the *first part* of the task (up to
  and including the enqueue).
* **Split model** — separate sender and receiver tasks.  The message's
  release jitter is the worst-case response time of the whole *sender*
  task: an instance can enqueue as late as its response time, while the
  next can enqueue immediately on arrival.

Either way, ``J_msg = R(part) − C_best(part)`` collapses to the paper's
simpler ``J_msg = R(sender-part)`` upper bound, which is what we expose
(the conservative choice; the difference is the minimum enqueue latency,
rarely known in practice).

Task response times come from the §2 analyses — the application
processor is assumed preemptive fixed-priority or preemptive EDF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.edf_rta import edf_response_time
from ..core.rta_fixed import preemptive_response_time
from ..core.task import Task, TaskSet
from ..profibus.network import Master
from ..profibus.stream import MessageStream


@dataclass(frozen=True)
class TaskModel:
    """How a master's application tasks generate its message streams.

    ``sender_tasks`` maps stream name → the (sender part of the) task
    that enqueues its requests.  ``scheduler`` selects the processor
    scheduling policy used to bound the senders' response times.
    """

    sender_tasks: Dict[str, Task]
    scheduler: str = "fp"  # "fp" (preemptive fixed-priority) | "edf"
    model: str = "combined"  # "combined" | "split" (documentation only)

    def __post_init__(self) -> None:
        if self.scheduler not in ("fp", "edf"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.model not in ("combined", "split"):
            raise ValueError(f"unknown task model {self.model!r}")


def sender_response_times(model: TaskModel) -> Dict[str, Optional[int]]:
    """Worst-case response time of each sender (part), by stream name."""
    if not model.sender_tasks:
        return {}
    ts = TaskSet(list(model.sender_tasks.values()))
    out: Dict[str, Optional[int]] = {}
    if model.scheduler == "fp":
        if any(t.priority is None for t in ts):
            from ..core.priority import assign_deadline_monotonic

            ts = assign_deadline_monotonic(ts)
        for (stream_name, _), task in zip(model.sender_tasks.items(), ts):
            rt = preemptive_response_time(ts, task)
            out[stream_name] = rt.value
    else:
        for (stream_name, _), task in zip(model.sender_tasks.items(), ts):
            rt = edf_response_time(ts, task, preemptive=True)
            out[stream_name] = rt.value
    return out


def derive_stream_jitter(
    master: Master, model: TaskModel
) -> Master:
    """Return a copy of ``master`` whose streams carry the release
    jitter inherited from their sender tasks (``J = R_sender``).

    Streams without a sender task keep their configured jitter.  Raises
    when a sender is unschedulable (its response time is unbounded) —
    there is then no meaningful jitter bound to inherit.
    """
    responses = sender_response_times(model)
    new_streams = []
    for s in master.streams:
        if s.name in responses:
            r = responses[s.name]
            if r is None:
                raise ValueError(
                    f"sender task of stream {s.name!r} is unschedulable; "
                    "its response time cannot bound the release jitter"
                )
            new_streams.append(s.with_jitter(int(r)))
        else:
            new_streams.append(s)
    return master.with_streams(new_streams)
