"""Application-process level architecture (§4): release jitter inherited
from sender tasks and the end-to-end delay composition E = g+Q+C+d."""

from .end_to_end import EndToEndReport, EndToEndRow, end_to_end_analysis
from .jitter import TaskModel, derive_stream_jitter, sender_response_times

__all__ = [
    "EndToEndReport",
    "EndToEndRow",
    "TaskModel",
    "derive_stream_jitter",
    "end_to_end_analysis",
    "sender_response_times",
]
