"""End-to-end communication delay — §4.2 of the paper.

    E = g + Q + C + d

* ``g`` — worst-case *generation* delay: the sender task's response time
  up to queuing the request (this same value is the message's release
  jitter, §4.1);
* ``Q`` — worst-case queuing delay at the AP/stack queues, from the
  message analyses (eqs. (11)/(16)/(17): ``Q = R − Tcycle`` for the
  priority policies, ``R − Ch`` for FCFS);
* ``C`` — the message cycle itself (request + slave turnaround +
  response); inside ``R`` in our analyses, so ``Q + C = R`` with the
  priority policies' conservative ``C → Tcycle`` substitution;
* ``d`` — delivery delay: the receiving part of the task processing the
  response, bounded by its own response-time analysis.

Because messages inherit release jitter from tasks and the message
analyses consume that jitter, the composition is a small *holistic*
fixed point: task response times → jitter → message response times.
With sender and receiver on the same host (the PROFIBUS model), one
pass suffices — message response times do not feed back into sender
response times — so :func:`end_to_end_analysis` is a straight pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..profibus.network import Master, Network
from ..profibus.ttr import analyse
from .jitter import TaskModel, derive_stream_jitter, sender_response_times


@dataclass(frozen=True)
class EndToEndRow:
    """Per-stream breakdown of E = g + Q + C + d."""

    master: str
    stream: str
    g: Optional[int]
    #: Q + C together (the message worst-case response time R).
    qc: Optional[int]
    d: Optional[int]

    @property
    def total(self) -> Optional[int]:
        if self.g is None or self.qc is None or self.d is None:
            return None
        return self.g + self.qc + self.d


@dataclass(frozen=True)
class EndToEndReport:
    rows: List[EndToEndRow]
    policy: str
    tcycle: int

    def row(self, master: str, stream: str) -> EndToEndRow:
        for r in self.rows:
            if r.master == master and r.stream == stream:
                return r
        raise KeyError((master, stream))

    @property
    def all_bounded(self) -> bool:
        return all(r.total is not None for r in self.rows)


def end_to_end_analysis(
    network: Network,
    task_models: Dict[str, TaskModel],
    policy: str = "dm",
    delivery_delays: Optional[Dict[str, int]] = None,
    refined: bool = False,
) -> EndToEndReport:
    """Compose the full E = g + Q + C + d bound for every high-priority
    stream.

    ``task_models`` maps master name → :class:`TaskModel`; masters
    without a model keep their configured stream jitter and get
    ``g = J``.  ``delivery_delays`` maps ``"master/stream"`` → ``d``
    (default 0: response consumed in place).
    """
    delivery_delays = delivery_delays or {}

    # 1. inherit jitter from sender tasks
    new_masters = []
    g_of: Dict[str, Optional[int]] = {}
    for m in network.masters:
        model = task_models.get(m.name)
        if model is None:
            new_masters.append(m)
            for s in m.high_streams:
                g_of[f"{m.name}/{s.name}"] = s.J
            continue
        responses = sender_response_times(model)
        m2 = derive_stream_jitter(m, model)
        new_masters.append(m2)
        for s in m2.high_streams:
            g_of[f"{m.name}/{s.name}"] = (
                responses.get(s.name) if s.name in responses else s.J
            )
    jittered = Network(
        masters=tuple(new_masters),
        slaves=network.slaves,
        phy=network.phy,
        ttr=network.ttr,
    )

    # 2. message analysis with inherited jitter
    analysis = analyse(jittered, policy, refined=refined)

    # 3. compose
    rows = []
    for sr in analysis.per_stream:
        key = f"{sr.master}/{sr.stream.name}"
        rows.append(
            EndToEndRow(
                master=sr.master,
                stream=sr.stream.name,
                g=g_of.get(key, sr.stream.J),
                qc=sr.R,
                d=delivery_delays.get(key, 0),
            )
        )
    return EndToEndReport(rows=rows, policy=policy, tcycle=analysis.tcycle)
