"""Text and JSON reporters for lint results.

The JSON form is itself a frozen contract — schema
``profibus-rt/lint/v2`` (:data:`repro.schemas.LINT_SCHEMA`), documented
in ``PERF.md`` — so CI jobs and editor integrations can consume lint
output without scraping text.  v2 replaces v1 (one live version per
family, per the registry invariant): the rule list now spans both the
per-file and the flow rules, and a ``graph`` key carries the call-graph
summary (``null`` when the flow layer was skipped)::

    {
      "schema": "profibus-rt/lint/v2",
      "ok": false,
      "files": 74,
      "rules": [{"id": "REP001", "title": "exact-arithmetic",
                 "rationale": "..."}],
      "findings": [{"rule": "REP001", "path": "src/repro/profibus/dm.py",
                    "line": 12, "col": 8, "message": "..."}],
      "counts": {"findings": 1, "suppressed": 14, "baselined": 0},
      "graph": {"modules": 40, "functions": 310, "edges": 700,
                "unresolved": 420}
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..schemas import LINT_SCHEMA
from .engine import Finding, Rule


def report_doc(findings: Sequence[Finding], *, files: int,
               rules: Sequence[Any], suppressed: int,
               baselined: int,
               graph: Optional[Dict[str, int]] = None) -> Dict[str, Any]:
    """The schema-versioned report document."""
    return {
        "schema": LINT_SCHEMA,
        "ok": not findings,
        "files": files,
        "rules": [
            {"id": r.rule_id, "title": r.title, "rationale": r.rationale}
            for r in rules
        ],
        "findings": [f.to_doc() for f in
                     sorted(findings, key=Finding.sort_key)],
        "counts": {
            "findings": len(findings),
            "suppressed": suppressed,
            "baselined": baselined,
        },
        "graph": dict(graph) if graph is not None else None,
    }


def render_json(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_text(doc: Dict[str, Any]) -> str:
    """Human-oriented rendering of the same document."""
    lines: List[str] = []
    for f in doc["findings"]:
        lines.append(f"{f['path']}:{f['line']}:{f['col'] + 1}: "
                     f"{f['rule']} {f['message']}")
    counts = doc["counts"]
    tail = (f"lint: {counts['findings']} finding(s) in {doc['files']} "
            f"file(s)")
    extras = []
    if counts["suppressed"]:
        extras.append(f"{counts['suppressed']} suppressed inline")
    if counts["baselined"]:
        extras.append(f"{counts['baselined']} baselined")
    if extras:
        tail += f" ({', '.join(extras)})"
    lines.append(tail)
    return "\n".join(lines) + "\n"
