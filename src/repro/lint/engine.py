"""Single-pass AST visitor engine, rule registry, and suppressions.

One parse per file, one traversal per file: the engine walks the AST
exactly once and dispatches every node to each active rule's
``visit_<NodeType>`` handler.  While walking it maintains the scope
context rules need for more than pattern matching — the enclosing
class stack and a function-scope stack with the names bound locally in
each frame (and *how* they were bound: nested ``def``, ``lambda``
assignment, or anything else) — so rules like pickle-safety can tell a
module-level callable from a closure without a second pass.

Suppressions are inline comments, collected from the token stream (the
AST does not keep comments):

* ``# lint: disable=REP001`` on a line suppresses that rule for the
  findings anchored to that line;
* the same comment on a line of its own also covers the next
  non-comment line (for statements too long to share a line with an
  explanation);
* ``# lint: disable-file=REP001`` anywhere suppresses the rule for the
  whole file.

A comma list (``disable=REP001,REP004``) names several rules; text
after the rule list is the human justification and is encouraged —
the repo convention is ``# lint: disable=REPxxx — <reason>``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``# lint: disable=REP001,REP002 — reason`` / ``# lint: disable-file=...``
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(disable(?:-file)?)\s*=\s*([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)


def collect_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Parse the inline suppression comments out of one file's source.

    Returns ``(line -> rule ids, file-wide rule ids)``.  Shared by the
    per-file engine (:class:`FileContext`) and the whole-program flow
    layer (:mod:`repro.lint.flow`), so a ``# lint: disable=REPxxx``
    means the same thing to both.
    """
    line_suppressions: Dict[int, Set[str]] = {}
    file_suppressions: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return line_suppressions, file_suppressions
    code_lines: Set[int] = set()
    comments: List[Tuple[int, bool, str]] = []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            standalone = tok.line.lstrip().startswith("#")
            comments.append((tok.start[0], standalone, tok.string))
        elif tok.type not in (tokenize.NL, tokenize.NEWLINE,
                              tokenize.INDENT, tokenize.DEDENT,
                              tokenize.ENDMARKER):
            code_lines.add(tok.start[0])
    for line, standalone, text in comments:
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        rules = {r.strip() for r in m.group(2).split(",")}
        if m.group(1) == "disable-file":
            file_suppressions |= rules
            continue
        line_suppressions.setdefault(line, set()).update(rules)
        if standalone:
            nxt = min((ln for ln in code_lines if ln > line), default=None)
            if nxt is not None:
                line_suppressions.setdefault(nxt, set()).update(rules)
    return line_suppressions, file_suppressions


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_doc(self) -> Dict[str, Any]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-independent identity used by the baseline file: a
        finding survives unrelated edits that only shift it."""
        return (self.rule, self.path, self.message)


class Rule:
    """Base class every lint rule extends.

    Subclasses set :attr:`rule_id`/:attr:`title`/:attr:`rationale`,
    override :meth:`applies` to scope themselves to module paths, and
    implement ``visit_<NodeType>(ctx, node)`` handlers.  Per-file state
    belongs in :meth:`begin_file`; repo-level checks (cross-file
    resolution, registry coherence) go in :meth:`finalize`.
    """

    rule_id: str = "REP000"
    title: str = ""
    rationale: str = ""

    def applies(self, ctx: "FileContext") -> bool:
        return True

    def begin_file(self, ctx: "FileContext") -> None:
        pass

    def end_file(self, ctx: "FileContext") -> None:
        pass

    def enter_scope(self, ctx: "FileContext", node: ast.AST) -> None:
        pass

    def exit_scope(self, ctx: "FileContext", node: ast.AST) -> None:
        pass

    def finalize(self, project: "ProjectContext") -> Iterable[Finding]:
        return ()


@dataclass
class FunctionScope:
    """One function frame on the context stack: the node plus the names
    it binds locally, mapped to the binding kind (``'def'``,
    ``'lambda'``, or ``'other'``)."""

    node: ast.AST
    bindings: Dict[str, str] = field(default_factory=dict)


def _bind_target(target: ast.AST, kind: str, out: Dict[str, str]) -> None:
    if isinstance(target, ast.Name):
        out.setdefault(target.id, kind)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind_target(elt, kind, out)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, kind, out)


def local_bindings(fn: ast.AST) -> Dict[str, str]:
    """Names bound inside a function body (without descending into
    nested function/class bodies), mapped to their binding kind."""
    bindings: Dict[str, str] = {}
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        a = fn.args
        for arg in (list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
                    + ([a.vararg] if a.vararg else [])
                    + ([a.kwarg] if a.kwarg else [])):
            bindings.setdefault(arg.arg, "other")

    def scan(stmts: Sequence[ast.stmt]) -> None:
        for st in stmts:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bindings.setdefault(st.name, "def")
            elif isinstance(st, ast.ClassDef):
                bindings.setdefault(st.name, "other")
            elif isinstance(st, ast.Assign):
                kind = "lambda" if isinstance(st.value, ast.Lambda) else "other"
                for t in st.targets:
                    _bind_target(t, kind, bindings)
            elif isinstance(st, ast.AnnAssign) and st.value is not None:
                kind = "lambda" if isinstance(st.value, ast.Lambda) else "other"
                _bind_target(st.target, kind, bindings)
            elif isinstance(st, (ast.For, ast.AsyncFor)):
                _bind_target(st.target, "other", bindings)
                scan(st.body)
                scan(st.orelse)
            elif isinstance(st, (ast.With, ast.AsyncWith)):
                for item in st.items:
                    if item.optional_vars is not None:
                        _bind_target(item.optional_vars, "other", bindings)
                scan(st.body)
            elif isinstance(st, (ast.If, ast.While)):
                scan(st.body)
                scan(st.orelse)
            elif isinstance(st, ast.Try):
                scan(st.body)
                for handler in st.handlers:
                    if handler.name:
                        bindings.setdefault(handler.name, "other")
                    scan(handler.body)
                scan(st.orelse)
                scan(st.finalbody)
            elif isinstance(st, (ast.Import, ast.ImportFrom)):
                for alias in st.names:
                    name = alias.asname or alias.name.split(".")[0]
                    bindings.setdefault(name, "other")

    body = getattr(fn, "body", None)
    if isinstance(body, list):
        scan(body)
    return bindings


class FileContext:
    """Everything the rules can see about the file being linted."""

    def __init__(self, path: Path, display: str, source: str,
                 tree: ast.Module, project: "ProjectContext") -> None:
        self.path = path
        self.display = display
        self.source = source
        self.tree = tree
        self.project = project
        #: repro-relative module path, e.g. ``("profibus", "dm")`` for
        #: ``src/repro/profibus/dm.py`` (``None`` outside any ``repro``
        #: package dir).  Rules scope themselves on this.
        self.relmod: Optional[Tuple[str, ...]] = _relmod(path)
        self.class_stack: List[ast.ClassDef] = []
        self.func_stack: List[FunctionScope] = []
        self.findings: List[Finding] = []
        self.suppressed_count: int = 0
        self._line_suppressions, self._file_suppressions = \
            collect_suppressions(self.source)

    # -- suppressions --------------------------------------------------

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_suppressions:
            return True
        return rule_id in self._line_suppressions.get(line, set())

    # -- reporting -----------------------------------------------------

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.is_suppressed(rule_id, line):
            self.suppressed_count += 1
            return
        self.findings.append(Finding(rule=rule_id, path=self.display,
                                     line=line, col=col, message=message))


def _relmod(path: Path) -> Optional[Tuple[str, ...]]:
    parts = path.resolve().with_suffix("").parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rel = parts[i + 1:]
            return tuple(rel) if rel else ("__init__",)
    return None


class ProjectContext:
    """Repo-level context shared across files: the source root (the
    directory containing the ``repro`` package), lazily parsed module
    ASTs for cross-file resolution, and the set of linted files."""

    def __init__(self, files: Sequence[Path],
                 displays: Optional[Dict[Path, str]] = None) -> None:
        self.files = [p.resolve() for p in files]
        #: resolved path -> the path string the caller named it by, so
        #: finalize findings render consistently with per-file ones
        self.displays: Dict[Path, str] = displays or {}
        self.root: Optional[Path] = None
        for p in self.files:
            parts = p.parts
            for i in range(len(parts) - 1, -1, -1):
                if parts[i] == "repro":
                    self.root = Path(*parts[:i]) if i else Path(p.anchor)
                    break
            if self.root is not None:
                break
        self._ast_cache: Dict[str, Optional[Tuple[Path, ast.Module]]] = {}

    def module_path(self, dotted: str) -> Optional[Path]:
        """Filesystem path of a dotted module inside the linted tree."""
        if self.root is None:
            return None
        base = self.root.joinpath(*dotted.split("."))
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            if candidate.is_file():
                return candidate
        return None

    def module_ast(self, dotted: str) -> Optional[Tuple[Path, ast.Module]]:
        """Parse (and cache) a module of the linted tree by dotted path;
        ``None`` when the module does not exist or does not parse."""
        if dotted in self._ast_cache:
            return self._ast_cache[dotted]
        result: Optional[Tuple[Path, ast.Module]] = None
        path = self.module_path(dotted)
        if path is not None:
            try:
                result = (path, ast.parse(path.read_text()))
            except (OSError, SyntaxError):
                result = None
        self._ast_cache[dotted] = result
        return result

    def display_for(self, path: Path) -> str:
        return self.displays.get(path.resolve(), str(path))

    def doc_text(self, name: str) -> Optional[str]:
        """Contents of a repo-root document (e.g. ``PERF.md``), searched
        upward from the source root."""
        if self.root is None:
            return None
        for base in (self.root, *self.root.parents):
            candidate = base / name
            if candidate.is_file():
                try:
                    return candidate.read_text()
                except OSError:  # pragma: no cover
                    return None
        return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class LintEngine:
    """Drives the one-pass traversal: node dispatch plus scope upkeep."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)

    def lint_file(self, path: Path, display: str,
                  project: ProjectContext) -> Optional[FileContext]:
        """Parse and lint one file; ``None`` if it cannot be read."""
        try:
            source = path.read_text()
        except OSError:
            return None
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            ctx = FileContext(path, display, "", ast.Module(body=[],
                                                            type_ignores=[]),
                              project)
            ctx.findings.append(Finding(
                rule="REP000", path=display, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}"))
            return ctx
        ctx = FileContext(path, display, source, tree, project)
        active = [r for r in self.rules if r.applies(ctx)]
        if not active:
            return ctx
        for rule in active:
            rule.begin_file(ctx)
        self._walk(ctx, tree, active)
        for rule in active:
            rule.end_file(ctx)
        return ctx

    def _walk(self, ctx: FileContext, node: ast.AST,
              rules: Sequence[Rule]) -> None:
        name = type(node).__name__
        for rule in rules:
            handler = getattr(rule, "visit_" + name, None)
            if handler is not None:
                handler(ctx, node)
        if isinstance(node, _SCOPE_NODES):
            ctx.func_stack.append(FunctionScope(node, local_bindings(node)))
            for rule in rules:
                rule.enter_scope(ctx, node)
            for child in ast.iter_child_nodes(node):
                self._walk(ctx, child, rules)
            for rule in rules:
                rule.exit_scope(ctx, node)
            ctx.func_stack.pop()
        elif isinstance(node, ast.ClassDef):
            ctx.class_stack.append(node)
            for rule in rules:
                rule.enter_scope(ctx, node)
            for child in ast.iter_child_nodes(node):
                self._walk(ctx, child, rules)
            for rule in rules:
                rule.exit_scope(ctx, node)
            ctx.class_stack.pop()
        else:
            for child in ast.iter_child_nodes(node):
                self._walk(ctx, child, rules)
