"""Per-module symbol tables for the whole-program analysis layer.

The flow layer (:mod:`repro.lint.graph` / :mod:`repro.lint.flow`) needs
more than the per-file engine keeps: for every linted module it wants
the complete set of *callable definitions* (module-level functions,
class methods, nested functions), the module-level *name bindings*
(so a call to a bare name can be classified as def / class / import /
assignment / module-level lambda / nothing-at-all), and the *import
alias map* (so ``kernels.dm_master_response_times(...)`` resolves into
``repro.perf.kernels``).  This module builds exactly that, one
:class:`ModuleSymbols` per file, deterministically (AST order only —
no set iteration reaches the output).

Module naming follows the engine's convention: a file below a ``repro``
package directory is named ``repro.<subpath>`` (``src/repro/profibus/
dm.py`` -> ``repro.profibus.dm``), which makes fixture trees that
mirror the package layout resolve exactly like the shipped tree.  Files
outside any ``repro`` directory are named by their display path — they
can still *import* tree modules, they just cannot be imported by them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .engine import _relmod, collect_suppressions


@dataclass
class FunctionInfo:
    """One callable definition anywhere in a module."""

    qualname: str       #: globally unique: ``<module>.<local>``
    module: str         #: dotted module name (or display-path fallback)
    local: str          #: qualifier inside the module: ``f``, ``C.m``, ``f.g``
    node: ast.AST       #: the ``FunctionDef`` / ``AsyncFunctionDef``
    path: str           #: display path of the defining file
    line: int
    is_async: bool
    kind: str           #: ``function`` | ``method`` | ``nested``
    enclosing: Tuple[str, ...] = ()   #: local quals of enclosing functions
    class_name: Optional[str] = None  #: nearest enclosing class, if any


@dataclass
class ModuleSymbols:
    """Everything the call-graph builder knows about one module."""

    name: str
    path: Path
    display: str
    tree: ast.Module
    #: local qualifier -> definition (``f``, ``C.m``, ``f.g`` ...)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> names bound in the class body
    classes: Dict[str, Set[str]] = field(default_factory=dict)
    #: import alias -> dotted target (module or module.symbol)
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level name -> binding kind
    #: (``def`` | ``class`` | ``import`` | ``lambda`` | ``assign``)
    bindings: Dict[str, str] = field(default_factory=dict)
    suppress_lines: Dict[int, Set[str]] = field(default_factory=dict)
    suppress_file: Set[str] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.suppress_file:
            return True
        return rule_id in self.suppress_lines.get(line, set())


def module_name(path: Path, display: str) -> str:
    """Dotted module name for a file (display path outside ``repro``)."""
    rel = _relmod(path)
    if rel is None:
        return display
    if rel and rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(("repro",) + rel)


def _module_package(name: str) -> Tuple[str, ...]:
    """The package tuple relative imports resolve against (empty for
    display-path module names, which cannot import relatively)."""
    if not name.startswith("repro"):
        return ()
    return tuple(name.split(".")[:-1]) or ("repro",)


_STMT_CONTAINERS = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.With,
                    ast.AsyncWith, ast.Try)


def _iter_block_stmts(stmts):
    """Statements of a module/class body including conditional blocks
    (``try``/``if`` guarded imports and assignments still bind the
    name), without descending into function bodies."""
    for st in stmts:
        yield st
        if isinstance(st, _STMT_CONTAINERS):
            for attr in ("body", "orelse", "finalbody"):
                yield from _iter_block_stmts(getattr(st, attr, []) or [])
            for handler in getattr(st, "handlers", []):
                yield from _iter_block_stmts(handler.body)


def _bind_names(target: ast.AST, out: List[str]) -> None:
    if isinstance(target, ast.Name):
        out.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind_names(elt, out)
    elif isinstance(target, ast.Starred):
        _bind_names(target.value, out)


class _Collector:
    """Walks one module tree, registering every callable definition."""

    def __init__(self, mod: ModuleSymbols) -> None:
        self.mod = mod

    def collect(self) -> None:
        self._collect_toplevel()
        for st in self.mod.tree.body:
            self._descend(st, prefix=(), enclosing=(), class_name=None)

    # -- module-level bindings ----------------------------------------

    def _collect_toplevel(self) -> None:
        mod = self.mod
        package = _module_package(mod.name)
        for st in _iter_block_stmts(mod.tree.body):
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.bindings.setdefault(st.name, "def")
            elif isinstance(st, ast.ClassDef):
                mod.bindings.setdefault(st.name, "class")
            elif isinstance(st, ast.Assign):
                kind = ("lambda" if isinstance(st.value, ast.Lambda)
                        else "assign")
                names: List[str] = []
                for t in st.targets:
                    _bind_names(t, names)
                for n in names:
                    mod.bindings.setdefault(n, kind)
            elif isinstance(st, ast.AnnAssign):
                if isinstance(st.target, ast.Name) and st.value is not None:
                    kind = ("lambda" if isinstance(st.value, ast.Lambda)
                            else "assign")
                    mod.bindings.setdefault(st.target.id, kind)
            elif isinstance(st, ast.Import):
                for alias in st.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    mod.imports.setdefault(bound, target)
                    mod.bindings.setdefault(bound, "import")
            elif isinstance(st, ast.ImportFrom):
                if st.level:
                    if not package:
                        continue
                    base = package[:len(package) - (st.level - 1)]
                else:
                    base = ()
                base = base + tuple((st.module or "").split("."))
                base = tuple(p for p in base if p)
                for alias in st.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    mod.imports.setdefault(
                        bound, ".".join(base + (alias.name,)))
                    mod.bindings.setdefault(bound, "import")

    # -- callable definitions -----------------------------------------

    def _register(self, node, prefix: Tuple[str, ...],
                  enclosing: Tuple[str, ...],
                  class_name: Optional[str], kind: str) -> None:
        local = ".".join(prefix + (node.name,))
        mod = self.mod
        info = FunctionInfo(
            qualname=f"{mod.name}.{local}",
            module=mod.name,
            local=local,
            node=node,
            path=mod.display,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            kind=kind,
            enclosing=enclosing,
            class_name=class_name,
        )
        mod.functions.setdefault(local, info)

    def _descend(self, st: ast.stmt, prefix: Tuple[str, ...],
                 enclosing: Tuple[str, ...],
                 class_name: Optional[str]) -> None:
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
            kind = ("nested" if enclosing
                    else "method" if class_name else "function")
            self._register(st, prefix, enclosing, class_name, kind)
            local = ".".join(prefix + (st.name,))
            for child in st.body:
                self._descend(child, prefix + (st.name,),
                              enclosing + (local,), class_name)
        elif isinstance(st, ast.ClassDef):
            members: Set[str] = set()
            for member in st.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef,
                                       ast.ClassDef)):
                    members.add(member.name)
                elif isinstance(member, ast.Assign):
                    names: List[str] = []
                    for t in member.targets:
                        _bind_names(t, names)
                    members.update(names)
                elif (isinstance(member, ast.AnnAssign)
                        and isinstance(member.target, ast.Name)):
                    members.add(member.target.id)
            if not enclosing:  # nested-in-function classes stay local
                self.mod.classes.setdefault(
                    ".".join(prefix + (st.name,)), members)
            for child in st.body:
                self._descend(child, prefix + (st.name,), enclosing,
                              class_name=st.name)
        elif isinstance(st, _STMT_CONTAINERS):
            for attr in ("body", "orelse", "finalbody"):
                for child in getattr(st, attr, []) or []:
                    self._descend(child, prefix, enclosing, class_name)
            for handler in getattr(st, "handlers", []):
                for child in handler.body:
                    self._descend(child, prefix, enclosing, class_name)


def build_module_symbols(path: Path, display: str,
                         source: str, tree: ast.Module) -> ModuleSymbols:
    """The complete symbol table of one parsed module."""
    lines, file_wide = collect_suppressions(source)
    mod = ModuleSymbols(
        name=module_name(path, display),
        path=path,
        display=display,
        tree=tree,
        suppress_lines=lines,
        suppress_file=file_wide,
    )
    _Collector(mod).collect()
    return mod
