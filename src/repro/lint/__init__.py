"""`repro.lint` — AST-based static enforcement of the repo's contracts.

The test suite proves the bit-exactness, determinism, and schema
contracts *dynamically* — 798 tests, fuzz oracles, corpus mutants — but
a violation that no seeded workload happens to cross still ships.  This
package closes that gap with a **single-pass static analysis** that
runs in seconds on every commit, before any test:

=======  ==================  ===========================================
rule     title               invariant
=======  ==================  ===========================================
REP001   exact-arithmetic    no true division / float literals /
                             ``float()``/float ``math.*`` calls in the
                             kernel-critical modules
REP002   determinism         no module-level RNG, wall-clock, or
                             environment reads in the analysis core and
                             generators
REP003   schema-registry     every ``profibus-rt/<name>/v<k>`` literal
                             comes from :mod:`repro.schemas`; the
                             registry is coherent and documented
REP004   pickle-safety       pool-submitted callables are module-level
                             defs, not lambdas/closures
REP005   seam-integrity      every mutant seam in ``corpus/mutants.py``
                             still resolves to a live attribute
REP006   frozen-api          no attribute assignment to frozen
                             ``repro.api`` instances outside their
                             constructors
=======  ==================  ===========================================

Run it as ``repro-cli lint src/ [--format json|text] [--rules ...]
[--baseline FILE [--update-baseline]]``; exit code 0 = clean, 1 =
findings, 2 = usage error.  Per-line exceptions are recorded inline as
``# lint: disable=REPxxx — <reason>``.  Rule strength is proven the
same way the corpus proves mutant strength: ``tests/lint_fixtures/``
holds known-bad snippets every rule must flag, asserted in tier-1.
"""

from .engine import FileContext, Finding, LintEngine, ProjectContext, Rule
from .report import render_json, render_text, report_doc
from .rules import ALL_RULES, make_rules
from .runner import LintResult, LintUsageError, collect_files, run_lint

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintResult",
    "LintUsageError",
    "ProjectContext",
    "Rule",
    "collect_files",
    "make_rules",
    "render_json",
    "render_text",
    "report_doc",
    "run_lint",
]
