"""`repro.lint` — AST-based static enforcement of the repo's contracts.

The test suite proves the bit-exactness, determinism, and schema
contracts *dynamically* — 798 tests, fuzz oracles, corpus mutants — but
a violation that no seeded workload happens to cross still ships.  This
package closes that gap with a **single-pass static analysis** that
runs in seconds on every commit, before any test:

=======  ==================  ===========================================
rule     title               invariant
=======  ==================  ===========================================
REP001   exact-arithmetic    no true division / float literals /
                             ``float()``/float ``math.*`` calls in the
                             kernel-critical modules
REP002   determinism         no module-level RNG, wall-clock, or
                             environment reads in the analysis core and
                             generators
REP003   schema-registry     every ``profibus-rt/<name>/v<k>`` literal
                             comes from :mod:`repro.schemas`; the
                             registry is coherent and documented
REP004   pickle-safety       pool-submitted callables are module-level
                             defs, not lambdas/closures
REP005   seam-integrity      every mutant seam in ``corpus/mutants.py``
                             still resolves to a live attribute
REP006   frozen-api          no attribute assignment to frozen
                             ``repro.api`` instances outside their
                             constructors
=======  ==================  ===========================================

On top of the per-file pass, the **flow layer** (:mod:`~repro.lint.flow`,
on by default, ``--no-flow`` to skip) builds a whole-program call graph
(:mod:`~repro.lint.graph` over :mod:`~repro.lint.symbols`) and runs
fixed-point interprocedural passes:

=======  =====================  ========================================
rule     title                  invariant
=======  =====================  ========================================
REP010   float-taint            no kernel-critical module calls into a
                                function that transitively produces a
                                float (taint path printed hop by hop)
REP011   purity                 fingerprints, corpus goldens, and fuzz
                                families never transitively reach
                                unseeded RNG / wall-clock / environment
                                / global mutation
REP012   async-safety           no blocking call (pool drive, file IO,
                                ``time.sleep`` ...) reachable from a
                                ``repro.service`` coroutine without an
                                executor hop
REP013   pickle-reachability    everything a pool-submitted callable
                                transitively calls is importable by
                                name in a worker process
=======  =====================  ========================================

Run it as ``repro-cli lint src/ [--format json|text] [--rules ...]
[--baseline FILE [--update-baseline]] [--no-flow] [--dump-graph G.json]
[--changed-only [--base REF]] [--include-fixtures]``; exit code 0 =
clean, 1 = findings, 2 = usage error.  Per-line exceptions are recorded
inline as ``# lint: disable=REPxxx — <reason>``.  Rule strength is
proven the same way the corpus proves mutant strength:
``tests/lint_fixtures/`` holds known-bad snippets every rule must flag,
asserted in tier-1.
"""

from .engine import FileContext, Finding, LintEngine, ProjectContext, Rule
from .flow import FLOW_RULES, make_flow_rules, run_flow
from .graph import CallGraph, build_graph, graph_doc, render_graph
from .report import render_json, render_text, report_doc
from .rules import ALL_RULES, make_rules
from .runner import LintResult, LintUsageError, collect_files, run_lint
from .symbols import ModuleSymbols, build_module_symbols

__all__ = [
    "ALL_RULES",
    "CallGraph",
    "FLOW_RULES",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintResult",
    "LintUsageError",
    "ModuleSymbols",
    "ProjectContext",
    "Rule",
    "build_graph",
    "build_module_symbols",
    "collect_files",
    "graph_doc",
    "make_flow_rules",
    "make_rules",
    "render_graph",
    "render_json",
    "render_text",
    "report_doc",
    "run_lint",
]
