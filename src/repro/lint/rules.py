"""The domain rules (REP001–REP006).

Each rule statically enforces one invariant the test suite otherwise
only checks dynamically:

* **REP001 exact-arithmetic** — the kernel-critical modules compute in
  exact integer arithmetic; any true division, float literal,
  ``float()`` call or float-returning ``math.*`` call there risks the
  bit-exactness contract.  The deliberate float seams (the utilisation
  guards) carry inline ``# lint: disable=REP001 — <reason>`` markers.
* **REP002 determinism** — the analysis core and generators must be
  pure functions of their inputs: no module-level ``random.*`` RNG, no
  wall-clock reads, no environment reads.  RNGs are threaded as
  explicit ``random.Random`` parameters.
* **REP003 schema-registry** — every ``profibus-rt/<name>/v<k>``
  string literal must come from :mod:`repro.schemas`; the registry
  itself must be duplicate-free and documented in ``PERF.md``.
* **REP004 pickle-safety** — callables shipped to process pools
  (``pooled_map``/``pooled_imap``/executor ``submit``) must be
  module-level functions (or ``functools.partial`` of one); lambdas
  and closures only fail at runtime, and only with ``workers > 1``.
* **REP005 seam-integrity** — every mutant seam in
  ``corpus/mutants.py`` must resolve to an attribute that still exists,
  so a refactor cannot silently turn the mutation harness vacuous.
* **REP006 frozen-api** — :class:`repro.api.AnalysisRequest` /
  ``AnalysisResult`` instances are immutable value objects; attribute
  assignment (including ``object.__setattr__`` backdoors) outside
  their own constructors breaks value-keyed caching.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .engine import FileContext, Finding, ProjectContext, Rule

SCHEMA_LITERAL_RE = re.compile(
    r"profibus-rt/[a-z0-9][a-z0-9-]*(?:/[a-z0-9][a-z0-9-]*)*/v\d+")


# --------------------------------------------------------------- REP001

#: Integer-safe ``math`` functions the kernels may call.
_INT_SAFE_MATH = {"gcd", "lcm", "isqrt", "ceil", "floor", "comb", "perm",
                  "factorial", "prod"}

#: repro-relative module paths of the kernel-critical modules.
KERNEL_MODULES = {
    ("profibus", "dm"), ("profibus", "edf"), ("profibus", "fcfs"),
    ("profibus", "fp"), ("profibus", "cycle"), ("profibus", "ttr"),
    ("perf", "kernels"), ("perf", "vector"),
}


class ExactArithmeticRule(Rule):
    rule_id = "REP001"
    title = "exact-arithmetic"
    rationale = ("kernel-critical modules must stay in exact integer "
                 "arithmetic: floats round, and a rounded intermediate "
                 "breaks the bit-identical fast==generic==vectorized "
                 "contract")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.relmod in KERNEL_MODULES

    def visit_BinOp(self, ctx: FileContext, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div):
            ctx.report(self.rule_id, node,
                       "true division '/' in a kernel-critical module; "
                       "use '//' (or Fraction) to stay exact")

    def visit_AugAssign(self, ctx: FileContext, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Div):
            ctx.report(self.rule_id, node,
                       "true division '/=' in a kernel-critical module; "
                       "use '//=' (or Fraction) to stay exact")

    def visit_Constant(self, ctx: FileContext, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            ctx.report(self.rule_id, node,
                       f"float literal {node.value!r} in a kernel-critical "
                       "module")

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            ctx.report(self.rule_id, node,
                       "float() conversion in a kernel-critical module")
        elif (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "math"
                and func.attr not in _INT_SAFE_MATH):
            ctx.report(self.rule_id, node,
                       f"math.{func.attr}() returns a float; only "
                       f"integer-safe math calls ({', '.join(sorted(_INT_SAFE_MATH))}) "
                       "are allowed in kernel-critical modules")


# --------------------------------------------------------------- REP002

_WALLCLOCK_TIME = {"time", "time_ns", "monotonic", "monotonic_ns",
                   "perf_counter", "perf_counter_ns"}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class DeterminismRule(Rule):
    rule_id = "REP002"
    title = "determinism"
    rationale = ("the analysis core and generators are pure functions of "
                 "their inputs; hidden RNG state, wall clocks, and "
                 "environment reads make fingerprints, goldens, and fuzz "
                 "replay unreproducible")

    def applies(self, ctx: FileContext) -> bool:
        rm = ctx.relmod
        if rm is None:
            return False
        return (rm[0] in ("profibus", "gen")
                or rm == ("fuzz", "families"))

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if isinstance(value, ast.Name) and value.id == "random":
            if func.attr not in ("Random", "SystemRandom"):
                ctx.report(self.rule_id, node,
                           f"module-level RNG call random.{func.attr}(); "
                           "thread an explicit random.Random through the "
                           "call chain instead")
        elif (isinstance(value, ast.Name) and value.id == "time"
                and func.attr in _WALLCLOCK_TIME):
            ctx.report(self.rule_id, node,
                       f"wall-clock read time.{func.attr}() in deterministic "
                       "code; timestamps belong at the reporting boundary")
        elif (func.attr in _WALLCLOCK_DATETIME
                and _root_name(value) in ("datetime", "date")):
            ctx.report(self.rule_id, node,
                       f"wall-clock read {_root_name(value)}...{func.attr}() "
                       "in deterministic code; timestamps belong at the "
                       "reporting boundary")
        elif (isinstance(value, ast.Name) and value.id == "os"
                and func.attr == "getenv"):
            ctx.report(self.rule_id, node,
                       "os.getenv() read in deterministic code; "
                       "configuration must arrive as explicit parameters")

    def visit_Attribute(self, ctx: FileContext, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name) and node.value.id == "os"
                and node.attr == "environ"):
            ctx.report(self.rule_id, node,
                       "os.environ read in deterministic code; "
                       "configuration must arrive as explicit parameters")


# --------------------------------------------------------------- REP003

class SchemaRegistryRule(Rule):
    rule_id = "REP003"
    title = "schema-registry"
    rationale = ("every profibus-rt/<name>/v<k> tag is a frozen contract "
                 "defined once in repro.schemas; stray literals drift "
                 "silently when a version bumps")

    #: dotted path of the registry module inside the linted tree.
    REGISTRY_MODULE = "repro.schemas"

    def _registry(self, project: ProjectContext) -> Dict[str, str]:
        """constant name -> schema value, preferring the linted tree's
        own registry; falls back to the installed :mod:`repro.schemas`."""
        cached = getattr(project, "_rep003_registry", None)
        if cached is not None:
            return cached
        registry: Dict[str, str] = {}
        parsed = project.module_ast(self.REGISTRY_MODULE)
        if parsed is not None:
            _, tree = parsed
            for name, value, _line in self._registry_assignments(tree):
                registry[name] = value
        else:
            try:
                from .. import schemas as _schemas
                registry = dict(_schemas.SCHEMAS)
            except Exception:  # pragma: no cover - repro.schemas ships
                registry = {}
        project._rep003_registry = registry
        return registry

    @staticmethod
    def _registry_assignments(tree: ast.Module):
        for st in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(st, ast.Assign):
                targets, value = st.targets, st.value
            elif isinstance(st, ast.AnnAssign) and st.value is not None:
                targets, value = [st.target], st.value
            if (value is not None and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and SCHEMA_LITERAL_RE.fullmatch(value.value)):
                for t in targets:
                    if isinstance(t, ast.Name):
                        yield t.id, value.value, st.lineno

    def applies(self, ctx: FileContext) -> bool:
        # the registry module is the one place literals are allowed
        return ctx.relmod != ("schemas",)

    def visit_Constant(self, ctx: FileContext, node: ast.Constant) -> None:
        if not isinstance(node.value, str):
            return
        value = node.value
        if not SCHEMA_LITERAL_RE.fullmatch(value):
            return
        registry = self._registry(ctx.project)
        by_value = {v: n for n, v in registry.items()}
        if value in by_value:
            ctx.report(self.rule_id, node,
                       f"schema literal {value!r} duplicates registry "
                       f"constant repro.schemas.{by_value[value]}; import "
                       "the constant instead of restating the string")
            return
        family = value.rpartition("/")[0]
        families = {v.rpartition("/")[0]: v for v in registry.values()}
        if family in families:
            ctx.report(self.rule_id, node,
                       f"schema literal {value!r} diverges from the "
                       f"registered version {families[family]!r}; versions "
                       "move only in repro.schemas")
        else:
            ctx.report(self.rule_id, node,
                       f"unknown schema literal {value!r}: not in the "
                       "repro.schemas registry")

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        parsed = project.module_ast(self.REGISTRY_MODULE)
        if parsed is None:
            return
        path, tree = parsed
        if path.resolve() not in project.files:
            return  # registry not part of this lint run
        display = project.display_for(path)
        families: Dict[str, Tuple[str, str, int]] = {}
        entries = list(self._registry_assignments(tree))
        for name, value, line in entries:
            family = value.rpartition("/")[0]
            prior = families.get(family)
            if prior is not None and prior[1] != value:
                yield Finding(
                    rule=self.rule_id, path=display, line=line, col=0,
                    message=(f"registry constants {prior[0]} and {name} "
                             f"register family {family!r} at divergent "
                             f"versions ({prior[1]!r} vs {value!r})"))
            families.setdefault(family, (name, value, line))
        perf_md = project.doc_text("PERF.md")
        if perf_md is not None:
            for name, value, line in entries:
                if value not in perf_md:
                    yield Finding(
                        rule=self.rule_id, path=display, line=line, col=0,
                        message=(f"registry entry {name} = {value!r} is "
                                 "undocumented: PERF.md never mentions it"))


# --------------------------------------------------------------- REP004

_POOL_FUNCTIONS = {"pooled_map", "pooled_imap"}


class PickleSafetyRule(Rule):
    rule_id = "REP004"
    title = "pickle-safety"
    rationale = ("process-pool workers receive their callable by pickle; "
                 "lambdas and closures pass every workers=1 test and only "
                 "explode on a real pooled run")

    def _describe_unpicklable(self, ctx: FileContext,
                              expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Lambda):
            return "a lambda"
        if isinstance(expr, ast.Name):
            for scope in ctx.func_stack:
                kind = scope.bindings.get(expr.id)
                if kind == "def":
                    return f"the locally-defined function {expr.id!r}"
                if kind == "lambda":
                    return f"the local lambda {expr.id!r}"
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name == "partial" and expr.args:
                return self._describe_unpicklable(ctx, expr.args[0])
        return None

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        if name in _POOL_FUNCTIONS or name == "submit":
            if not node.args:
                return
            problem = self._describe_unpicklable(ctx, node.args[0])
            if problem is not None:
                ctx.report(self.rule_id, node,
                           f"{name}() is handed {problem}, which cannot "
                           "pickle to pool workers; hoist it to a "
                           "module-level def (functools.partial of one "
                           "is fine)")


# --------------------------------------------------------------- REP005

class SeamIntegrityRule(Rule):
    rule_id = "REP005"
    title = "seam-integrity"
    rationale = ("mutants patch module attributes by name; a renamed or "
                 "deleted seam would otherwise turn the mutation harness "
                 "vacuous without failing anything")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.relmod == ("corpus", "mutants")

    def begin_file(self, ctx: FileContext) -> None:
        # alias -> dotted module-ish path, gathered from every import in
        # the file (the mutant factories import inside their bodies)
        self._aliases: Dict[str, str] = {}
        if ctx.relmod is None:
            return
        package = ("repro",) + ctx.relmod[:-1]
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = \
                        alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package[:len(package) - (node.level - 1)]
                else:
                    base = ()
                base = base + tuple((node.module or "").split("."))
                base = tuple(p for p in base if p)
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self._aliases[bound] = ".".join(base + (alias.name,))

    @staticmethod
    def _toplevel_bindings(tree: ast.Module) -> Dict[str, ast.stmt]:
        out: Dict[str, ast.stmt] = {}
        for st in tree.body:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
                out.setdefault(st.name, st)
            elif isinstance(st, ast.Assign):
                for t in st.targets:
                    if isinstance(t, ast.Name):
                        out.setdefault(t.id, st)
            elif isinstance(st, ast.AnnAssign) and isinstance(st.target,
                                                              ast.Name):
                out.setdefault(st.target.id, st)
            elif isinstance(st, (ast.Import, ast.ImportFrom)):
                for alias in st.names:
                    out.setdefault(alias.asname or alias.name.split(".")[0],
                                   st)
        return out

    @staticmethod
    def _class_bindings(cls: ast.ClassDef) -> Set[str]:
        names: Set[str] = set()
        for st in cls.body:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(st.name)
            elif isinstance(st, ast.Assign):
                for t in st.targets:
                    if isinstance(t, ast.Name):
                        names.add(t.id)
            elif isinstance(st, ast.AnnAssign) and isinstance(st.target,
                                                              ast.Name):
                names.add(st.target.id)
        return names

    def _resolve_module(self, ctx: FileContext,
                        alias: str) -> Optional[Tuple[str, ast.Module]]:
        """The (dotted, AST) of the module an alias refers to."""
        dotted = self._aliases.get(alias)
        if dotted is None:
            return None
        parsed = ctx.project.module_ast(dotted)
        if parsed is not None:
            return dotted, parsed[1]
        return None

    def _check_seam(self, ctx: FileContext, call: ast.Call,
                    target: ast.AST, attr: str) -> None:
        if isinstance(target, ast.Name):
            resolved = self._resolve_module(ctx, target.id)
            if resolved is None:
                # the alias may be a class imported from a module
                dotted = self._aliases.get(target.id)
                if dotted and "." in dotted:
                    parent, _, leaf = dotted.rpartition(".")
                    parsed = ctx.project.module_ast(parent)
                    if parsed is not None:
                        binding = self._toplevel_bindings(parsed[1]).get(leaf)
                        if binding is None:
                            ctx.report(self.rule_id, call,
                                       f"mutant seam target {target.id!r} "
                                       f"({dotted}) no longer exists")
                        elif (isinstance(binding, ast.ClassDef)
                                and attr not in
                                self._class_bindings(binding)):
                            ctx.report(self.rule_id, call,
                                       f"mutant seam {dotted}.{attr} no "
                                       "longer exists on that class")
                        return
                ctx.report(self.rule_id, call,
                           f"mutant seam target {target.id!r} cannot be "
                           "statically resolved to a module of this tree")
                return
            dotted, tree = resolved
            if attr not in self._toplevel_bindings(tree):
                ctx.report(self.rule_id, call,
                           f"mutant seam {dotted}.{attr} no longer exists "
                           "— the mutant would patch a dead attribute and "
                           "silently stop mutating anything")
            return
        if isinstance(target, ast.Attribute) and isinstance(target.value,
                                                            ast.Name):
            resolved = self._resolve_module(ctx, target.value.id)
            if resolved is None:
                ctx.report(self.rule_id, call,
                           f"mutant seam target {target.value.id!r} cannot "
                           "be statically resolved to a module of this tree")
                return
            dotted, tree = resolved
            container = self._toplevel_bindings(tree).get(target.attr)
            if container is None:
                ctx.report(self.rule_id, call,
                           f"mutant seam container {dotted}.{target.attr} "
                           "no longer exists")
                return
            if isinstance(container, ast.ClassDef):
                if attr not in self._class_bindings(container):
                    ctx.report(self.rule_id, call,
                               f"mutant seam {dotted}.{target.attr}.{attr} "
                               "no longer exists on that class")
            elif (isinstance(container, ast.Assign)
                    and isinstance(container.value, ast.Dict)):
                keys = {k.value for k in container.value.keys
                        if isinstance(k, ast.Constant)
                        and isinstance(k.value, str)}
                # only judge dicts whose keys are all literal strings
                if (len(keys) == len(container.value.keys)
                        and attr not in keys):
                    ctx.report(self.rule_id, call,
                               f"mutant seam dict key {attr!r} is not a "
                               f"key of {dotted}.{target.attr}")

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        if name != "_patched":
            return
        for arg in node.args:
            if (isinstance(arg, ast.Tuple) and len(arg.elts) >= 3
                    and isinstance(arg.elts[1], ast.Constant)
                    and isinstance(arg.elts[1].value, str)):
                self._check_seam(ctx, node, arg.elts[0], arg.elts[1].value)


# --------------------------------------------------------------- REP006

_API_TYPES = {"AnalysisRequest", "AnalysisResult"}


class FrozenApiRule(Rule):
    rule_id = "REP006"
    title = "frozen-api"
    rationale = ("api request/result instances hash and cache by value; "
                 "mutating one after construction corrupts every "
                 "value-keyed cache and dedup structure holding it")

    def begin_file(self, ctx: FileContext) -> None:
        #: var name -> func-stack depth at which it was bound to an
        #: api instance (module level = 0)
        self._tracked: Dict[str, int] = {}

    def exit_scope(self, ctx: FileContext, node: ast.AST) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            return  # class scopes do not delimit tracked variables
        depth = len(ctx.func_stack)
        self._tracked = {name: d for name, d in self._tracked.items()
                         if d < depth}

    @staticmethod
    def _api_type_name(expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id in _API_TYPES:
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr in _API_TYPES:
            return expr.attr
        return None

    def _inside_api_class(self, ctx: FileContext) -> bool:
        return any(cls.name in _API_TYPES for cls in ctx.class_stack)

    def visit_Assign(self, ctx: FileContext, node: ast.Assign) -> None:
        depth = len(ctx.func_stack)
        if (isinstance(node.value, ast.Call)
                and self._api_type_name(node.value.func)):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    self._tracked[t.id] = depth
        for t in node.targets:
            if (isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id in self._tracked
                    and not self._inside_api_class(ctx)):
                ctx.report(self.rule_id, node,
                           f"attribute assignment to frozen api instance "
                           f"{t.value.id!r} ({t.value.id}.{t.attr} = ...); "
                           "build a new request/result instead")

    def visit_AnnAssign(self, ctx: FileContext, node: ast.AnnAssign) -> None:
        if (isinstance(node.target, ast.Name)
                and self._api_type_name(node.annotation)
                and not ctx.class_stack):
            self._tracked[node.target.id] = len(ctx.func_stack)

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if self._inside_api_class(ctx):
            return
        func = node.func
        is_object_setattr = (
            isinstance(func, ast.Attribute) and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object")
        is_plain_setattr = isinstance(func, ast.Name) and func.id == "setattr"
        if not (is_object_setattr or is_plain_setattr):
            return
        if (node.args and isinstance(node.args[0], ast.Name)
                and node.args[0].id in self._tracked):
            via = "object.__setattr__" if is_object_setattr else "setattr"
            ctx.report(self.rule_id, node,
                       f"{via}() on frozen api instance "
                       f"{node.args[0].id!r} outside its constructor; "
                       "frozen means frozen — build a new instance")


#: The rule registry, id -> class, in catalogue order.
ALL_RULES = {
    rule.rule_id: rule
    for rule in (ExactArithmeticRule, DeterminismRule, SchemaRegistryRule,
                 PickleSafetyRule, SeamIntegrityRule, FrozenApiRule)
}


def make_rules(rule_ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (default: all), validating ids."""
    if rule_ids is None:
        return [cls() for cls in ALL_RULES.values()]
    chosen = list(rule_ids)
    unknown = [r for r in chosen if r not in ALL_RULES]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {sorted(unknown)}; pick from "
            f"{sorted(ALL_RULES)}")
    return [ALL_RULES[r]() for r in chosen]
