"""JSONL baseline: adopt lint on a tree with known findings.

A baseline file freezes the *currently accepted* findings so the lint
gate can demand "no new findings" before the old ones are burned down.
One JSON object per line, keyed line-independently (rule, path,
message) so unrelated edits that shift code do not resurrect baselined
findings.  The committed tree carries **no** baseline — every accepted
exception is an inline ``# lint: disable=REPxxx — <reason>`` — but the
mechanism exists for downstream forks and for staging large rule
additions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple, Union

from .engine import Finding


def write_baseline(path: Union[str, Path],
                   findings: Sequence[Finding]) -> int:
    """Freeze the given findings; returns the number of rows written."""
    rows = sorted({f.baseline_key for f in findings})
    text = "".join(
        json.dumps({"rule": rule, "path": fpath, "message": message},
                   sort_keys=True) + "\n"
        for rule, fpath, message in rows
    )
    Path(path).write_text(text)
    return len(rows)


def load_baseline(path: Union[str, Path]) -> Set[Tuple[str, str, str]]:
    """The set of baselined finding keys; raises ``ValueError`` on a
    malformed file (a silently-ignored baseline would hide findings)."""
    keys: Set[Tuple[str, str, str]] = set()
    text = Path(path).read_text()
    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
            keys.add((doc["rule"], doc["path"], doc["message"]))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(f"bad baseline row at {path}:{n}: {exc}")
    return keys


def apply_baseline(
    findings: Sequence[Finding], keys: Set[Tuple[str, str, str]]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, number_baselined)."""
    fresh = [f for f in findings if f.baseline_key not in keys]
    return fresh, len(findings) - len(fresh)
