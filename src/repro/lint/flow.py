"""Interprocedural dataflow rules (REP010–REP013) over the call graph.

Where :mod:`repro.lint.rules` pattern-matches one file at a time, the
flow rules run **fixed-point passes over the whole-program call graph**
of :mod:`repro.lint.graph`: a property (float-taint, impurity,
blocking-ness) is seeded at the syntactic constructs that introduce it
and propagated caller-ward until nothing changes, then findings are
emitted at the *boundary call sites* where protected code first calls
into a marked function — with the full propagation path printed hop by
hop, so a finding is an explanation, not a flag.

* **REP010 float-taint** — a function outside the kernel-critical
  modules that contains a float source (float literal, true division,
  ``float()``, float-returning ``math.*``) or calls a float-tainted
  function is float-tainted; any call **from** a kernel-critical module
  into a tainted function is a finding.  (Float sources *inside* the
  kernel modules are REP001's jurisdiction — this rule closes the
  "helper in timing.py returns a float and dm.py calls it" hole.)
* **REP011 purity** — unseeded RNG construction, module-level
  ``random.*`` draws, wall-clock reads, ``os.environ`` access, and
  mutation of ``global`` names make a function impure, transitively
  through its callers.  Impure calls from the determinism-critical
  entry points — ``fingerprint()``, the corpus golden recorders, the
  fuzz family generators — are findings.  ``random.Random(seed)`` with
  an explicit seed stays pure, matching REP002.
* **REP012 async-safety** — blocking primitives (``pooled_map`` /
  ``pooled_imap``, ``submit(...).result()``, ``open()``, ``time.sleep``,
  ``socket.*`` / ``subprocess.*``) propagate through sync call chains;
  a blocking call reachable from an ``async def`` in ``repro.service``
  stalls the event loop and is a finding.  An executor hop
  (``run_in_executor(pool, fn, ...)`` / ``to_thread``) passes ``fn`` as
  a *reference*, not a call, so it correctly does not propagate.
* **REP013 pickle-reachability** — strengthens REP004 from "the
  submitted callable is a module-level def" to "everything the
  submitted callable transitively calls is importable by name in a
  worker process": a call to a name with no static module-level binding
  (bound only at runtime, e.g. via ``global`` from another function),
  a module-level-``lambda`` submission (pickles by qualname
  ``<lambda>`` and fails), and lambda/local-def ``partial`` *arguments*
  (which do cross the pickle boundary) are findings.

Suppressions reuse the engine's inline machinery: a ``# lint:
disable=REP01x — <reason>`` on the *seed* line disarms that source for
propagation, one on the *boundary call site* accepts that crossing.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .engine import Finding
from .graph import CallGraph, CallSite, iter_own_calls
from .rules import KERNEL_MODULES, _INT_SAFE_MATH, _POOL_FUNCTIONS
from .symbols import FunctionInfo

#: Dotted names of the kernel-critical modules (REP010's protected set).
KERNEL_MODULE_NAMES = frozenset(
    ".".join(("repro",) + rel) for rel in KERNEL_MODULES
)

_WALLCLOCK_TIME = {"time", "time_ns", "monotonic", "monotonic_ns",
                   "perf_counter", "perf_counter_ns"}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}


class FlowRule:
    """Base class of the dataflow rule families.

    Unlike the per-file :class:`~repro.lint.engine.Rule`, a flow rule
    sees the finished :class:`~repro.lint.graph.CallGraph` and returns
    ``(findings, suppressed_count)`` in one shot.
    """

    rule_id: str = "REP000"
    title: str = ""
    rationale: str = ""

    def run(self, graph: CallGraph) -> Tuple[List[Finding], int]:
        raise NotImplementedError


class _Emitter:
    """Finding construction with suppression accounting."""

    def __init__(self, graph: CallGraph, rule_id: str) -> None:
        self.graph = graph
        self.rule_id = rule_id
        self.findings: List[Finding] = []
        self.suppressed = 0
        self._seen: Set[Tuple[str, int, int]] = set()

    def emit(self, path: str, line: int, col: int, message: str) -> None:
        key = (path, line, col)
        if key in self._seen:
            return
        self._seen.add(key)
        if self.graph.suppressed(self.rule_id, path, line):
            self.suppressed += 1
            return
        self.findings.append(Finding(rule=self.rule_id, path=path,
                                     line=line, col=col, message=message))


# ------------------------------------------------------------ primitives

def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _scan_float_sources(fn: FunctionInfo) -> List[Tuple[int, int, str]]:
    """Syntactic float sources in a function body: ``(line, col, what)``."""
    out: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Constant) and isinstance(child.value,
                                                              float):
                out.append((child.lineno, child.col_offset,
                            f"float literal {child.value!r}"))
            elif isinstance(child, (ast.BinOp, ast.AugAssign)) and \
                    isinstance(child.op, ast.Div):
                out.append((child.lineno, child.col_offset,
                            "true division '/'"))
            elif isinstance(child, ast.Call):
                func = child.func
                if isinstance(func, ast.Name) and func.id == "float":
                    out.append((child.lineno, child.col_offset,
                                "float() conversion"))
                elif (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "math"
                        and func.attr not in _INT_SAFE_MATH):
                    out.append((child.lineno, child.col_offset,
                                f"float-returning math.{func.attr}()"))
            visit(child)

    visit(fn.node)
    return out


def _scan_impure_prims(fn: FunctionInfo) -> List[Tuple[int, int, str]]:
    """Impurity primitives in a function body: hidden nondeterminism
    (``random.Random(seed)`` with an explicit seed stays pure)."""
    out: List[Tuple[int, int, str]] = []
    global_names: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            global_names.update(node.names)

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Call):
                func = child.func
                if isinstance(func, ast.Attribute) and \
                        isinstance(func.value, ast.Name):
                    base = func.value.id
                    if base == "random":
                        if func.attr == "Random":
                            if not child.args:
                                out.append((child.lineno, child.col_offset,
                                            "unseeded random.Random()"))
                        elif func.attr == "SystemRandom":
                            out.append((child.lineno, child.col_offset,
                                        "random.SystemRandom()"))
                        else:
                            out.append((child.lineno, child.col_offset,
                                        f"module-level RNG "
                                        f"random.{func.attr}()"))
                    elif base == "time" and func.attr in _WALLCLOCK_TIME:
                        out.append((child.lineno, child.col_offset,
                                    f"wall-clock time.{func.attr}()"))
                    elif base == "os" and func.attr == "getenv":
                        out.append((child.lineno, child.col_offset,
                                    "os.getenv() read"))
                if isinstance(func, ast.Attribute) and \
                        func.attr in _WALLCLOCK_DATETIME and \
                        _root_name(func.value) in ("datetime", "date"):
                    out.append((child.lineno, child.col_offset,
                                f"wall-clock "
                                f"{_root_name(func.value)}...{func.attr}()"))
            elif isinstance(child, ast.Attribute):
                if isinstance(child.value, ast.Name) and \
                        child.value.id == "os" and child.attr == "environ":
                    out.append((child.lineno, child.col_offset,
                                "os.environ access"))
            elif isinstance(child, ast.Assign) and global_names:
                for t in child.targets:
                    if isinstance(t, ast.Name) and t.id in global_names:
                        out.append((child.lineno, child.col_offset,
                                    f"mutation of global {t.id!r}"))
            elif isinstance(child, ast.AugAssign) and global_names:
                if isinstance(child.target, ast.Name) and \
                        child.target.id in global_names:
                    out.append((child.lineno, child.col_offset,
                                f"mutation of global {child.target.id!r}"))
            visit(child)

    visit(fn.node)
    return out


_BLOCKING_ROOTS = {"socket", "subprocess"}


def _scan_blocking_prims(fn: FunctionInfo) -> List[Tuple[int, int, str]]:
    """Blocking primitives in a function body."""
    out: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Call):
                func = child.func
                name = _call_name(child)
                if name in _POOL_FUNCTIONS:
                    out.append((child.lineno, child.col_offset,
                                f"blocking pool drive {name}()"))
                elif name == "open" and isinstance(func, ast.Name):
                    out.append((child.lineno, child.col_offset,
                                "blocking file open()"))
                elif isinstance(func, ast.Attribute):
                    base = _root_name(func.value)
                    if base == "time" and func.attr == "sleep":
                        out.append((child.lineno, child.col_offset,
                                    "time.sleep()"))
                    elif base in _BLOCKING_ROOTS:
                        out.append((child.lineno, child.col_offset,
                                    f"blocking {base}.{func.attr}()"))
                    elif (func.attr == "result"
                            and isinstance(func.value, ast.Call)
                            and _call_name(func.value) == "submit"):
                        out.append((child.lineno, child.col_offset,
                                    "synchronous submit(...).result()"))
            visit(child)

    visit(fn.node)
    return out


# ----------------------------------------------------------- propagation

def propagate(
    graph: CallGraph,
    seeds: Dict[str, Tuple[int, int, str]],
) -> Dict[str, Tuple[Optional[CallSite], Tuple[int, int, str]]]:
    """Caller-ward fixed point: BFS from the seed functions over the
    reverse call edges.

    Returns ``marked``: qualname -> ``(witness_site, seed_prim)`` where
    ``witness_site`` is the call site through which the mark first
    reached the function (``None`` for a seed itself) — following
    witnesses callee-ward always terminates at a seed primitive, giving
    a deterministic, cycle-free explanation path.
    """
    marked: Dict[str, Tuple[Optional[CallSite], Tuple[int, int, str]]] = {}
    queue = deque()
    for qual in sorted(seeds):
        marked[qual] = (None, seeds[qual])
        queue.append(qual)
    while queue:
        current = queue.popleft()
        prim = marked[current][1]
        sites = sorted(graph.callers_of(current),
                       key=lambda s: (s.caller, s.line, s.col))
        for site in sites:
            if site.caller in marked:
                continue
            marked[site.caller] = (site, prim)
            queue.append(site.caller)
    return marked


def witness_path(
    graph: CallGraph,
    marked: Dict[str, Tuple[Optional[CallSite], Tuple[int, int, str]]],
    start: str,
) -> str:
    """Render the hop-by-hop path from ``start`` down to its seed
    primitive: every hop names the function and the call location."""
    hops: List[str] = []
    current = start
    guard = 0
    while True:
        witness, prim = marked[current]
        info = graph.function(current)
        where = f"{info.path}:{info.line}" if info is not None else "?"
        hops.append(f"{current} [{where}]")
        if witness is None:
            line, col, what = prim
            hops.append(f"{what} at {info.path}:{line}"
                        if info is not None else what)
            break
        nxt = witness.callee
        if nxt == current or guard > len(marked) + 1:  # pragma: no cover
            break
        current = nxt
        guard += 1
    return " -> ".join(hops)


# --------------------------------------------------------------- REP010

class FloatTaintRule(FlowRule):
    rule_id = "REP010"
    title = "float-taint"
    rationale = ("a float can enter the exact-arithmetic kernels through "
                 "a helper defined anywhere in the tree; interprocedural "
                 "taint closes the cross-module hole REP001's per-file "
                 "scope cannot see")

    def run(self, graph: CallGraph) -> Tuple[List[Finding], int]:
        emitter = _Emitter(graph, self.rule_id)
        seeds: Dict[str, Tuple[int, int, str]] = {}
        pre_suppressed = 0
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if fn.module in KERNEL_MODULE_NAMES:
                continue  # kernel-internal floats are REP001's business
            sources = _scan_float_sources(fn)
            live = []
            for line, col, what in sources:
                if graph.suppressed(self.rule_id, fn.path, line):
                    pre_suppressed += 1
                else:
                    live.append((line, col, what))
            if live:
                seeds[qualname] = live[0]
        marked = propagate(graph, seeds)
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if fn.module not in KERNEL_MODULE_NAMES:
                continue
            for site in sorted(graph.callees_of(qualname),
                               key=lambda s: (s.line, s.col, s.callee)):
                callee = graph.function(site.callee)
                if callee is None or site.callee not in marked:
                    continue
                if callee.module in KERNEL_MODULE_NAMES:
                    continue  # flagged at its own boundary crossing
                path = witness_path(graph, marked, site.callee)
                emitter.emit(
                    fn.path, site.line, site.col,
                    f"kernel-critical {qualname}() calls float-tainted "
                    f"{site.callee}(); taint path: {path}")
        return emitter.findings, emitter.suppressed + pre_suppressed


# --------------------------------------------------------------- REP011

#: Modules whose functions are determinism-critical entry points.
PURITY_ENTRY_MODULES = ("repro.corpus.golden", "repro.fuzz.families")


def _is_purity_entry(fn: FunctionInfo) -> bool:
    if fn.kind == "nested":
        return False
    if fn.module in PURITY_ENTRY_MODULES:
        return True
    # every fingerprint implementation, wherever it lives
    leaf = fn.local.rsplit(".", 1)[-1]
    return leaf == "fingerprint" or leaf.endswith("_fingerprint")


class PurityRule(FlowRule):
    rule_id = "REP011"
    title = "purity"
    rationale = ("fingerprints, corpus goldens, and fuzz families must be "
                 "pure functions of their inputs; a transitive wall-clock "
                 "read or hidden RNG makes recorded artifacts "
                 "unreproducible in ways no per-file check can spot")

    def run(self, graph: CallGraph) -> Tuple[List[Finding], int]:
        emitter = _Emitter(graph, self.rule_id)
        seeds: Dict[str, Tuple[int, int, str]] = {}
        pre_suppressed = 0
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            prims = _scan_impure_prims(fn)
            live = []
            for line, col, what in prims:
                if graph.suppressed(self.rule_id, fn.path, line):
                    pre_suppressed += 1
                else:
                    live.append((line, col, what))
            if live:
                seeds[qualname] = live[0]
        marked = propagate(graph, seeds)
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if not _is_purity_entry(fn):
                continue
            if qualname in seeds:
                line, col, what = seeds[qualname]
                emitter.emit(fn.path, line, col,
                             f"determinism-critical {qualname}() is "
                             f"impure: {what}")
                continue
            for site in sorted(graph.callees_of(qualname),
                               key=lambda s: (s.line, s.col, s.callee)):
                if site.callee not in marked:
                    continue
                path = witness_path(graph, marked, site.callee)
                emitter.emit(
                    fn.path, site.line, site.col,
                    f"determinism-critical {qualname}() calls impure "
                    f"{site.callee}(); impurity path: {path}")
        return emitter.findings, emitter.suppressed + pre_suppressed


# --------------------------------------------------------------- REP012

#: Async functions defined in these packages guard the event loop.
ASYNC_ENTRY_PREFIX = "repro.service"


class AsyncSafetyRule(FlowRule):
    rule_id = "REP012"
    title = "async-safety"
    rationale = ("one blocking call reached from a coroutine stalls every "
                 "client of the daemon's event loop; the blocking-ness of "
                 "a helper three calls down is invisible to per-file "
                 "linting")

    @staticmethod
    def _is_entry(fn: FunctionInfo) -> bool:
        return fn.is_async and (
            fn.module == ASYNC_ENTRY_PREFIX
            or fn.module.startswith(ASYNC_ENTRY_PREFIX + "."))

    def run(self, graph: CallGraph) -> Tuple[List[Finding], int]:
        emitter = _Emitter(graph, self.rule_id)
        seeds: Dict[str, Tuple[int, int, str]] = {}
        pre_suppressed = 0
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            prims = _scan_blocking_prims(fn)
            live = []
            for line, col, what in prims:
                if graph.suppressed(self.rule_id, fn.path, line):
                    pre_suppressed += 1
                else:
                    live.append((line, col, what))
            if live:
                seeds[qualname] = live[0]
        marked = propagate(graph, seeds)
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if not self._is_entry(fn):
                continue
            if qualname in seeds:
                line, col, what = seeds[qualname]
                emitter.emit(fn.path, line, col,
                             f"async {qualname}() blocks the event loop "
                             f"directly: {what}; hop it through an "
                             "executor (run_in_executor / to_thread)")
                continue
            for site in sorted(graph.callees_of(qualname),
                               key=lambda s: (s.line, s.col, s.callee)):
                callee = graph.function(site.callee)
                if site.callee not in marked:
                    continue
                if callee is not None and self._is_entry(callee):
                    continue  # flagged at its own frame
                path = witness_path(graph, marked, site.callee)
                emitter.emit(
                    fn.path, site.line, site.col,
                    f"async {qualname}() reaches a blocking call via "
                    f"{site.callee}() with no executor hop; blocking "
                    f"path: {path}")
        return emitter.findings, emitter.suppressed + pre_suppressed


# --------------------------------------------------------------- REP013

class PickleReachabilityRule(FlowRule):
    rule_id = "REP013"
    title = "pickle-reachability"
    rationale = ("REP004 proves the submitted callable is a module-level "
                 "def; workers additionally re-import everything that def "
                 "transitively calls, so a name bound only at runtime — "
                 "or a pickled lambda argument — still detonates on the "
                 "first real pooled run")

    def _submission_sites(self, graph: CallGraph):
        """Every pool-submission call in the tree, in deterministic
        order: ``(caller_info, call_node)``."""
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            for call in iter_own_calls(fn.node):
                name = _call_name(call)
                if name in _POOL_FUNCTIONS or name == "submit":
                    yield fn, call

    @staticmethod
    def _resolve_submitted(graph: CallGraph, fn: FunctionInfo,
                           expr: ast.AST) -> Tuple[Optional[str],
                                                   Optional[ast.Call]]:
        """The module-level qualname the submitted expression names
        (unwrapping ``partial``), plus the partial call if any."""
        partial_call: Optional[ast.Call] = None
        if isinstance(expr, ast.Call):
            func = expr.func
            pname = (func.id if isinstance(func, ast.Name)
                     else func.attr if isinstance(func, ast.Attribute)
                     else None)
            if pname == "partial" and expr.args:
                partial_call = expr
                expr = expr.args[0]
        mod = graph.by_display.get(fn.path)
        if mod is None or not isinstance(expr, ast.Name):
            return None, partial_call
        name = expr.id
        info = mod.functions.get(name)
        if info is not None and info.kind == "function":
            return info.qualname, partial_call
        target = mod.imports.get(name)
        if target is not None:
            parent, _, leaf = target.rpartition(".")
            parent_mod = graph.modules.get(parent)
            if parent_mod is not None:
                pinfo = parent_mod.functions.get(leaf)
                if pinfo is not None and pinfo.kind == "function":
                    return pinfo.qualname, partial_call
                if parent_mod.bindings.get(leaf) == "lambda":
                    return f"{parent}.{leaf}:lambda", partial_call
        if mod.bindings.get(name) == "lambda":
            return f"{mod.name}.{name}:lambda", partial_call
        return None, partial_call

    def run(self, graph: CallGraph) -> Tuple[List[Finding], int]:
        emitter = _Emitter(graph, self.rule_id)
        for fn, call in self._submission_sites(graph):
            if not call.args:
                continue
            qual, partial_call = self._resolve_submitted(graph, fn,
                                                         call.args[0])
            if partial_call is not None:
                for arg in list(partial_call.args[1:]) + [
                        kw.value for kw in partial_call.keywords]:
                    if isinstance(arg, ast.Lambda):
                        emitter.emit(
                            fn.path, call.lineno, call.col_offset,
                            "partial() argument is a lambda; it is "
                            "pickled with the submission and cannot "
                            "cross to a pool worker")
            if qual is None:
                continue  # REP004's jurisdiction (lambda/closure/unknown)
            if qual.endswith(":lambda"):
                emitter.emit(
                    fn.path, call.lineno, call.col_offset,
                    f"submitted callable {qual[:-7]} is a module-level "
                    "lambda; pickle serialises functions by qualname "
                    "('<lambda>') and a worker cannot re-import it")
                continue
            # transitive closure: every in-tree callee must itself call
            # only importable names
            seen: Set[str] = set()
            queue = deque([qual])
            chain: Dict[str, Tuple[str, int]] = {}
            while queue:
                current = queue.popleft()
                if current in seen:
                    continue
                seen.add(current)
                for miss in graph.unresolved.get(current, []):
                    if miss.category != "unknown":
                        continue
                    info = graph.function(current)
                    hops: List[str] = []
                    walk = current
                    while walk != qual and walk in chain:
                        parent, line = chain[walk]
                        hops.append(f"{walk} [{line}]")
                        walk = parent
                    hops.append(qual)
                    via = " <- ".join(hops)
                    where = (f"{info.path}:{miss.line}"
                             if info is not None else "?")
                    emitter.emit(
                        fn.path, call.lineno, call.col_offset,
                        f"pool-submitted {qual}() transitively calls "
                        f"{miss.name!r} at {where}, which has no "
                        "module-level binding a worker import would "
                        f"provide (reached via {via})")
                for site in sorted(graph.callees_of(current),
                                   key=lambda s: (s.line, s.col, s.callee)):
                    if site.callee not in seen:
                        chain.setdefault(site.callee,
                                         (current, site.line))
                        queue.append(site.callee)
        return emitter.findings, emitter.suppressed


#: The flow-rule registry, id -> class, in catalogue order.
FLOW_RULES = {
    rule.rule_id: rule
    for rule in (FloatTaintRule, PurityRule, AsyncSafetyRule,
                 PickleReachabilityRule)
}


def make_flow_rules(
    rule_ids: Optional[Iterable[str]] = None,
) -> List[FlowRule]:
    """Instantiate the requested flow rules (default: all)."""
    if rule_ids is None:
        return [cls() for cls in FLOW_RULES.values()]
    return [FLOW_RULES[r]() for r in rule_ids if r in FLOW_RULES]


def run_flow(
    graph: CallGraph,
    rules: Sequence[FlowRule],
) -> Tuple[List[Finding], int]:
    """Run the given flow rules over one graph."""
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        rule_findings, rule_suppressed = rule.run(graph)
        findings.extend(rule_findings)
        suppressed += rule_suppressed
    return findings, suppressed
