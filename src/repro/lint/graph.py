"""Deterministic project-wide import/call graph over the linted tree.

The graph is the substrate every flow rule runs on: nodes are the
callable definitions of :mod:`repro.lint.symbols`, edges are
AST-resolved call sites.  Resolution is deliberately *static and
honest* — a call is either resolved against the symbol tables (bare
names through local scopes, module bindings, and import aliases;
attribute chains through module aliases, ``self``, and
``module.Class.method`` paths) or it is **recorded as unresolved with a
category**, never silently dropped:

``local``
    the callee is a name bound inside an enclosing function (a
    parameter, a variable, a nested def the builder cannot prove);
``builtin``
    a Python builtin (``len``, ``print``, ``open`` ...);
``external``
    resolves through an import to a module outside the linted tree
    (``numpy``, the stdlib, an absent package);
``method``
    an attribute call whose receiver is an arbitrary object
    (``stream.cycle_bits(phy)``) — no type inference is attempted;
``unknown``
    a bare name with **no** binding anywhere: not local, not module
    level, not imported, not a builtin.  (These are what the
    REP013 pickle-reachability pass hunts inside pool-submitted
    closures: a name bound only at runtime cannot be imported by a
    worker.)

Everything is ordered by construction (files in the caller's sorted
order, AST order within a file), and :func:`graph_doc` re-sorts into a
canonical schema-versioned artifact (``profibus-rt/callgraph/v1``)
that is byte-identical across runs on the same tree — CI diffs two
dumps to pin that down.
"""

from __future__ import annotations

import ast
import builtins
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .engine import local_bindings
from .symbols import FunctionInfo, ModuleSymbols, build_module_symbols

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its source location."""

    caller: str   #: qualname of the calling function
    callee: str   #: qualname of the resolved target
    line: int
    col: int


@dataclass(frozen=True)
class UnresolvedCall:
    """One call the resolver could not (or will not) resolve."""

    caller: str
    name: str      #: textual callee (``len``, ``s.cycle_bits`` ...)
    category: str  #: ``local`` | ``builtin`` | ``external`` | ``method`` | ``unknown``
    line: int
    col: int


#: Marker qualname prefix for calls resolved to a *class* (constructor):
#: the edge goes to ``<module>.<Class>`` which has no function body.
class _Unresolved(Exception):
    def __init__(self, category: str) -> None:
        self.category = category


@dataclass
class CallGraph:
    """The whole-program call graph plus its symbol tables."""

    modules: Dict[str, ModuleSymbols] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    calls: Dict[str, List[CallSite]] = field(default_factory=dict)
    callers: Dict[str, List[CallSite]] = field(default_factory=dict)
    unresolved: Dict[str, List[UnresolvedCall]] = field(default_factory=dict)
    #: display path -> module, for suppression lookups on findings
    by_display: Dict[str, ModuleSymbols] = field(default_factory=dict)
    #: files that failed to read/parse, recorded — never silently dropped
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    def callees_of(self, qualname: str) -> List[CallSite]:
        return self.calls.get(qualname, [])

    def callers_of(self, qualname: str) -> List[CallSite]:
        return self.callers.get(qualname, [])

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def suppressed(self, rule_id: str, display: str, line: int) -> bool:
        mod = self.by_display.get(display)
        return mod is not None and mod.is_suppressed(rule_id, line)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class _Resolver:
    """Resolves call expressions of one function against the graph."""

    def __init__(self, graph: CallGraph, mod: ModuleSymbols,
                 fn: FunctionInfo) -> None:
        self.graph = graph
        self.mod = mod
        self.fn = fn
        # Local scope chain: enclosing functions outermost-first, then
        # the function itself.  A name bound in any frame shadows the
        # module scope.
        self._frames = []
        for local in fn.enclosing:
            outer = mod.functions.get(local)
            if outer is not None:
                self._frames.append(local_bindings(outer.node))
        self._frames.append(local_bindings(fn.node))

    def _local_kind(self, name: str) -> Optional[str]:
        for frame in reversed(self._frames):
            kind = frame.get(name)
            if kind is not None:
                return kind
        return None

    def _resolve_in_module(self, mod: ModuleSymbols,
                           parts: Sequence[str], depth: int = 0) -> str:
        """Resolve a 1- or 2-part path inside a module's symbols; the
        returned qualname may name a class (constructor edge)."""
        head = parts[0]
        if len(parts) == 1:
            if head in mod.functions:
                return mod.functions[head].qualname
            if head in mod.classes:
                init = f"{head}.__init__"
                if init in mod.functions:
                    return mod.functions[init].qualname
                return f"{mod.name}.{head}"
            kind = mod.bindings.get(head)
            if kind == "import":
                # one re-export hop (package __init__ facade style)
                target = mod.imports[head]
                return self._resolve_dotted(target.split("."),
                                            depth=depth + 1)
            if kind in ("lambda", "assign"):
                return f"{mod.name}.{head}"
            raise _Unresolved("external" if kind else "unknown")
        # Class.method (or deeper — resolve the first two hops only)
        local = ".".join(parts[:2])
        if local in mod.functions:
            return mod.functions[local].qualname
        if parts[0] in mod.classes and parts[1] in mod.classes[parts[0]]:
            return f"{mod.name}.{local}"
        raise _Unresolved("method")

    def _resolve_dotted(self, parts: Sequence[str], depth: int = 0) -> str:
        """Resolve a fully-dotted path against the tree's modules."""
        if depth > 4:  # re-export / import-cycle guard
            raise _Unresolved("external")
        modules = self.graph.modules
        # longest module prefix wins (repro.perf.kernels.f over repro.perf)
        for cut in range(len(parts) - 1, 0, -1):
            name = ".".join(parts[:cut])
            mod = modules.get(name)
            if mod is not None:
                rest = parts[cut:]
                try:
                    return self._resolve_in_module(mod, rest, depth=depth)
                except _Unresolved as exc:
                    if exc.category == "unknown":
                        # possibly a re-export the symbol table cannot
                        # see (e.g. injected namespace): not in-tree
                        raise _Unresolved("external")
                    raise
        raise _Unresolved("external")

    def resolve(self, call: ast.Call) -> Tuple[Optional[str],
                                               Optional[str], str]:
        """``(qualname, None, "")`` on success, else
        ``(None, textual_name, category)``."""
        func = call.func
        try:
            if isinstance(func, ast.Name):
                return self._resolve_name(func.id), None, ""
            if isinstance(func, ast.Attribute):
                return self._resolve_attribute(func), None, ""
        except _Unresolved as exc:
            chain = _attr_chain(func)
            text = ".".join(chain) if chain else ast.dump(func)[:40]
            return None, text, exc.category
        return None, type(func).__name__, "method"

    def _resolve_name(self, name: str) -> str:
        kind = self._local_kind(name)
        if kind is not None:
            if kind == "def":
                # a nested def visible from this scope
                for prefix in (self.fn.local, *reversed(self.fn.enclosing)):
                    candidate = f"{prefix}.{name}"
                    if candidate in self.mod.functions:
                        return self.mod.functions[candidate].qualname
            raise _Unresolved("local")
        try:
            return self._resolve_in_module(self.mod, (name,))
        except _Unresolved as exc:
            if exc.category == "unknown" and name in _BUILTIN_NAMES:
                raise _Unresolved("builtin")
            raise

    def _resolve_attribute(self, func: ast.Attribute) -> str:
        chain = _attr_chain(func)
        if chain is None:
            raise _Unresolved("method")
        head = chain[0]
        if head == "self" and self.fn.class_name is not None:
            local = f"{self.fn.class_name}.{chain[1]}"
            if local in self.mod.functions:
                return self.mod.functions[local].qualname
            members = self.mod.classes.get(self.fn.class_name, set())
            if chain[1] in members:
                return f"{self.mod.name}.{local}"
            raise _Unresolved("method")
        if self._local_kind(head) is not None:
            raise _Unresolved("method")
        target = self.mod.imports.get(head)
        if target is not None:
            return self._resolve_dotted(target.split(".") + chain[1:])
        if head in self.mod.classes:
            try:
                return self._resolve_in_module(self.mod, chain)
            except _Unresolved:
                raise _Unresolved("method")
        raise _Unresolved("method")


_SKIP_BODIES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def iter_own_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every ``Call`` in a function body, *excluding* nested def/class
    bodies (those are their own graph nodes) but including lambdas and
    comprehensions (which execute in this frame, conservatively)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SKIP_BODIES):
            continue
        if isinstance(child, ast.Call):
            yield child
        yield from iter_own_calls(child)


def build_graph(files: Sequence[Tuple[Path, str]]) -> CallGraph:
    """Build the whole-program graph over ``(path, display)`` files.

    Determinism: callers must pass files in a stable order (the runner
    passes its sorted collection); modules, functions, and edges then
    inherit AST order, and :func:`graph_doc` canonicalises the rest.
    """
    graph = CallGraph()
    symbol_tables: List[ModuleSymbols] = []
    for path, display in files:
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            graph.skipped.append((display, f"{type(exc).__name__}: {exc}"))
            continue
        mod = build_module_symbols(path, display, source, tree)
        if mod.name in graph.modules:
            # two files claiming one dotted name (e.g. sibling fixture
            # trees linted together): keep both, the later one keyed by
            # its unambiguous display path
            mod.name = display
            for info in mod.functions.values():
                info.qualname = f"{mod.name}.{info.local}"
                info.module = mod.name
        graph.modules[mod.name] = mod
        graph.by_display[display] = mod
        symbol_tables.append(mod)

    for mod in symbol_tables:
        for local in mod.functions:
            info = mod.functions[local]
            graph.functions[info.qualname] = info

    for mod in symbol_tables:
        for local in mod.functions:
            info = mod.functions[local]
            resolver = _Resolver(graph, mod, info)
            sites: List[CallSite] = []
            misses: List[UnresolvedCall] = []
            for call in iter_own_calls(info.node):
                qual, text, category = resolver.resolve(call)
                if qual is not None:
                    sites.append(CallSite(
                        caller=info.qualname, callee=qual,
                        line=call.lineno, col=call.col_offset))
                else:
                    misses.append(UnresolvedCall(
                        caller=info.qualname, name=text or "?",
                        category=category,
                        line=call.lineno, col=call.col_offset))
            if sites:
                graph.calls[info.qualname] = sites
                for site in sites:
                    graph.callers.setdefault(site.callee, []).append(site)
            if misses:
                graph.unresolved[info.qualname] = misses
    return graph


def graph_doc(graph: CallGraph, schema: str) -> Dict[str, Any]:
    """The canonical, schema-versioned call-graph document."""
    modules = []
    for name in sorted(graph.modules):
        mod = graph.modules[name]
        modules.append({
            "name": name,
            "path": mod.display,
            "imports": {alias: mod.imports[alias]
                        for alias in sorted(mod.imports)},
        })
    functions = []
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        calls = sorted(
            ({"callee": s.callee, "line": s.line, "col": s.col}
             for s in graph.calls.get(qualname, [])),
            key=lambda d: (d["line"], d["col"], d["callee"]),
        )
        unresolved = sorted(
            ({"name": u.name, "category": u.category,
              "line": u.line, "col": u.col}
             for u in graph.unresolved.get(qualname, [])),
            key=lambda d: (d["line"], d["col"], d["name"]),
        )
        functions.append({
            "qualname": qualname,
            "path": info.path,
            "line": info.line,
            "kind": info.kind,
            "async": info.is_async,
            "calls": calls,
            "unresolved": unresolved,
        })
    n_edges = sum(len(s) for s in graph.calls.values())
    n_unresolved = sum(len(u) for u in graph.unresolved.values())
    return {
        "schema": schema,
        "modules": modules,
        "functions": functions,
        "skipped": [{"path": p, "error": e}
                    for p, e in sorted(graph.skipped)],
        "counts": {
            "modules": len(modules),
            "functions": len(functions),
            "edges": n_edges,
            "unresolved": n_unresolved,
        },
    }


def render_graph(doc: Dict[str, Any]) -> str:
    """Canonical byte form of the artifact (sorted keys, 2-space
    indent, trailing newline) — two runs on the same tree are
    byte-identical."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
