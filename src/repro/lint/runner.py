"""File collection and orchestration for one lint run.

:func:`run_lint` is the single entrypoint both the CLI and the tests
use: collect ``.py`` files from the given paths (skipping the
known-bad ``lint_fixtures`` trees unless asked), optionally restrict
to git-changed files, run the per-file engine over each, run the flow
layer's whole-program passes over the call graph, apply the optional
baseline, and return a :class:`LintResult` the reporters render.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Union

from . import baseline as baseline_mod
from .engine import Finding, LintEngine, ProjectContext, Rule
from .flow import FLOW_RULES, make_flow_rules, run_flow
from .graph import build_graph, graph_doc, render_graph
from .report import report_doc
from .rules import ALL_RULES, make_rules


class LintUsageError(ValueError):
    """Bad invocation (unknown rule, missing path) — exit code 2."""


#: Directory name holding intentionally-bad trees, excluded from
#: default discovery (satellite: a bare ``repro-cli lint .`` must not
#: drown in them).
FIXTURE_DIR = "lint_fixtures"


@dataclass
class LintResult:
    findings: List[Finding]
    files: int
    rules: List[Rule]
    suppressed: int = 0
    baselined: int = 0
    flow_rules: List[Any] = field(default_factory=list)
    graph_stats: Optional[Dict[str, int]] = None
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_doc(self) -> Dict[str, Any]:
        return report_doc(self.findings, files=self.files,
                          rules=list(self.rules) + list(self.flow_rules),
                          suppressed=self.suppressed,
                          baselined=self.baselined,
                          graph=self.graph_stats)


def _inside_fixtures(p: Path, root: Path) -> bool:
    try:
        rel = p.relative_to(root)
    except ValueError:
        return False
    return FIXTURE_DIR in rel.parts


def collect_files(
    paths: Sequence[Union[str, Path]],
    *,
    include_fixtures: bool = False,
) -> List[Path]:
    """Expand the given files/directories into a sorted list of ``.py``
    files; a path that does not exist is a usage error.

    Files under a ``lint_fixtures`` directory *below* a given root are
    skipped unless ``include_fixtures`` — naming a fixture file or a
    directory inside ``lint_fixtures`` explicitly always keeps it (the
    kill-matrix tests lint fixture trees by pointing straight at them).
    """
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            keep_all = include_fixtures or FIXTURE_DIR in p.parts
            for q in sorted(q for q in p.rglob("*.py") if q.is_file()):
                if keep_all or not _inside_fixtures(q, p):
                    out.append(q)
        elif p.is_file():
            out.append(p)
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    # de-duplicate while keeping order (a file named twice lints once)
    seen = set()
    unique: List[Path] = []
    for p in out:
        key = p.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def _changed_files(anchor: Path, base: str) -> Optional[Set[Path]]:
    """Resolved paths of files changed vs ``base`` per git, or ``None``
    when ``anchor`` is not inside a usable git checkout."""
    probe = anchor if anchor.is_dir() else anchor.parent
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=probe, capture_output=True, text=True, timeout=30)
        if top.returncode != 0:
            return None
        root = Path(top.stdout.strip())
        diff = subprocess.run(
            ["git", "diff", "--name-only", base],
            cwd=root, capture_output=True, text=True, timeout=30)
        if diff.returncode != 0:
            return None
    except (OSError, subprocess.SubprocessError):
        return None
    return {(root / line).resolve()
            for line in diff.stdout.splitlines() if line.strip()}


def run_lint(
    paths: Sequence[Union[str, Path]],
    *,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Union[str, Path]] = None,
    update_baseline: bool = False,
    flow: bool = True,
    include_fixtures: bool = False,
    changed_only: bool = False,
    changed_base: str = "HEAD",
    dump_graph: Optional[Union[str, Path]] = None,
) -> LintResult:
    """Lint the given paths.

    ``baseline`` names a JSONL baseline file: with ``update_baseline``
    the current findings are frozen into it (and the run reports clean);
    otherwise, if the file exists, baselined findings are subtracted.

    ``flow`` (default on) additionally builds the whole-program call
    graph and runs the interprocedural REP010–REP013 passes;
    ``dump_graph`` writes the deterministic callgraph artifact and
    forces graph construction even under ``flow=False``.
    """
    if rule_ids is not None:
        known = set(ALL_RULES) | set(FLOW_RULES)
        unknown = [r for r in rule_ids if r not in known]
        if unknown:
            raise LintUsageError(
                f"unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})")
        syntactic_ids = [r for r in rule_ids if r in ALL_RULES]
        flow_ids: Optional[Sequence[str]] = \
            [r for r in rule_ids if r in FLOW_RULES]
    else:
        syntactic_ids = None
        flow_ids = None
    try:
        rules = make_rules(syntactic_ids)
    except ValueError as exc:
        raise LintUsageError(str(exc))
    flow_rules = make_flow_rules(flow_ids) if flow else []

    warnings: List[str] = []
    files = collect_files(paths, include_fixtures=include_fixtures)
    if changed_only and files:
        changed = _changed_files(Path(paths[0]), changed_base)
        if changed is None:
            warnings.append(
                "--changed-only: not a git checkout (or base "
                f"{changed_base!r} unusable); linting everything")
        else:
            files = [p for p in files if p.resolve() in changed]

    project = ProjectContext(files,
                             {p.resolve(): str(p) for p in files})
    engine = LintEngine(rules)

    findings: List[Finding] = []
    suppressed = 0
    linted = 0
    for path in files:
        ctx = engine.lint_file(path, str(path), project)
        if ctx is None:
            raise LintUsageError(f"cannot read {path}")
        linted += 1
        findings.extend(ctx.findings)
        suppressed += ctx.suppressed_count
    for rule in rules:
        findings.extend(rule.finalize(project))

    graph_stats: Optional[Dict[str, int]] = None
    if flow_rules or dump_graph is not None:
        graph = build_graph([(p, str(p)) for p in files])
        graph_stats = {
            "modules": len(graph.modules),
            "functions": len(graph.functions),
            "edges": sum(len(v) for v in graph.calls.values()),
            "unresolved": sum(len(v) for v in graph.unresolved.values()),
        }
        if flow_rules:
            flow_findings, flow_suppressed = run_flow(graph, flow_rules)
            findings.extend(flow_findings)
            suppressed += flow_suppressed
        if dump_graph is not None:
            from ..schemas import CALLGRAPH_SCHEMA
            Path(dump_graph).write_text(
                render_graph(graph_doc(graph, CALLGRAPH_SCHEMA)),
                encoding="utf-8")

    findings.sort(key=Finding.sort_key)

    baselined = 0
    if baseline is not None:
        if update_baseline:
            baseline_mod.write_baseline(baseline, findings)
            baselined = len(findings)
            findings = []
        elif Path(baseline).is_file():
            try:
                keys = baseline_mod.load_baseline(baseline)
            except ValueError as exc:
                raise LintUsageError(str(exc))
            findings, baselined = baseline_mod.apply_baseline(findings, keys)
    elif update_baseline:
        raise LintUsageError("--update-baseline needs --baseline FILE")

    return LintResult(findings=findings, files=linted, rules=rules,
                      suppressed=suppressed, baselined=baselined,
                      flow_rules=flow_rules, graph_stats=graph_stats,
                      warnings=warnings)
