"""File collection and orchestration for one lint run.

:func:`run_lint` is the single entrypoint both the CLI and the tests
use: collect ``.py`` files from the given paths, run the engine over
each, run every rule's repo-level ``finalize`` pass, apply the optional
baseline, and return a :class:`LintResult` the reporters render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from . import baseline as baseline_mod
from .engine import Finding, LintEngine, ProjectContext, Rule
from .report import report_doc
from .rules import make_rules


class LintUsageError(ValueError):
    """Bad invocation (unknown rule, missing path) — exit code 2."""


@dataclass
class LintResult:
    findings: List[Finding]
    files: int
    rules: List[Rule]
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_doc(self) -> Dict[str, Any]:
        return report_doc(self.findings, files=self.files, rules=self.rules,
                          suppressed=self.suppressed,
                          baselined=self.baselined)


def collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand the given files/directories into a sorted list of ``.py``
    files; a path that does not exist is a usage error."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(q for q in p.rglob("*.py") if q.is_file()))
        elif p.is_file():
            out.append(p)
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    # de-duplicate while keeping order (a file named twice lints once)
    seen = set()
    unique: List[Path] = []
    for p in out:
        key = p.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def run_lint(
    paths: Sequence[Union[str, Path]],
    *,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Union[str, Path]] = None,
    update_baseline: bool = False,
) -> LintResult:
    """Lint the given paths.

    ``baseline`` names a JSONL baseline file: with ``update_baseline``
    the current findings are frozen into it (and the run reports clean);
    otherwise, if the file exists, baselined findings are subtracted.
    """
    try:
        rules = make_rules(rule_ids)
    except ValueError as exc:
        raise LintUsageError(str(exc))
    files = collect_files(paths)
    project = ProjectContext(files,
                             {p.resolve(): str(p) for p in files})
    engine = LintEngine(rules)

    findings: List[Finding] = []
    suppressed = 0
    linted = 0
    for path in files:
        ctx = engine.lint_file(path, str(path), project)
        if ctx is None:
            raise LintUsageError(f"cannot read {path}")
        linted += 1
        findings.extend(ctx.findings)
        suppressed += ctx.suppressed_count
    for rule in rules:
        findings.extend(rule.finalize(project))
    findings.sort(key=Finding.sort_key)

    baselined = 0
    if baseline is not None:
        if update_baseline:
            baseline_mod.write_baseline(baseline, findings)
            baselined = len(findings)
            findings = []
        elif Path(baseline).is_file():
            try:
                keys = baseline_mod.load_baseline(baseline)
            except ValueError as exc:
                raise LintUsageError(str(exc))
            findings, baselined = baseline_mod.apply_baseline(findings, keys)
    elif update_baseline:
        raise LintUsageError("--update-baseline needs --baseline FILE")

    return LintResult(findings=findings, files=linted, rules=rules,
                      suppressed=suppressed, baselined=baselined)
