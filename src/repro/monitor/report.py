"""`MonitorReport` — the ``profibus-rt/monitor/v1`` document.

A monitoring snapshot is a :class:`~repro.sim.validate.ValidationReport`
(same rows, same verdict vocabulary — the offline and online checkers
must never disagree about what "sound" means) extended with per-master
token-rotation verdicts against the eq. 14 ``Tcycle`` bound.  The
serialised form is schema-tagged and round-trips losslessly through
:meth:`MonitorReport.to_dict` / :meth:`MonitorReport.from_dict`, so the
resident service and the follow-mode CLI can stream snapshots as JSON
lines.

:func:`validation_row_doc` is the single serialisation of a row — the
CI monitor-smoke job byte-compares offline :func:`validate_network`
rows against monitor rows through this one function, so the two paths
cannot drift apart in what they claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..schemas import MONITOR_SCHEMA
from ..sim.validate import (
    VERDICT_DEGRADED,
    VERDICT_INCOMPLETE,
    VERDICT_SOUND,
    VERDICT_UNSOUND,
    ValidationReport,
    ValidationRow,
)


def master_verdict(token_visits: int, max_trr: int, bound: int,
                   degraded: bool) -> str:
    """Verdict of one master's observed token rotation against the
    eq. 14 bound, with the same precedence as the row verdicts: an
    observed violation is conclusive even over degraded evidence;
    positive claims degrade; fewer than two visits measured no rotation
    at all (the first visit only seeds the timer)."""
    if max_trr > bound:
        return VERDICT_UNSOUND
    if degraded:
        return VERDICT_DEGRADED
    if token_visits < 2:
        return VERDICT_INCOMPLETE
    return VERDICT_SOUND


def validation_row_doc(row: ValidationRow) -> Dict[str, Any]:
    """The one serialised shape of a validation/monitor row — stored
    fields plus the derived verdict/tightness, in fixed key order."""
    return {
        "name": row.name,
        "bound": row.bound,
        "observed": row.observed,
        "completed": row.completed,
        "released": row.released,
        "unfinished": row.unfinished,
        "pending_age": row.pending_age,
        "missing": row.missing,
        "degraded": row.degraded,
        "effective_observed": row.effective_observed,
        "verdict": row.verdict,
        "tightness": row.tightness,
    }


def _row_from_doc(doc: Dict[str, Any]) -> ValidationRow:
    return ValidationRow(
        name=doc["name"],
        bound=doc["bound"],
        observed=doc["observed"],
        completed=doc["completed"],
        released=doc.get("released", 0),
        unfinished=doc.get("unfinished", 0),
        pending_age=doc.get("pending_age", 0),
        missing=doc.get("missing", False),
        degraded=doc.get("degraded", False),
    )


@dataclass(frozen=True)
class MonitorReport(ValidationReport):
    """One monitoring snapshot: validation rows over the reconstructed
    observations, plus per-master token-rotation checks."""

    #: master name -> {token_visits, max_trr, sum_trr, trr_bound,
    #: tightness, verdict}
    masters: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def all_clear(self) -> bool:
        """Every row *and* every master positively sound — the CLI's
        exit-0 condition (degraded/incomplete evidence is not a pass)."""
        return self.all_sound and all(
            m["verdict"] == VERDICT_SOUND for m in self.masters.values()
        )

    @property
    def degraded(self) -> bool:
        return bool(self.detail.get("truncated")) or any(
            r.degraded for r in self.rows
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": MONITOR_SCHEMA,
            "rows": [validation_row_doc(r) for r in self.rows],
            "masters": self.masters,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "MonitorReport":
        if doc.get("schema") != MONITOR_SCHEMA:
            raise ValueError(
                f"unsupported monitor schema {doc.get('schema')!r}; "
                f"this build speaks {MONITOR_SCHEMA}"
            )
        rows: List[ValidationRow] = [_row_from_doc(r) for r in doc["rows"]]
        return cls(
            rows=rows,
            detail=dict(doc.get("detail", {})),
            masters={k: dict(v) for k, v in doc.get("masters", {}).items()},
        )
