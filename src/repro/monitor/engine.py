"""Online bound checking: replay a frame log against the analytic bounds.

:class:`TraceMonitor` is the incremental core.  It runs the eq. 11/16/17
response-time analysis **once** at construction, then consumes
:class:`~repro.sim.trace.BusEvent` records one at a time — from a file,
a pipe, or a live ``stdin`` follow — reconstructing exactly the
statistics :func:`repro.sim.validate.validate_network` reads off the
in-process simulator:

* per-stream worst observed response (``release`` → matching
  ``cycle_end``, FIFO within a stream — exact for FCFS, and for DM/EDF
  at stack depth 1, where same-stream requests are served in release
  order),
* per-stream pending ages (a release with no matching cycle end by the
  horizon has already waited ``horizon − release``),
* per-master observed token-rotation times (consecutive
  ``token_arrival`` deltas; the first visit is skipped, mirroring
  :class:`~repro.sim.token.MasterStats`) against the eq. 14 ``Tcycle``
  bound.

Given the *same* network, policy and an untruncated native trace, a
:meth:`TraceMonitor.report` snapshot is **bit-identical** per row to the
in-process :class:`~repro.sim.validate.ValidationReport` — the CI
monitor-smoke job asserts exactly that.  Evidence problems do not crash
the monitor, they *degrade* it: a truncated trace or a cycle end that
cannot be paired with a release turns would-be ``sound`` rows into
``degraded`` ones (observed violations stay ``unsound`` — conclusive no
matter what was dropped).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from ..profibus.network import Network
from ..profibus.ttr import analyse
from ..sim.token import stream_key
from ..sim.trace import CYCLE_END, CYCLE_START, RELEASE, TOKEN_ARRIVAL, BusEvent
from ..sim.validate import ValidationRow
from .report import MonitorReport, master_verdict
from .trace_io import IngestedTrace


class _ObservedStream:
    """Reconstructed statistics of one stream (mirrors the fields of
    :class:`repro.sim.token.StreamStats` the validation layer reads)."""

    __slots__ = ("released", "completed", "max_response", "sum_response",
                 "pending", "unmatched_ends")

    def __init__(self) -> None:
        self.released = 0
        self.completed = 0
        self.max_response = 0
        self.sum_response = 0
        #: release times awaiting their cycle end, oldest first
        self.pending: Deque[int] = deque()
        #: cycle ends with no release to pair with — foreign-log evidence
        #: damage; any such stream can only be ``degraded`` or ``unsound``
        self.unmatched_ends = 0


class _ObservedMaster:
    """Reconstructed token statistics of one master (mirrors
    :class:`repro.sim.token.MasterStats`: the first visit seeds the
    rotation timer and is excluded from max/sum)."""

    __slots__ = ("token_visits", "max_trr", "sum_trr", "last_arrival")

    def __init__(self) -> None:
        self.token_visits = 0
        self.max_trr = 0
        self.sum_trr = 0
        self.last_arrival: Optional[int] = None


class TraceMonitor:
    """Incremental trace-vs-bounds checker for one network/policy pair.

    Feed events with :meth:`feed` / :meth:`feed_all`; take a snapshot at
    any point with :meth:`report` (non-destructive — a follow mode can
    keep feeding after every snapshot).
    """

    def __init__(
        self,
        network: Network,
        policy: str,
        refined: bool = False,
        stats_after: int = 0,
        source_format: str = "native",
    ) -> None:
        self.network = network
        self.policy = policy
        self.refined = refined
        #: ignore responses of releases before this time (bit times) —
        #: the same steady-state filter as ``TokenBusConfig.stats_after``
        self.stats_after = stats_after
        self.source_format = source_format
        self.analysis = analyse(network, policy, refined=refined)
        # Materialise a row slot for every analysed (high-priority)
        # stream up front: a stream the log never mentions must still
        # get a row (released=0 → sound/degraded), exactly as the
        # simulator materialises StreamStats for never-sent streams.
        self._streams: Dict[str, _ObservedStream] = {
            stream_key(sr.master, sr.stream.name): _ObservedStream()
            for sr in self.analysis.per_stream
        }
        self._masters: Dict[str, _ObservedMaster] = {
            m.name: _ObservedMaster() for m in network.masters
        }
        #: streams seen in the log but absent from the analysis (low
        #: priority, or foreign names) — reported, never row-checked
        self._unanalysed: Dict[str, int] = {}
        self._events = 0
        self._dropped = 0
        self._last_time: Optional[int] = None

    # ------------------------------------------------------------- feeding

    def feed(self, event: BusEvent) -> None:
        """Ingest one event (events must arrive in time order)."""
        self._events += 1
        self._last_time = event.time
        if event.kind == TOKEN_ARRIVAL:
            om = self._masters.get(event.master)
            if om is None:
                om = self._masters[event.master] = _ObservedMaster()
                self._unanalysed.setdefault(f"master:{event.master}", 0)
                self._unanalysed[f"master:{event.master}"] += 1
            om.token_visits += 1
            if om.last_arrival is not None:
                trr = event.time - om.last_arrival
                om.sum_trr += trr
                if trr > om.max_trr:
                    om.max_trr = trr
            om.last_arrival = event.time
            return
        if event.kind == CYCLE_START or not event.stream:
            # cycle starts carry no statistics (the response is measured
            # release → cycle END); stream-less ends are token/background
            # cycles with nothing to pair
            return
        key = stream_key(event.master, event.stream)
        obs = self._streams.get(key)
        if obs is None:
            # low-priority or foreign stream: tallied so the report can
            # say what the log contained, but no bound row exists
            self._unanalysed[key] = self._unanalysed.get(key, 0) + 1
            return
        if event.kind == RELEASE:
            obs.pending.append(event.time)
            if event.time >= self.stats_after:
                obs.released += 1
        elif event.kind == CYCLE_END:
            if obs.pending:
                release = obs.pending.popleft()
                if release >= self.stats_after:
                    response = event.time - release
                    obs.completed += 1
                    obs.sum_response += response
                    if response > obs.max_response:
                        obs.max_response = response
            else:
                obs.unmatched_ends += 1

    def feed_all(self, events: Iterable[BusEvent]) -> None:
        for event in events:
            self.feed(event)

    def note_dropped(self, count: int) -> None:
        """Record that the log lost ``count`` events (a recorder that hit
        its buffer cap) — every subsequent snapshot is degraded."""
        self._dropped += count

    # ----------------------------------------------------------- snapshots

    @property
    def degraded(self) -> bool:
        """Evidence damage that taints every would-be-sound row."""
        return self._dropped > 0

    @property
    def events_seen(self) -> int:
        return self._events

    def report(self, horizon: Optional[int] = None) -> MonitorReport:
        """Snapshot the reconstruction as a ``profibus-rt/monitor/v1``
        report.  ``horizon`` is the end of the observation window;
        defaults to the last event time seen (pending ages are measured
        against it).  Non-destructive: keep feeding afterwards."""
        if horizon is None:
            horizon = self._last_time if self._last_time is not None else 0
        trace_degraded = self.degraded
        rows: List[ValidationRow] = []
        total_unmatched = 0
        for sr in self.analysis.per_stream:
            key = stream_key(sr.master, sr.stream.name)
            obs = self._streams[key]
            total_unmatched += obs.unmatched_ends
            unfinished = 0
            max_pending_age = 0
            for release in obs.pending:
                if release < self.stats_after:
                    continue
                unfinished += 1
                age = horizon - release
                if age > max_pending_age:
                    max_pending_age = age
            rows.append(ValidationRow(
                name=key,
                bound=sr.R,
                observed=obs.max_response,
                completed=obs.completed,
                released=obs.released,
                unfinished=unfinished,
                pending_age=max_pending_age,
                missing=False,
                degraded=trace_degraded or obs.unmatched_ends > 0,
            ))
        masters = {}
        max_trr_observed = 0
        for name in sorted(self._masters):
            om = self._masters[name]
            if om.max_trr > max_trr_observed:
                max_trr_observed = om.max_trr
            masters[name] = {
                "token_visits": om.token_visits,
                "max_trr": om.max_trr,
                "sum_trr": om.sum_trr,
                "trr_bound": self.analysis.tcycle,
                "tightness": (om.max_trr / self.analysis.tcycle
                              if self.analysis.tcycle else None),
                "verdict": master_verdict(
                    token_visits=om.token_visits,
                    max_trr=om.max_trr,
                    bound=self.analysis.tcycle,
                    degraded=trace_degraded,
                ),
            }
        return MonitorReport(
            rows=rows,
            masters=masters,
            detail={
                "policy": self.policy,
                "refined": self.refined,
                "ttr": self.analysis.ttr,
                "tcycle_bound": self.analysis.tcycle,
                "horizon": horizon,
                "max_trr_observed": max_trr_observed,
                "events": self._events,
                "dropped": self._dropped,
                "truncated": self._dropped > 0,
                "source_format": self.source_format,
                "stats_after": self.stats_after,
                "unanalysed_streams": dict(sorted(self._unanalysed.items())),
                "unmatched_cycle_ends": total_unmatched,
            },
        )


def monitor_events(
    network: Network,
    events: Iterable[BusEvent],
    policy: str,
    refined: bool = False,
    stats_after: int = 0,
    horizon: Optional[int] = None,
    dropped: int = 0,
    source_format: str = "native",
) -> MonitorReport:
    """One-shot convenience: feed a whole event sequence, return the
    final snapshot."""
    mon = TraceMonitor(network, policy, refined=refined,
                       stats_after=stats_after, source_format=source_format)
    if dropped:
        mon.note_dropped(dropped)
    mon.feed_all(events)
    return mon.report(horizon=horizon)


def monitor_trace(
    network: Network,
    trace: IngestedTrace,
    policy: str,
    refined: bool = False,
    stats_after: int = 0,
    horizon: Optional[int] = None,
) -> MonitorReport:
    """One-shot convenience over an :class:`IngestedTrace` (carries its
    own horizon/dropped metadata; an explicit ``horizon`` wins)."""
    return monitor_events(
        network,
        trace.events,
        policy,
        refined=refined,
        stats_after=stats_after,
        horizon=horizon if horizon is not None else trace.horizon,
        dropped=trace.dropped,
        source_format=trace.source_format,
    )


def observed_worst_responses(events: Iterable[BusEvent]) -> Dict[str, int]:
    """Worst observed response per ``master/stream`` key, reconstructed
    from the raw event stream alone — no network, no analysis.  The
    ``trace-replay`` fuzz family uses this to reshape deadlines around
    what a recorded run actually did."""
    pending: Dict[str, Deque[int]] = {}
    worst: Dict[str, int] = {}
    for event in events:
        if not event.stream:
            continue
        key = stream_key(event.master, event.stream)
        if event.kind == RELEASE:
            pending.setdefault(key, deque()).append(event.time)
        elif event.kind == CYCLE_END:
            queue = pending.get(key)
            if queue:
                response = event.time - queue.popleft()
                if response > worst.get(key, 0):
                    worst[key] = response
    return worst
