"""`repro.monitor` — trace ingestion and online bound checking.

The paper's central claim is that the analytic response-time and
token-rotation bounds dominate whatever actually happens on the bus.
:mod:`repro.sim.validate` checks that claim against traffic our own
simulator produced; this package checks it against **recorded
reality**: timestamped frame logs, ingested in two formats

* the native :class:`repro.sim.trace.BusTrace` event stream exported
  as JSONL, and
* a simple external CSV/JSONL shape for foreign logs,

both schema-tagged ``profibus-rt/trace/v1``
(:mod:`repro.monitor.trace_io`).  The :class:`TraceMonitor` engine
consumes events *incrementally* — file, pipe, or live ``stdin`` —
reconstructs per-stream observed response times, per-master
token-rotation statistics and pending-request ages, and checks them
against the analytic bounds from the same analysis layer
:mod:`repro.api` serves.  Snapshots come out as schema-versioned
:class:`MonitorReport` documents (``profibus-rt/monitor/v1``) whose
rows reuse the verdict vocabulary of :mod:`repro.sim.validate` —
``sound`` / ``unsound`` / ``incomplete`` / ``missing`` — plus
``degraded`` for verdicts built over untrustworthy evidence (a
truncated trace, cycle ends that cannot be paired with a release).

Front ends: ``repro-cli monitor`` (file and stdin-follow modes), the
``monitor`` op of :mod:`repro.api` and the resident service, and the
``trace-replay`` fuzz family which feeds recorded reality back into
the differential oracles.
"""

from .engine import (
    TraceMonitor,
    monitor_events,
    monitor_trace,
    observed_worst_responses,
)
from .report import MonitorReport, master_verdict, validation_row_doc
from .trace_io import (
    IngestedTrace,
    TraceFormatError,
    event_from_doc,
    event_to_doc,
    read_trace,
    trace_doc,
    trace_from_doc,
    write_trace_jsonl,
)

__all__ = [
    "IngestedTrace",
    "MonitorReport",
    "TraceFormatError",
    "TraceMonitor",
    "event_from_doc",
    "event_to_doc",
    "master_verdict",
    "monitor_events",
    "monitor_trace",
    "observed_worst_responses",
    "read_trace",
    "trace_doc",
    "trace_from_doc",
    "validation_row_doc",
    "write_trace_jsonl",
]
