"""Trace ingestion and export: the ``profibus-rt/trace/v1`` formats.

One schema tag, three physical shapes, one in-memory form
(:class:`IngestedTrace`, a list of :class:`repro.sim.trace.BusEvent`
plus window metadata):

**Native JSONL** — what :func:`write_trace_jsonl` exports from a
:class:`~repro.sim.trace.BusTrace`: a header line carrying the schema
tag, the recording horizon and the dropped-event count, then one JSON
object per event::

    {"schema": "profibus-rt/trace/v1", "format": "native",
     "horizon": 200000, "dropped": 0}
    {"time": 0, "kind": "release", "master": "M1", "stream": "axis",
     "high_priority": true, "value": 0}
    ...

**External JSONL** — the same event objects without a header, for
foreign loggers that emit one frame per line.  ``time`` (int, bit
times), ``kind`` (the :data:`repro.sim.trace.EVENT_KINDS` vocabulary)
and ``master`` are required; ``stream`` / ``high_priority`` / ``value``
default.

**External CSV** — the same fields as columns, first row the header::

    time,kind,master,stream,high_priority,value
    0,release,M1,axis,1,0

Timestamps are **integers in bit times** — the exact-arithmetic
contract of the analysis layer extends to ingestion, so a foreign log
must be converted (not rounded here, silently) before checking.
Unknown kinds, unknown keys, and non-integer times are refused with
:class:`TraceFormatError` rather than guessed at.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Union

from ..schemas import TRACE_SCHEMA
from ..sim.trace import EVENT_KINDS, BusEvent, BusTrace

#: physical shapes a ``profibus-rt/trace/v1`` document can arrive in
FORMAT_NATIVE = "native"
FORMAT_JSONL = "external-jsonl"
FORMAT_CSV = "external-csv"
FORMATS = (FORMAT_NATIVE, FORMAT_JSONL, FORMAT_CSV)

_EVENT_KEYS = ("time", "kind", "master", "stream", "high_priority", "value")
_REQUIRED_KEYS = ("time", "kind", "master")


class TraceFormatError(ValueError):
    """A trace document/file the ingester refuses to guess about."""


@dataclass
class IngestedTrace:
    """One ingested frame log, whichever shape it arrived in."""

    events: List[BusEvent] = field(default_factory=list)
    #: end of the observation window (bit times); ``None`` when the log
    #: does not say — consumers fall back to the last event time
    horizon: Optional[int] = None
    #: events the recorder dropped after its buffer filled — nonzero
    #: means every verdict over this trace must be ``degraded``
    dropped: int = 0
    source_format: str = FORMAT_NATIVE

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def to_doc(self) -> Dict[str, Any]:
        """The transportable ``profibus-rt/trace/v1`` document (what the
        ``monitor`` op of :mod:`repro.api` carries)."""
        return {
            "schema": TRACE_SCHEMA,
            "format": self.source_format,
            "horizon": self.horizon,
            "dropped": self.dropped,
            "events": [event_to_doc(e) for e in self.events],
        }


# ------------------------------------------------------------- event docs

def event_to_doc(event: BusEvent) -> Dict[str, Any]:
    return {
        "time": event.time,
        "kind": event.kind,
        "master": event.master,
        "stream": event.stream,
        "high_priority": event.high_priority,
        "value": event.value,
    }


def _int_field(doc: Dict[str, Any], key: str, where: str) -> int:
    value = doc.get(key, 0)
    if isinstance(value, bool) or not isinstance(value, int):
        raise TraceFormatError(
            f"{where}: {key!r} must be an integer (bit times), "
            f"got {value!r} — convert foreign timestamps before ingesting"
        )
    return value


def event_from_doc(doc: Dict[str, Any], where: str = "trace event") -> BusEvent:
    if not isinstance(doc, dict):
        raise TraceFormatError(f"{where}: event must be a JSON object")
    unknown = set(doc) - set(_EVENT_KEYS)
    if unknown:
        raise TraceFormatError(
            f"{where}: unknown event key(s) {sorted(unknown)}; "
            f"allowed: {list(_EVENT_KEYS)}"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in doc]
    if missing:
        raise TraceFormatError(f"{where}: event missing key(s) {missing}")
    kind = doc["kind"]
    if kind not in EVENT_KINDS:
        raise TraceFormatError(
            f"{where}: unknown event kind {kind!r}; "
            f"vocabulary: {list(EVENT_KINDS)}"
        )
    master = doc["master"]
    if not isinstance(master, str) or not master:
        raise TraceFormatError(f"{where}: 'master' must be a non-empty string")
    stream = doc.get("stream", "")
    if not isinstance(stream, str):
        raise TraceFormatError(f"{where}: 'stream' must be a string")
    high = doc.get("high_priority", True)
    if not isinstance(high, bool):
        raise TraceFormatError(f"{where}: 'high_priority' must be a boolean")
    return BusEvent(
        time=_int_field(doc, "time", where),
        kind=kind,
        master=master,
        stream=stream,
        high_priority=high,
        value=_int_field(doc, "value", where),
    )


# ----------------------------------------------------------- whole documents

def trace_doc(
    trace: BusTrace,
    horizon: Optional[int] = None,
) -> Dict[str, Any]:
    """The ``profibus-rt/trace/v1`` document for a recorded
    :class:`BusTrace` (what the ``monitor`` op transports)."""
    return IngestedTrace(
        events=list(trace.events),
        horizon=horizon,
        dropped=trace.dropped,
        source_format=FORMAT_NATIVE,
    ).to_doc()


def trace_from_doc(doc: Dict[str, Any]) -> IngestedTrace:
    """Parse a transportable trace document (the inverse of
    :meth:`IngestedTrace.to_doc`)."""
    if not isinstance(doc, dict):
        raise TraceFormatError("trace must be a JSON object")
    if doc.get("schema") != TRACE_SCHEMA:
        raise TraceFormatError(
            f"unsupported trace schema {doc.get('schema')!r}; "
            f"this build speaks {TRACE_SCHEMA}"
        )
    allowed = {"schema", "format", "horizon", "dropped", "events"}
    unknown = set(doc) - allowed
    if unknown:
        raise TraceFormatError(
            f"unknown trace key(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    fmt = doc.get("format", FORMAT_NATIVE)
    if fmt not in FORMATS:
        raise TraceFormatError(
            f"unknown trace format {fmt!r}; pick from {list(FORMATS)}"
        )
    horizon = doc.get("horizon")
    if horizon is not None and (isinstance(horizon, bool)
                                or not isinstance(horizon, int)):
        raise TraceFormatError("trace 'horizon' must be an integer or null")
    dropped = doc.get("dropped", 0)
    if isinstance(dropped, bool) or not isinstance(dropped, int) or dropped < 0:
        raise TraceFormatError("trace 'dropped' must be a non-negative integer")
    events_doc = doc.get("events")
    if not isinstance(events_doc, list):
        raise TraceFormatError("trace 'events' must be a list")
    events = [
        event_from_doc(e, where=f"trace event #{i}")
        for i, e in enumerate(events_doc)
    ]
    return IngestedTrace(events=events, horizon=horizon, dropped=dropped,
                         source_format=fmt)


# ------------------------------------------------------------ native export

def write_trace_jsonl(
    trace: BusTrace,
    path: Union[str, Path, TextIO],
    horizon: Optional[int] = None,
) -> None:
    """Export a recorded :class:`BusTrace` as native JSONL: one header
    line (schema tag, horizon, dropped count), one line per event —
    deterministic key order, so two exports of the same run are
    byte-identical."""
    header = {
        "schema": TRACE_SCHEMA,
        "format": FORMAT_NATIVE,
        "horizon": horizon,
        "dropped": trace.dropped,
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    lines.extend(
        json.dumps(event_to_doc(e), sort_keys=True, separators=(",", ":"))
        for e in trace.events
    )
    text = "\n".join(lines) + "\n"
    if hasattr(path, "write"):
        path.write(text)
    else:
        Path(path).write_text(text)


# --------------------------------------------------------------- ingestion

def parse_header_line(line: str) -> Optional[Dict[str, Any]]:
    """The native header of a JSONL trace, or ``None`` when the line is
    an event (external logs have no header).  Raises on a header that
    names a schema this build does not speak."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"unparseable trace line: {exc}") from exc
    if not isinstance(doc, dict):
        raise TraceFormatError("trace line must be a JSON object")
    if "schema" not in doc:
        return None
    if doc["schema"] != TRACE_SCHEMA:
        raise TraceFormatError(
            f"unsupported trace schema {doc['schema']!r}; "
            f"this build speaks {TRACE_SCHEMA}"
        )
    horizon = doc.get("horizon")
    if horizon is not None and (isinstance(horizon, bool)
                                or not isinstance(horizon, int)):
        raise TraceFormatError("trace header 'horizon' must be int or null")
    dropped = doc.get("dropped", 0)
    if isinstance(dropped, bool) or not isinstance(dropped, int) or dropped < 0:
        raise TraceFormatError(
            "trace header 'dropped' must be a non-negative integer"
        )
    return {"horizon": horizon, "dropped": dropped,
            "format": doc.get("format", FORMAT_NATIVE)}


def parse_event_line(line: str, where: str = "trace line") -> BusEvent:
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{where}: unparseable: {exc}") from exc
    return event_from_doc(doc, where=where)


def _read_jsonl(lines: Iterable[str]) -> IngestedTrace:
    trace = IngestedTrace(source_format=FORMAT_JSONL)
    for i, raw in enumerate(lines):
        line = raw.strip()
        if not line:
            continue
        if i == 0:
            header = parse_header_line(line)
            if header is not None:
                trace.horizon = header["horizon"]
                trace.dropped = header["dropped"]
                trace.source_format = FORMAT_NATIVE
                continue
        trace.events.append(parse_event_line(line, where=f"trace line {i + 1}"))
    return trace


_CSV_BOOL = {"1": True, "0": False, "true": True, "false": False,
             "yes": True, "no": False}


def _read_csv(lines: Iterable[str]) -> IngestedTrace:
    reader = csv.DictReader(lines)
    if reader.fieldnames is None:
        raise TraceFormatError("empty CSV trace")
    fields = [f.strip() for f in reader.fieldnames]
    unknown = set(fields) - set(_EVENT_KEYS)
    if unknown:
        raise TraceFormatError(
            f"unknown CSV column(s) {sorted(unknown)}; "
            f"allowed: {list(_EVENT_KEYS)}"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in fields]
    if missing:
        raise TraceFormatError(f"CSV trace missing column(s) {missing}")
    trace = IngestedTrace(source_format=FORMAT_CSV)
    for i, row in enumerate(reader):
        where = f"CSV row {i + 2}"
        doc: Dict[str, Any] = {}
        for key, value in row.items():
            if value is None:
                raise TraceFormatError(f"{where}: short row")
            key = key.strip()
            value = value.strip()
            if key in ("time", "value"):
                try:
                    doc[key] = int(value)
                except ValueError:
                    raise TraceFormatError(
                        f"{where}: {key!r} must be an integer (bit times), "
                        f"got {value!r}"
                    )
            elif key == "high_priority":
                try:
                    doc[key] = _CSV_BOOL[value.lower()]
                except KeyError:
                    raise TraceFormatError(
                        f"{where}: 'high_priority' must be one of "
                        f"{sorted(_CSV_BOOL)}, got {value!r}"
                    )
            else:
                doc[key] = value
        trace.events.append(event_from_doc(doc, where=where))
    return trace


def _sniff_format(first_line: str) -> str:
    stripped = first_line.lstrip()
    if stripped.startswith("{"):
        return FORMAT_JSONL  # native vs external resolved by the header
    if "time" in stripped and "kind" in stripped and "," in stripped:
        return FORMAT_CSV
    raise TraceFormatError(
        "cannot auto-detect trace format: expected a JSON object line "
        "(JSONL) or a 'time,kind,master,...' CSV header"
    )


def read_trace(
    source: Union[str, Path, TextIO],
    fmt: str = "auto",
) -> IngestedTrace:
    """Ingest a trace file (or open text stream) in any of the
    ``profibus-rt/trace/v1`` shapes.  ``fmt`` is ``"auto"`` (sniff from
    the first line), ``"jsonl"`` (native or external JSONL), or
    ``"csv"``."""
    if fmt not in ("auto", "jsonl", "csv"):
        raise TraceFormatError(
            f"unknown ingest format {fmt!r}; pick from ['auto', 'jsonl', 'csv']"
        )
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text()
    lines = text.splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    if not lines:
        raise TraceFormatError("empty trace")
    if fmt == "auto":
        fmt = "csv" if _sniff_format(lines[0]) == FORMAT_CSV else "jsonl"
    if fmt == "csv":
        return _read_csv(lines)
    return _read_jsonl(lines)


def events_in_order(events: Sequence[BusEvent]) -> bool:
    """True when the event stream is non-decreasing in time — the order
    the monitor's incremental reconstruction assumes (real logs are;
    a shuffled foreign log must be sorted before ingestion)."""
    return all(a.time <= b.time for a, b in zip(events, events[1:]))


def csv_template() -> str:
    """A one-row example of the external CSV shape (for docs/tests)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_EVENT_KEYS)
    writer.writerow([0, "release", "M1", "axis", 1, 0])
    return buf.getvalue()
