"""PROFIBUS timed-token MAC simulator.

Implements the §3.1 token-passing pseudocode **verbatim** per master:

* on token arrival, ``TTH ← TTR − TRR`` (count-down), ``TRR`` restarts;
* if any high-priority message is pending, execute exactly **one** high
  priority message cycle unconditionally (the late-token allowance);
* while ``TTH > 0`` (tested at the *start* of each cycle) execute further
  high-priority cycles — once started, a cycle always completes (TTH
  overrun);
* then, while ``TTH > 0`` and no high-priority message was left pending
  when entering the phase, execute low-priority cycles (faithful to the
  listing: the low-priority loop does not re-check the high queue);
* pass the token (SD4 frame + tid2).

Each master's high-priority traffic flows through one of:

* ``"stock-fcfs"`` — the standard unbounded FCFS outgoing queue;
* ``"ap-dm"`` / ``"ap-edf"`` — the §4 architecture: a priority-ordered
  application-process queue feeding a :class:`~repro.sim.queues.StackQueue`
  of configurable depth (1 in the paper); the MAC transmits only what is
  staged in the stack.

The simulator records per-stream response times (release → end of
message cycle), deadline misses, real token-rotation times and TTH
overruns, which is everything E1–E4 need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..profibus.cycle import token_pass_time
from ..profibus.network import Master, Network
from .engine import PRIO_MAC, PRIO_RELEASE, Simulator
from .queues import FCFSQueue, Request, StackQueue, make_queue
from .traffic import ReleasePattern, TrafficConfig, synchronous_offsets


def stream_key(master_name: str, stream_name: str) -> str:
    """The ``"master/stream"`` key indexing :attr:`TokenBusResult.streams`
    — one definition shared with the validation layer, so analysis rows
    and simulation statistics cannot drift apart by key construction
    (a row whose key is nevertheless absent gets the ``missing`` verdict
    in :mod:`repro.sim.validate`)."""
    return f"{master_name}/{stream_name}"


@dataclass
class StreamStats:
    """Observed behaviour of one stream."""

    master: str
    name: str
    rel_deadline: int
    completed: int = 0
    missed: int = 0
    max_response: int = 0
    sum_response: int = 0
    #: requests released inside the horizon (same ``stats_after`` filter
    #: as ``completed``) — ``released > completed`` means work was still
    #: outstanding when the run ended
    released: int = 0
    #: requests still queued or in flight when the horizon was reached
    unfinished: int = 0
    #: age (horizon − release) of the oldest such request; its eventual
    #: response can only be larger, so validation counts it against the
    #: analytic bound instead of ignoring it
    max_pending_age: int = 0
    #: responses, kept only when the run asks for full traces
    responses: Optional[List[int]] = None

    @property
    def mean_response(self) -> float:
        return self.sum_response / self.completed if self.completed else 0.0

    def percentile(self, p: float) -> int:
        """p-th percentile of the recorded responses (needs
        ``trace_responses=True``); nearest-rank definition."""
        if self.responses is None:
            raise ValueError(
                "per-response data not recorded; run with trace_responses=True"
            )
        if not self.responses:
            raise ValueError("no responses recorded")
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        ordered = sorted(self.responses)
        import math

        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def record(self, response: int) -> None:
        self.completed += 1
        self.sum_response += response
        if response > self.max_response:
            self.max_response = response
        if response > self.rel_deadline:
            self.missed += 1
        if self.responses is not None:
            self.responses.append(response)

    def note_pending(self, age: int) -> None:
        """One request still outstanding at the horizon, released
        ``age`` bit times before it."""
        self.unfinished += 1
        if age > self.max_pending_age:
            self.max_pending_age = age


@dataclass
class MasterStats:
    """Observed MAC behaviour of one master."""

    name: str
    token_visits: int = 0
    max_trr: int = 0
    sum_trr: int = 0
    tth_overruns: int = 0
    max_overrun: int = 0
    high_sent: int = 0
    low_sent: int = 0
    gap_polls: int = 0
    max_pending_high: int = 0

    @property
    def mean_trr(self) -> float:
        return self.sum_trr / self.token_visits if self.token_visits else 0.0


@dataclass
class TokenBusResult:
    """Everything a run produced."""

    horizon: int
    streams: Dict[str, StreamStats]
    masters: Dict[str, MasterStats]
    events: int

    def stream(self, master: str, name: str) -> StreamStats:
        return self.streams[stream_key(master, name)]

    @property
    def any_miss(self) -> bool:
        return any(s.missed for s in self.streams.values())

    @property
    def max_trr(self) -> int:
        return max((m.max_trr for m in self.masters.values()), default=0)


class _MasterState:
    """Run-time state of one master station."""

    def __init__(self, master: Master, policy: str, stack_depth: int,
                 low_always_pending: Optional[int], trace: bool):
        self.master = master
        self.policy = policy
        self.low_always_pending = low_always_pending
        if policy == "stock-fcfs":
            self.ap_queue = None
            self.stack = None
            self.high_queue = FCFSQueue()
        elif policy in ("ap-dm", "ap-edf"):
            self.ap_queue = make_queue("dm" if policy == "ap-dm" else "edf")
            self.stack = StackQueue(depth=stack_depth)
            self.high_queue = None
        else:
            raise ValueError(f"unknown master policy {policy!r}")
        self.low_queue = FCFSQueue()
        #: request whose message cycle is on the wire right now — still
        #: pending if the horizon cuts the cycle short
        self.in_flight: Optional[Request] = None
        self.last_token_arrival = 0
        self.seen_token = False
        self.visits_since_gap = 0
        self.gap_poll_due = False
        self.stats = MasterStats(name=master.name)
        self.trace = trace

    # -- high-priority queue abstraction --------------------------------
    def enqueue_high(self, req: Request) -> None:
        if self.high_queue is not None:
            self.high_queue.push(req)
        else:
            self.ap_queue.push(req)
            self._refill_stack()
        pending = self.pending_high_count()
        if pending > self.stats.max_pending_high:
            self.stats.max_pending_high = pending

    def _refill_stack(self) -> None:
        while self.stack.free and self.ap_queue:
            self.stack.push(self.ap_queue.pop())

    def has_high(self) -> bool:
        if self.high_queue is not None:
            return bool(self.high_queue)
        return bool(self.stack)

    def pop_high(self) -> Request:
        if self.high_queue is not None:
            return self.high_queue.pop()
        return self.stack.pop()

    def high_cycle_done(self) -> None:
        """Called when a high-priority cycle completes (stack refill)."""
        if self.stack is not None:
            self._refill_stack()

    def pending_high_count(self) -> int:
        if self.high_queue is not None:
            return len(self.high_queue)
        return len(self.stack) + len(self.ap_queue)

    # -- low-priority ------------------------------------------------------
    def has_low(self) -> bool:
        return bool(self.low_queue) or self.low_always_pending is not None

    def pop_low(self) -> Optional[Request]:
        """A queued low request, or None for a synthetic background one."""
        if self.low_queue:
            return self.low_queue.pop()
        return None


@dataclass
class TokenBusConfig:
    """Simulation configuration.

    ``policies`` maps master name → ``"stock-fcfs" | "ap-dm" | "ap-edf"``
    (default ``default_policy`` for unlisted masters).
    ``low_always_pending`` maps master name → synthetic background
    low-priority cycle length (bit times) for masters that should always
    have low traffic ready — the overrun stressor of the paper's §3.3
    illustration.
    """

    policy: str = "stock-fcfs"
    policies: Dict[str, str] = field(default_factory=dict)
    stack_depth: int = 1
    low_always_pending: Dict[str, int] = field(default_factory=dict)
    trace_responses: bool = False
    #: Probability that a cycle suffers line errors and costs its full
    #: retry-inclusive worst case ``Ch``; otherwise it costs the nominal
    #: single-attempt time.  0 (default) = every cycle costs the
    #: worst-case ``Ch``, the deterministic setting the analyses assume.
    error_rate: float = 0.0
    #: Initialise each master's rotation timer as if a no-load rotation
    #: (one ring latency) just completed.  The paper's §3.1 pseudocode
    #: instead initialises ``TRR ← 0``, which grants the first token
    #: holder a full-TTR budget *unreduced by the ring latency* and lets
    #: the second rotation exceed the eq. (14) bound by up to the ring
    #: latency (a cold-start artefact; see DESIGN.md).  Real networks
    #: enter the ring through an initialisation phase the analysis does
    #: not model, so warm start is the faithful steady-state setting.
    warm_start: bool = True
    #: Optional :class:`repro.sim.trace.BusTrace` recording every token
    #: arrival and message cycle (see that module for the timeline view).
    tracer: Optional[object] = None
    #: Gap update factor G: every G-th token visit a master issues one
    #: FDL-Request-Status poll (worst case: unanswered), scheduled out of
    #: remaining token-holding time like low-priority traffic.  ``None``
    #: disables ring maintenance (the paper's model).
    gap_update_factor: Optional[int] = None
    #: Ignore responses of requests released before this time (bit
    #: times) — excludes the start-up transient from steady-state
    #: measurements.  Token/TRR statistics are unaffected.
    stats_after: int = 0
    seed: int = 0


def simulate_token_bus(
    network: Network,
    horizon: int,
    traffic: Optional[TrafficConfig] = None,
    config: Optional[TokenBusConfig] = None,
    ttr: Optional[int] = None,
) -> TokenBusResult:
    """Run the token-bus simulation until ``horizon`` (bit times)."""
    config = config or TokenBusConfig()
    traffic = traffic or synchronous_offsets(network, seed=config.seed)
    if ttr is None:
        ttr = network.require_ttr()
    phy = network.phy
    sim = Simulator()
    rng = random.Random(config.seed)

    states: List[_MasterState] = []
    for m in network.masters:
        policy = config.policies.get(m.name, config.policy)
        st = _MasterState(
            m,
            policy,
            config.stack_depth,
            config.low_always_pending.get(m.name),
            config.trace_responses,
        )
        if config.warm_start:
            st.last_token_arrival = -network.ring_latency()
        states.append(st)
    by_name = {st.master.name: st for st in states}

    stream_stats: Dict[str, StreamStats] = {}
    seq_counter = [0]

    def _stats_for(master: Master, stream) -> StreamStats:
        key = stream_key(master.name, stream.name)
        if key not in stream_stats:
            stream_stats[key] = StreamStats(
                master=master.name,
                name=stream.name,
                rel_deadline=stream.D,
                responses=[] if config.trace_responses else None,
            )
        return stream_stats[key]

    # --- schedule all releases lazily (one pending event per stream) ----
    def _schedule_releases(master: Master, stream) -> None:
        pattern = traffic.pattern_for(master.name, stream.name)
        it = pattern.releases(horizon)
        state = by_name[master.name]
        _stats_for(master, stream)  # materialise stats even if never sent

        def fire_next():
            try:
                t = next(it)
            except StopIteration:
                return
            def on_release(t=t):
                seq_counter[0] += 1
                req = Request(
                    stream_name=stream.name,
                    master=master.name,
                    release=t,
                    deadline=t + stream.D,
                    rel_deadline=stream.D,
                    cycle_bits=stream.cycle_bits(phy),
                    high_priority=stream.high_priority,
                    seq=seq_counter[0],
                )
                if t >= config.stats_after:
                    _stats_for(master, stream).released += 1
                if config.tracer is not None:
                    from .trace import RELEASE, BusEvent

                    config.tracer.record(BusEvent(
                        time=t, kind=RELEASE, master=master.name,
                        stream=stream.name,
                        high_priority=stream.high_priority,
                    ))
                if stream.high_priority:
                    state.enqueue_high(req)
                else:
                    state.low_queue.push(req)
                fire_next()
            sim.schedule(t, on_release, priority=PRIO_RELEASE)

        fire_next()

    for m in network.masters:
        for s in m.streams:
            _schedule_releases(m, s)

    token_pass = token_pass_time(phy)

    # --- the MAC state machine -----------------------------------------
    def cycle_length(req: Optional[Request], state: _MasterState) -> int:
        if req is None:
            # synthetic background low-priority cycle
            return state.low_always_pending
        if config.error_rate and rng.random() >= config.error_rate:
            # error-free cycle: nominal single attempt, if derivable
            stream = state.master.stream(req.stream_name)
            if stream.C_bits is None:
                from ..profibus.cycle import attempt_time

                return attempt_time(stream.spec, phy)
        return req.cycle_bits

    def on_token_arrival(idx: int) -> None:
        state = states[idx]
        now = sim.now
        trr = now - state.last_token_arrival
        state.last_token_arrival = now
        st = state.stats
        st.token_visits += 1
        if state.seen_token:
            st.sum_trr += trr
            if trr > st.max_trr:
                st.max_trr = trr
        state.seen_token = True
        if config.gap_update_factor:
            state.visits_since_gap += 1
            if state.visits_since_gap >= config.gap_update_factor:
                state.gap_poll_due = True
        if config.tracer is not None:
            from .trace import TOKEN_ARRIVAL, BusEvent

            config.tracer.record(BusEvent(
                time=now, kind=TOKEN_ARRIVAL, master=state.master.name,
                value=trr,
            ))
        tth = ttr - trr
        tth_expire = now + tth  # may be in the past (late token)
        serve(idx, tth_expire, phase="first_high")

    def serve(idx: int, tth_expire: int, phase: str) -> None:
        """One scheduling decision at sim.now; transmits or passes token."""
        state = states[idx]
        now = sim.now
        if phase == "first_high":
            if state.has_high():
                transmit(idx, tth_expire, state.pop_high(), "high_loop")
                return
            phase = "high_loop"
        if phase == "high_loop":
            if now < tth_expire and state.has_high():
                transmit(idx, tth_expire, state.pop_high(), "high_loop")
                return
            phase = "gap"
        if phase == "gap":
            if state.gap_poll_due and now < tth_expire:
                state.gap_poll_due = False
                state.visits_since_gap = 0
                state.stats.gap_polls += 1
                from ..profibus.gap import gap_cycle_bits

                dur = gap_cycle_bits(phy)
                done = now + dur
                if done > tth_expire > now:
                    state.stats.tth_overruns += 1
                    over = done - tth_expire
                    if over > state.stats.max_overrun:
                        state.stats.max_overrun = over
                sim.schedule(done, lambda: serve(idx, tth_expire, "low_loop"),
                             priority=PRIO_MAC)
                return
            phase = "low_loop"
        if phase == "low_loop":
            if now < tth_expire and state.has_low():
                req = state.pop_low()
                transmit(idx, tth_expire, req, "low_loop")
                return
        # pass the token
        nxt = (idx + 1) % len(states)
        sim.schedule(now + token_pass, lambda: on_token_arrival(nxt),
                     priority=PRIO_MAC)

    def transmit(idx: int, tth_expire: int, req: Optional[Request],
                 next_phase: str) -> None:
        state = states[idx]
        start = sim.now
        state.in_flight = req
        dur = cycle_length(req, state)
        done = start + dur
        if done > tth_expire > start:
            state.stats.tth_overruns += 1
            over = done - tth_expire
            if over > state.stats.max_overrun:
                state.stats.max_overrun = over
        if config.tracer is not None:
            from .trace import CYCLE_START, BusEvent

            config.tracer.record(BusEvent(
                time=start, kind=CYCLE_START, master=state.master.name,
                stream=req.stream_name if req else "",
                high_priority=req.high_priority if req else False,
                value=dur,
            ))

        def on_complete():
            state.in_flight = None
            if config.tracer is not None:
                from .trace import CYCLE_END, BusEvent

                config.tracer.record(BusEvent(
                    time=sim.now, kind=CYCLE_END, master=state.master.name,
                    stream=req.stream_name if req else "",
                    high_priority=req.high_priority if req else False,
                    value=dur,
                ))
            if req is not None:
                master = state.master
                stream = master.stream(req.stream_name)
                if req.release >= config.stats_after:
                    _stats_for(master, stream).record(sim.now - req.release)
                if req.high_priority:
                    state.stats.high_sent += 1
                    state.high_cycle_done()
                else:
                    state.stats.low_sent += 1
            else:
                state.stats.low_sent += 1
            serve(idx, tth_expire, next_phase)

        sim.schedule(done, on_complete, priority=PRIO_MAC)

    # token starts at master 0 at t=0
    sim.schedule(0, lambda: on_token_arrival(0), priority=PRIO_MAC)
    sim.run_until(horizon)

    # Account for work the horizon cut off: requests still queued (or on
    # the wire) never produced a response, but a validation layer that
    # ignored them would vacuously "pass" a network whose messages never
    # complete.  Record them with their age so bounds can be checked
    # against the response they are already guaranteed to exceed.
    def note_pending(req: Optional[Request]) -> None:
        if req is None or req.release < config.stats_after:
            return
        master = by_name[req.master].master
        _stats_for(master, master.stream(req.stream_name)).note_pending(
            horizon - req.release
        )

    for state in states:
        note_pending(state.in_flight)
        for queue in (state.high_queue, state.ap_queue, state.stack,
                      state.low_queue):
            if queue is not None:
                for req in queue.items():
                    note_pending(req)

    return TokenBusResult(
        horizon=horizon,
        streams=stream_stats,
        masters={st.master.name: st.stats for st in states},
        events=sim.events_fired,
    )
