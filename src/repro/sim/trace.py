"""Bus event tracing: what actually happened on the wire.

Attach a :class:`BusTrace` to a :class:`~repro.sim.token.TokenBusConfig`
and the simulator records every request release, token arrival, token
pass and message cycle.  Useful for debugging analyses, for the
examples, for the ASCII timeline renderer (:func:`render_timeline`)
which makes a token rotation visible at a glance::

    0        [M1 tok] (M1 high axis.....) [M2 tok] (M2 low bulk.......)

and — exported as JSONL through :mod:`repro.monitor.trace_io` — as the
native input of the trace monitoring mode (``repro-cli monitor``).

Events are plain tuples in time order; the trace is bounded
(``max_events``) so a runaway simulation cannot eat memory.  A full
trace does not fail silently: ``dropped`` counts the suffix that was
cut off, :attr:`BusTrace.truncated` flags it, the timeline annotates
it, and every monitoring/validation verdict built over a truncated
trace is *degraded* (see :mod:`repro.sim.validate`) instead of
confidently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: event kinds
TOKEN_ARRIVAL = "token_arrival"
CYCLE_START = "cycle_start"
CYCLE_END = "cycle_end"
RELEASE = "release"

#: the frozen event vocabulary of ``profibus-rt/trace/v1`` documents
EVENT_KINDS = (TOKEN_ARRIVAL, CYCLE_START, CYCLE_END, RELEASE)


@dataclass(frozen=True)
class BusEvent:
    """One observed bus event."""

    time: int
    kind: str  # TOKEN_ARRIVAL | CYCLE_START | CYCLE_END | RELEASE
    master: str
    #: stream name for message cycles and releases; "" for token events
    #: and synthetic background low-priority cycles.
    stream: str = ""
    high_priority: bool = True
    #: for TOKEN_ARRIVAL: the measured TRR; for CYCLE_*: the cycle length.
    value: int = 0


@dataclass
class BusTrace:
    """Recorder passed to the simulator via ``TokenBusConfig.tracer``."""

    max_events: int = 100_000
    events: List[BusEvent] = field(default_factory=list)
    dropped: int = 0

    def record(self, event: BusEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    @property
    def truncated(self) -> bool:
        """True when ``max_events`` was reached and a suffix of the run
        was dropped — every statistic below then covers only a window,
        and consumers must degrade their verdicts accordingly."""
        return self.dropped > 0

    # -- queries ----------------------------------------------------------
    def of_kind(self, kind: str) -> List[BusEvent]:
        return [e for e in self.events if e.kind == kind]

    def token_arrivals(self, master: Optional[str] = None) -> List[BusEvent]:
        return [
            e for e in self.of_kind(TOKEN_ARRIVAL)
            if master is None or e.master == master
        ]

    def releases(self, master: Optional[str] = None) -> List[BusEvent]:
        return [
            e for e in self.of_kind(RELEASE)
            if master is None or e.master == master
        ]

    def cycles(self, master: Optional[str] = None) -> List[Tuple[BusEvent, BusEvent]]:
        """Paired (start, end) message-cycle events, in time order.

        Pairing is **per master**: a ``CYCLE_END`` closes only the open
        ``CYCLE_START`` of the *same* master.  (A single shared open
        slot used to let master B's start overwrite master A's, and an
        end paired with whichever start happened to be open — mispairing
        interleaved multi-master traces and corrupting
        :meth:`bus_utilisation`.)  A start without an end — a cycle
        still on the wire when the horizon or the trace bound cut the
        recording — stays unpaired rather than stealing a later end.
        """
        out = []
        open_start: Dict[str, BusEvent] = {}
        for e in self.events:
            if master is not None and e.master != master:
                continue
            if e.kind == CYCLE_START:
                open_start[e.master] = e
            elif e.kind == CYCLE_END:
                start = open_start.pop(e.master, None)
                if start is not None:
                    out.append((start, e))
        return out

    def bus_utilisation(self) -> float:
        """Fraction of traced time spent inside message cycles.

        On a truncated trace (:attr:`truncated`) this covers only the
        recorded window — callers presenting it as a run statistic must
        surface the truncation (the CLI and the monitor both do).
        """
        if not self.events:
            return 0.0
        span = self.events[-1].time - self.events[0].time
        if span <= 0:
            return 0.0
        busy = sum(end.time - start.time for start, end in self.cycles())
        return busy / span


def render_timeline(
    trace: BusTrace,
    start: int = 0,
    end: Optional[int] = None,
    width: int = 100,
) -> str:
    """ASCII timeline of the trace window ``[start, end]``.

    One row per master; token arrivals are ``|``, high-priority cycles
    fill with ``#``, low-priority cycles with ``.``.  Cycles are paired
    over the *whole* trace and clamped to the window, so a cycle that
    straddles the window edge still renders its in-window part (the
    window filter used to drop the ``CYCLE_START``, losing the cycle
    entirely).  A truncated trace is annotated with its dropped count.
    """
    events = [e for e in trace.events if e.time >= start
              and (end is None or e.time <= end)]
    # pair on the full trace, then keep cycles overlapping the window —
    # including ones whose start (or start and end) fall outside it
    all_cycles = trace.cycles()
    if end is None:
        if events:
            end = events[-1].time
        elif all_cycles:
            end = max(e.time for _, e in all_cycles)
        else:
            return "(empty trace window)"
    window_cycles = [
        (s, e) for s, e in all_cycles if e.time >= start and s.time <= end
    ]
    if not events and not window_cycles:
        return "(empty trace window)"
    span = max(1, end - start)
    masters = sorted({e.master for e in events}
                     | {s.master for s, _ in window_cycles})
    rows = {m: [" "] * width for m in masters}

    def col(t: int) -> int:
        return min(width - 1, max(0, int((t - start) * width / span)))

    for ev in events:
        if ev.kind == TOKEN_ARRIVAL:
            rows[ev.master][col(ev.time)] = "|"
    for s, e in window_cycles:
        c0 = col(max(s.time, start))
        c1 = max(c0, col(min(e.time, end)))
        fill = "#" if s.high_priority else "."
        for i in range(c0, c1 + 1):
            if rows[s.master][i] == " ":
                rows[s.master][i] = fill
    label_w = max(len(m) for m in masters) + 1
    lines = [f"{'':<{label_w}}t={start} .. t={end}"]
    for m in masters:
        lines.append(f"{m:<{label_w}}" + "".join(rows[m]))
    lines.append(f"{'':<{label_w}}'|' token arrival, '#' high cycle, "
                 f"'.' low cycle")
    if trace.truncated:
        lines.append(f"{'':<{label_w}}(trace truncated: {trace.dropped} "
                     f"events dropped)")
    return "\n".join(lines)
