"""Bus event tracing: what actually happened on the wire.

Attach a :class:`BusTrace` to a :class:`~repro.sim.token.TokenBusConfig`
and the simulator records every token arrival, token pass and message
cycle.  Useful for debugging analyses, for the examples, and for the
ASCII timeline renderer (:func:`render_timeline`) which makes a token
rotation visible at a glance::

    0        [M1 tok] (M1 high axis.....) [M2 tok] (M2 low bulk.......)

Events are plain tuples in time order; the trace is bounded
(``max_events``) so a runaway simulation cannot eat memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: event kinds
TOKEN_ARRIVAL = "token_arrival"
CYCLE_START = "cycle_start"
CYCLE_END = "cycle_end"


@dataclass(frozen=True)
class BusEvent:
    """One observed bus event."""

    time: int
    kind: str  # TOKEN_ARRIVAL | CYCLE_START | CYCLE_END
    master: str
    #: stream name for message cycles; "" for token events and synthetic
    #: background low-priority cycles.
    stream: str = ""
    high_priority: bool = True
    #: for TOKEN_ARRIVAL: the measured TRR; for CYCLE_*: the cycle length.
    value: int = 0


@dataclass
class BusTrace:
    """Recorder passed to the simulator via ``TokenBusConfig.tracer``."""

    max_events: int = 100_000
    events: List[BusEvent] = field(default_factory=list)
    dropped: int = 0

    def record(self, event: BusEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # -- queries ----------------------------------------------------------
    def of_kind(self, kind: str) -> List[BusEvent]:
        return [e for e in self.events if e.kind == kind]

    def token_arrivals(self, master: Optional[str] = None) -> List[BusEvent]:
        return [
            e for e in self.of_kind(TOKEN_ARRIVAL)
            if master is None or e.master == master
        ]

    def cycles(self, master: Optional[str] = None) -> List[Tuple[BusEvent, BusEvent]]:
        """Paired (start, end) message-cycle events, in time order."""
        out = []
        open_start: Optional[BusEvent] = None
        for e in self.events:
            if e.kind == CYCLE_START and (master is None or e.master == master):
                open_start = e
            elif e.kind == CYCLE_END and open_start is not None and (
                master is None or e.master == master
            ):
                out.append((open_start, e))
                open_start = None
        return out

    def bus_utilisation(self) -> float:
        """Fraction of traced time spent inside message cycles."""
        if not self.events:
            return 0.0
        span = self.events[-1].time - self.events[0].time
        if span <= 0:
            return 0.0
        busy = sum(end.time - start.time for start, end in self.cycles())
        return busy / span


def render_timeline(
    trace: BusTrace,
    start: int = 0,
    end: Optional[int] = None,
    width: int = 100,
) -> str:
    """ASCII timeline of the trace window ``[start, end]``.

    One row per master; token arrivals are ``|``, high-priority cycles
    fill with ``#``, low-priority cycles with ``.``.
    """
    events = [e for e in trace.events if e.time >= start
              and (end is None or e.time <= end)]
    if not events:
        return "(empty trace window)"
    if end is None:
        end = events[-1].time
    span = max(1, end - start)
    masters = sorted({e.master for e in events})
    rows = {m: [" "] * width for m in masters}

    def col(t: int) -> int:
        return min(width - 1, int((t - start) * width / span))

    for ev in events:
        if ev.kind == TOKEN_ARRIVAL:
            rows[ev.master][col(ev.time)] = "|"
    for s, e in BusTrace(events=events, max_events=len(events) + 1).cycles():
        c0, c1 = col(s.time), max(col(s.time), col(e.time))
        fill = "#" if s.high_priority else "."
        for i in range(c0, c1 + 1):
            if rows[s.master][i] == " ":
                rows[s.master][i] = fill
    label_w = max(len(m) for m in masters) + 1
    lines = [f"{'':<{label_w}}t={start} .. t={end}"]
    for m in masters:
        lines.append(f"{m:<{label_w}}" + "".join(rows[m]))
    lines.append(f"{'':<{label_w}}'|' token arrival, '#' high cycle, "
                 f"'.' low cycle")
    return "\n".join(lines)
