"""Analysis-vs-simulation validation helpers (experiment E4/E6 plumbing).

Each helper runs the relevant simulator, collects the worst observed
response per stream/task, pairs it with the analytic bound, and returns
:class:`ValidationReport` rows.  The invariant under test is always

    observed ≤ bound        (soundness of the analysis)

and the reports also carry the tightness ratio ``observed / bound`` so
benches can show how conservative each bound is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.task import TaskSet
from ..profibus.network import Network
from ..profibus.ttr import analyse
from .token import TokenBusConfig, TokenBusResult, simulate_token_bus
from .traffic import TrafficConfig, synchronous_offsets
from .uniproc import simulate_uniproc


@dataclass(frozen=True)
class ValidationRow:
    """One stream/task: analytic bound vs worst observed response."""

    name: str
    bound: Optional[int]
    observed: int
    completed: int

    @property
    def sound(self) -> bool:
        """True when the observation does not contradict the bound."""
        return self.bound is None or self.observed <= self.bound

    @property
    def tightness(self) -> Optional[float]:
        if self.bound is None or self.bound == 0 or self.completed == 0:
            return None
        return self.observed / self.bound


@dataclass(frozen=True)
class ValidationReport:
    rows: List[ValidationRow]
    detail: Dict[str, object]

    @property
    def all_sound(self) -> bool:
        return all(r.sound for r in self.rows)

    @property
    def worst_tightness(self) -> Optional[float]:
        vals = [r.tightness for r in self.rows if r.tightness is not None]
        return max(vals) if vals else None

    def row(self, name: str) -> ValidationRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)


_POLICY_TO_SIM = {"fcfs": "stock-fcfs", "dm": "ap-dm", "edf": "ap-edf"}


def validate_network(
    network: Network,
    policy: str,
    horizon: int,
    traffic: Optional[TrafficConfig] = None,
    config: Optional[TokenBusConfig] = None,
    refined: bool = False,
) -> ValidationReport:
    """Analytic bounds (eqs. 11/16/17) vs token-bus simulation."""
    analysis = analyse(network, policy, refined=refined)
    if config is None:
        config = TokenBusConfig(policy=_POLICY_TO_SIM[policy])
    if traffic is None:
        traffic = synchronous_offsets(network)
    result = simulate_token_bus(network, horizon, traffic, config)
    rows = []
    for sr in analysis.per_stream:
        key = f"{sr.master}/{sr.stream.name}"
        stats = result.streams.get(key)
        rows.append(
            ValidationRow(
                name=key,
                bound=sr.R,
                observed=stats.max_response if stats else 0,
                completed=stats.completed if stats else 0,
            )
        )
    return ValidationReport(
        rows=rows,
        detail={
            "policy": policy,
            "horizon": horizon,
            "tcycle_bound": analysis.tcycle,
            "max_trr_observed": result.max_trr,
            "events": result.events,
        },
    )


def validate_uniproc(
    taskset: TaskSet,
    bounds: Dict[str, Optional[int]],
    horizon: int,
    policy: str = "fp",
    preemptive: bool = True,
    release_jitter_once: bool = False,
) -> ValidationReport:
    """Analytic per-task bounds vs the uniprocessor simulator."""
    stats = simulate_uniproc(
        taskset,
        horizon,
        policy=policy,
        preemptive=preemptive,
        release_jitter_once=release_jitter_once,
    )
    rows = []
    for task in taskset:
        rows.append(
            ValidationRow(
                name=task.name,
                bound=bounds.get(task.name),
                observed=stats.max_response.get(task.name, 0),
                completed=stats.completed.get(task.name, 0),
            )
        )
    return ValidationReport(
        rows=rows,
        detail={"policy": policy, "preemptive": preemptive, "horizon": horizon},
    )
