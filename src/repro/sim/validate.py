"""Analysis-vs-simulation validation helpers (experiment E4/E6 plumbing).

Each helper runs the relevant simulator, collects the worst observed
response per stream/task, pairs it with the analytic bound, and returns
:class:`ValidationReport` rows.  The invariant under test is always

    observed ≤ bound        (soundness of the analysis)

and the reports also carry the tightness ratio ``observed / bound`` so
benches can show how conservative each bound is.

Releases that never complete inside the horizon are **not** ignored: a
request still pending at the horizon has already waited ``horizon −
release`` and its eventual response can only be larger, so that age is
checked against the bound too, and a stream none of whose releases
completed gets a distinct ``incomplete`` verdict instead of a vacuous
pass (see :class:`ValidationRow.verdict`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.task import TaskSet
from ..profibus.network import Network
from ..profibus.ttr import analyse
from .token import TokenBusConfig, TokenBusResult, simulate_token_bus, stream_key
from .traffic import TrafficConfig, synchronous_offsets
from .uniproc import simulate_uniproc


#: Row verdicts: ``VERDICT_SOUND`` — every observation respects the
#: bound; ``VERDICT_UNSOUND`` — a response (completed, or the age of a
#: request still pending at the horizon) exceeded the bound;
#: ``VERDICT_INCOMPLETE`` — releases happened but none completed, so
#: there is no observation to check (the old code counted this as a
#: vacuous pass); ``VERDICT_MISSING`` — the analysis stream has no
#: simulation statistics at all (a key mismatch between the two layers),
#: so the row is evidence of a broken harness, not of a sound bound (the
#: old code gave such rows ``released=0`` and a vacuous ``sound``);
#: ``VERDICT_DEGRADED`` — the observations themselves are untrustworthy
#: (a truncated trace, releases that cannot be paired), so a row that
#: would otherwise read ``sound``/``incomplete`` must not claim positive
#: evidence.  An observed bound *violation* stays ``unsound`` even on
#: degraded data — a response that exceeded the bound inside the
#: recorded window is conclusive no matter what was dropped after it.
VERDICT_SOUND = "sound"
VERDICT_UNSOUND = "unsound"
VERDICT_INCOMPLETE = "incomplete"
VERDICT_MISSING = "missing"
VERDICT_DEGRADED = "degraded"


@dataclass(frozen=True)
class ValidationRow:
    """One stream/task: analytic bound vs worst observed response."""

    name: str
    bound: Optional[int]
    observed: int
    completed: int
    #: releases inside the horizon (completed or not)
    released: int = 0
    #: releases still unfinished when the horizon was reached
    unfinished: int = 0
    #: age (horizon − release) of the oldest unfinished release
    pending_age: int = 0
    #: the simulator produced no statistics for this stream at all —
    #: see :data:`VERDICT_MISSING`
    missing: bool = False
    #: the observations behind this row are incomplete evidence (e.g.
    #: reconstructed from a truncated trace) — see
    #: :data:`VERDICT_DEGRADED`
    degraded: bool = False

    @property
    def effective_observed(self) -> int:
        """Worst response the run is evidence for: the largest completed
        response, or the age of the oldest request still pending at the
        horizon — its eventual response can only be larger, so a
        non-completing message counts *against* the bound rather than
        being ignored."""
        return max(self.observed, self.pending_age)

    @property
    def verdict(self) -> str:
        if self.missing:
            return VERDICT_MISSING
        if self.bound is not None and self.effective_observed > self.bound:
            return VERDICT_UNSOUND  # conclusive even on degraded data
        if self.degraded:
            return VERDICT_DEGRADED
        if self.bound is None:
            return VERDICT_SOUND  # no bound claimed, nothing to contradict
        if self.released and not self.completed:
            return VERDICT_INCOMPLETE
        return VERDICT_SOUND

    @property
    def sound(self) -> bool:
        """True when the run positively supports the bound.  A stream
        whose releases never completed inside the horizon is *not*
        vacuously sound — see :attr:`verdict`."""
        return self.verdict == VERDICT_SOUND

    @property
    def tightness(self) -> Optional[float]:
        if self.bound is None or self.bound == 0 or self.completed == 0:
            return None
        return self.observed / self.bound


@dataclass(frozen=True)
class ValidationReport:
    rows: List[ValidationRow]
    detail: Dict[str, object]

    @property
    def all_sound(self) -> bool:
        return all(r.sound for r in self.rows)

    @property
    def unsound_rows(self) -> List[ValidationRow]:
        return [r for r in self.rows if r.verdict == VERDICT_UNSOUND]

    @property
    def incomplete_rows(self) -> List[ValidationRow]:
        return [r for r in self.rows if r.verdict == VERDICT_INCOMPLETE]

    @property
    def missing_rows(self) -> List[ValidationRow]:
        return [r for r in self.rows if r.verdict == VERDICT_MISSING]

    @property
    def degraded_rows(self) -> List[ValidationRow]:
        return [r for r in self.rows if r.verdict == VERDICT_DEGRADED]

    @property
    def worst_tightness(self) -> Optional[float]:
        vals = [r.tightness for r in self.rows if r.tightness is not None]
        return max(vals) if vals else None

    def row(self, name: str) -> ValidationRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)


_POLICY_TO_SIM = {"fcfs": "stock-fcfs", "dm": "ap-dm", "edf": "ap-edf"}


def validate_network(
    network: Network,
    policy: str,
    horizon: int,
    traffic: Optional[TrafficConfig] = None,
    config: Optional[TokenBusConfig] = None,
    refined: bool = False,
) -> ValidationReport:
    """Analytic bounds (eqs. 11/16/17) vs token-bus simulation."""
    analysis = analyse(network, policy, refined=refined)
    if config is None:
        config = TokenBusConfig(policy=_POLICY_TO_SIM[policy])
    if traffic is None:
        traffic = synchronous_offsets(network)
    result = simulate_token_bus(network, horizon, traffic, config)
    rows = []
    for sr in analysis.per_stream:
        key = stream_key(sr.master, sr.stream.name)
        stats = result.streams.get(key)
        rows.append(
            ValidationRow(
                name=key,
                bound=sr.R,
                observed=stats.max_response if stats else 0,
                completed=stats.completed if stats else 0,
                released=stats.released if stats else 0,
                unfinished=stats.unfinished if stats else 0,
                pending_age=stats.max_pending_age if stats else 0,
                missing=stats is None,
            )
        )
    return ValidationReport(
        rows=rows,
        detail={
            "policy": policy,
            "horizon": horizon,
            "tcycle_bound": analysis.tcycle,
            "max_trr_observed": result.max_trr,
            "events": result.events,
        },
    )


def validate_uniproc(
    taskset: TaskSet,
    bounds: Dict[str, Optional[int]],
    horizon: int,
    policy: str = "fp",
    preemptive: bool = True,
    release_jitter_once: bool = False,
) -> ValidationReport:
    """Analytic per-task bounds vs the uniprocessor simulator."""
    stats = simulate_uniproc(
        taskset,
        horizon,
        policy=policy,
        preemptive=preemptive,
        release_jitter_once=release_jitter_once,
    )
    rows = []
    for task in taskset:
        rows.append(
            ValidationRow(
                name=task.name,
                bound=bounds.get(task.name),
                observed=stats.max_response.get(task.name, 0),
                completed=stats.completed.get(task.name, 0),
                released=stats.released.get(task.name, 0),
                unfinished=stats.unfinished.get(task.name, 0),
                pending_age=stats.max_pending_age.get(task.name, 0),
            )
        )
    return ValidationReport(
        rows=rows,
        detail={"policy": policy, "preemptive": preemptive, "horizon": horizon},
    )
