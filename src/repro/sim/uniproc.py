"""Single-processor scheduler simulator (validation harness for §2).

Simulates a task set under the four dispatching regimes the paper
surveys — {fixed-priority, EDF} × {preemptive, non-preemptive} — and
records per-task response times (measured from the *notional* arrival,
so jittered runs compare directly against bounds that include ``+J``).  Used by the test suite and bench E6 to
check that no observed response time ever exceeds the corresponding
analytic bound, and that the bounds are *tight* for the synchronous
(fixed-priority) critical instant.

The simulator is job-driven over integer time: jobs are released by
per-task calendars (offset + k·T, optional one-shot adversarial jitter),
the dispatcher picks among ready jobs, and execution proceeds to the
next decision point (job completion, or next release for preemptive
modes).  Deterministic by construction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.task import Task, TaskSet


@dataclass
class UniprocStats:
    """Observed response times per task."""

    max_response: Dict[str, int] = field(default_factory=dict)
    completed: Dict[str, int] = field(default_factory=dict)
    missed: Dict[str, int] = field(default_factory=dict)
    #: jobs released inside the horizon, completed or not
    released: Dict[str, int] = field(default_factory=dict)
    #: jobs still unfinished when the run ended
    unfinished: Dict[str, int] = field(default_factory=dict)
    #: age (horizon − notional arrival) of the oldest unfinished job
    max_pending_age: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, response, deadline) -> None:
        self.completed[name] = self.completed.get(name, 0) + 1
        if response > self.max_response.get(name, 0):
            self.max_response[name] = response
        if response > deadline:
            self.missed[name] = self.missed.get(name, 0) + 1

    def note_pending(self, name: str, age) -> None:
        self.unfinished[name] = self.unfinished.get(name, 0) + 1
        if age > self.max_pending_age.get(name, 0):
            self.max_pending_age[name] = age

    @property
    def any_miss(self) -> bool:
        return any(self.missed.values())


@dataclass(order=True)
class _Job:
    sort_key: tuple
    release: int = field(compare=False)
    notional: int = field(compare=False)  # arrival before jitter
    abs_deadline: int = field(compare=False)
    remaining: int = field(compare=False)
    task_idx: int = field(compare=False)
    seq: int = field(compare=False)


def _policy_key(policy: str, taskset: TaskSet, task_idx: int,
                release: int, abs_deadline: int, seq: int) -> tuple:
    if policy == "fp":
        prio = taskset[task_idx].priority
        if prio is None:
            raise ValueError("fp policy requires assigned priorities")
        return (prio, release, seq)
    if policy == "edf":
        return (abs_deadline, release, seq)
    raise ValueError(f"unknown policy {policy!r}")


def simulate_uniproc(
    taskset: TaskSet,
    horizon: int,
    policy: str = "fp",
    preemptive: bool = True,
    offsets: Optional[Sequence[int]] = None,
    release_jitter_once: bool = False,
) -> UniprocStats:
    """Simulate until ``horizon`` and return observed statistics.

    ``offsets[i]`` is task i's first release (default 0 = synchronous).
    ``release_jitter_once=True`` delays the *first* release of each task
    by its full jitter ``J`` and releases subsequent instances at their
    notional arrivals — the adversarial jitter pattern that maximises
    back-to-back interference.
    """
    n = taskset.n
    offsets = list(offsets) if offsets is not None else [0] * n
    if len(offsets) != n:
        raise ValueError("offsets length mismatch")

    # release calendar: (time, task_idx, notional_arrival, k)
    releases: List[Tuple[int, int, int]] = []
    for i, task in enumerate(taskset):
        k = 0
        while True:
            notional = offsets[i] + k * task.T
            if notional > horizon:
                break
            t = notional
            if release_jitter_once and task.J:
                t = notional + (task.J if k == 0 else 0)
            releases.append((t, i, notional))
            k += 1
    releases.sort()

    stats = UniprocStats()
    for rt, idx, _notional in releases:
        if rt <= horizon:
            name = taskset[idx].name
            stats.released[name] = stats.released.get(name, 0) + 1
    ready: List[_Job] = []
    seq = 0
    rel_pos = 0
    t = 0

    def pull_releases(until: int, inclusive: bool = True) -> None:
        nonlocal rel_pos, seq
        while rel_pos < len(releases):
            rt, idx, notional = releases[rel_pos]
            if rt < until or (inclusive and rt == until):
                task = taskset[idx]
                seq += 1
                job = _Job(
                    sort_key=_policy_key(
                        policy, taskset, idx, rt, notional + task.D, seq
                    ),
                    release=rt,
                    notional=notional,
                    abs_deadline=notional + task.D,
                    remaining=task.C,
                    task_idx=idx,
                    seq=seq,
                )
                heapq.heappush(ready, job)
                rel_pos += 1
            else:
                break

    while t <= horizon:
        pull_releases(t)
        if not ready:
            if rel_pos >= len(releases):
                break
            t = releases[rel_pos][0]
            continue
        job = heapq.heappop(ready)
        if preemptive:
            # run until completion or the next release, whichever first
            completion = t + job.remaining
            next_rel = releases[rel_pos][0] if rel_pos < len(releases) else None
            if next_rel is not None and next_rel < completion:
                job.remaining = completion - next_rel
                t = next_rel
                heapq.heappush(ready, job)
                continue
            t = completion
            task = taskset[job.task_idx]
            stats.record(task.name, t - job.notional, task.D)
        else:
            # non-preemptive: runs to completion once dispatched
            t = t + job.remaining
            task = taskset[job.task_idx]
            stats.record(task.name, t - job.notional, task.D)

    # Jobs the horizon cut off — still in the ready queue or never
    # dispatched — produced no response; record them so the validation
    # layer can count them against the bounds instead of ignoring them.
    for job in ready:
        stats.note_pending(taskset[job.task_idx].name, horizon - job.notional)
    for rt, idx, notional in releases[rel_pos:]:
        if rt <= horizon:
            stats.note_pending(taskset[idx].name, horizon - notional)
    return stats


def max_response_or_zero(stats: UniprocStats, name: str) -> int:
    return stats.max_response.get(name, 0)
