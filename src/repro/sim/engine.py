"""A small discrete-event simulation kernel.

Deliberately minimal but real: a binary-heap calendar with stable
ordering, cancellation, and a bounded run loop.  Both simulators in this
package (the PROFIBUS token bus and the uniprocessor scheduler
validation harness) run on top of it.

Determinism contract: two events at the same timestamp fire in
``(time, priority, sequence)`` order, where ``sequence`` is the
scheduling order — so a simulation is a pure function of its inputs and
seed, which the test suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

#: Default event priorities: releases are processed before MAC decisions
#: at the same instant, so "a request queued at the token-arrival
#: instant" is visible to the MAC — the convention the worst-case
#: analyses assume.
PRIO_RELEASE = 0
PRIO_MAC = 1
PRIO_STATS = 2

# Calendar entries are plain lists ``[time, priority, seq, callback,
# cancelled]``: the heap orders them by element-wise comparison, and the
# unique ``seq`` guarantees the comparison never reaches the callback.
# This replaces an ``@dataclass(order=True)`` record whose generated
# ``__lt__`` built a key tuple per comparison — a measurable share of
# DES runtime on large calendars.  The mutable tail carries the
# cancellation flag.
_TIME, _PRIORITY, _SEQ, _CALLBACK, _CANCELLED = range(5)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    def cancel(self) -> None:
        self._entry[_CANCELLED] = True

    @property
    def cancelled(self) -> bool:
        return self._entry[_CANCELLED]

    @property
    def time(self):
        return self._entry[_TIME]


class Simulator:
    """Event calendar + clock."""

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._seq = itertools.count()
        self.now: Any = 0
        self._events_fired = 0

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def schedule(
        self,
        time: Any,
        callback: Callable[[], None],
        priority: int = PRIO_MAC,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute ``time`` (≥ now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: {time!r} < now={self.now!r}"
            )
        entry = [time, priority, next(self._seq), callback, False]
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule_in(
        self, delay: Any, callback: Callable[[], None], priority: int = PRIO_MAC
    ) -> EventHandle:
        return self.schedule(self.now + delay, callback, priority)

    def peek_time(self) -> Optional[Any]:
        """Timestamp of the next live event, or None when empty."""
        heap = self._heap
        while heap and heap[0][_CANCELLED]:
            heapq.heappop(heap)
        return heap[0][_TIME] if heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the calendar is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[_CANCELLED]:
                continue
            self.now = entry[_TIME]
            self._events_fired += 1
            entry[_CALLBACK]()
            return True
        return False

    def run_until(self, horizon: Any, max_events: int = 50_000_000) -> None:
        """Run events with ``time <= horizon`` (inclusive).

        ``max_events`` is a runaway guard: exceeding it raises rather
        than silently spinning (e.g. a zero-length cycle loop bug).
        """
        fired = 0
        while True:
            t = self.peek_time()
            if t is None or t > horizon:
                self.now = horizon
                return
            self.step()
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events before t={horizon}"
                )

    def run_all(self, max_events: int = 50_000_000) -> None:
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
