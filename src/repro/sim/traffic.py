"""Traffic generation: when do message requests arrive?

Each stream gets a :class:`ReleasePattern` that turns ``(offset, period,
jitter, mode)`` into a deterministic series of release instants:

* ``periodic`` — ``offset + k·T (+ jitter_k)``;
* ``sporadic`` — inter-arrival ``T + extra_k`` with ``extra_k`` drawn
  uniformly from ``[0, gap_scale·T]`` (minimum separation ``T`` kept, as
  the sporadic model requires).

``jitter_k`` is drawn uniformly from ``{0..J}`` with a per-stream RNG
seeded from ``(seed, stream)``, so patterns are reproducible and
independent of each other.  ``adversarial=True`` forces ``jitter_k = J``
for the *first* release and 0 afterwards — the worst-case phasing used
when stressing analytic bounds.

Offsets helpers:

* :func:`synchronous_offsets` — everything at t=0 (the fixed-priority
  critical instant);
* :func:`staggered_offsets` — spread arrivals to de-correlate streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..profibus.network import Network


@dataclass(frozen=True)
class ReleasePattern:
    """Release-instant series for one stream."""

    period: int
    offset: int = 0
    jitter: int = 0
    mode: str = "periodic"  # "periodic" | "sporadic"
    seed: int = 0
    gap_scale: float = 0.5
    adversarial: bool = False

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be > 0")
        if self.offset < 0 or self.jitter < 0:
            raise ValueError("offset and jitter must be >= 0")
        if self.mode not in ("periodic", "sporadic"):
            raise ValueError(f"unknown mode {self.mode!r}")

    def releases(self, horizon: int) -> Iterator[int]:
        """Yield release instants ≤ horizon, strictly increasing order is
        *not* guaranteed under jitter (a late k-th release can pass an
        early (k+1)-th notional arrival), matching the real phenomenon —
        consumers must tolerate that."""
        rng = random.Random(self.seed)
        if self.mode == "periodic":
            k = 0
            while True:
                notional = self.offset + k * self.period
                if notional > horizon:
                    return
                if self.jitter:
                    if self.adversarial:
                        j = self.jitter if k == 0 else 0
                    else:
                        j = rng.randint(0, self.jitter)
                else:
                    j = 0
                t = notional + j
                if t <= horizon:
                    yield t
                k += 1
        else:  # sporadic
            t = self.offset
            if self.jitter:
                t += rng.randint(0, self.jitter)
            while t <= horizon:
                yield t
                gap = self.period + int(rng.uniform(0, self.gap_scale * self.period))
                t += gap


@dataclass(frozen=True)
class TrafficConfig:
    """Per-network traffic setup: a pattern per (master, stream)."""

    patterns: Dict[str, ReleasePattern]

    @staticmethod
    def key(master_name: str, stream_name: str) -> str:
        return f"{master_name}/{stream_name}"

    def pattern_for(self, master_name: str, stream_name: str) -> ReleasePattern:
        return self.patterns[self.key(master_name, stream_name)]


def synchronous_offsets(
    network: Network,
    seed: int = 0,
    jitter: bool = False,
    sporadic: bool = False,
) -> TrafficConfig:
    """All streams released together at t=0 at their maximum rate."""
    patterns = {}
    for m in network.masters:
        for s in m.streams:
            patterns[TrafficConfig.key(m.name, s.name)] = ReleasePattern(
                period=s.T,
                offset=0,
                jitter=s.J if jitter else 0,
                mode="sporadic" if sporadic else "periodic",
                seed=hash((seed, m.name, s.name)) & 0x7FFFFFFF,
            )
    return TrafficConfig(patterns)


def staggered_offsets(network: Network, seed: int = 0) -> TrafficConfig:
    """Random offsets in ``[0, T)`` per stream (average-case phasing)."""
    rng = random.Random(seed)
    patterns = {}
    for m in network.masters:
        for s in m.streams:
            patterns[TrafficConfig.key(m.name, s.name)] = ReleasePattern(
                period=s.T,
                offset=rng.randrange(s.T),
                jitter=s.J,
                seed=hash((seed, m.name, s.name)) & 0x7FFFFFFF,
            )
    return TrafficConfig(patterns)
