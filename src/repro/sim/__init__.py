"""Discrete-event simulators: the PROFIBUS token bus (§3.1 pseudocode)
and a uniprocessor scheduler used to validate the §2 analyses."""

from .engine import EventHandle, Simulator
from .queues import DMQueue, EDFQueue, FCFSQueue, Request, StackQueue, make_queue
from .trace import (
    CYCLE_END,
    CYCLE_START,
    EVENT_KINDS,
    RELEASE,
    TOKEN_ARRIVAL,
    BusEvent,
    BusTrace,
    render_timeline,
)
from .token import (
    MasterStats,
    StreamStats,
    TokenBusConfig,
    TokenBusResult,
    simulate_token_bus,
)
from .traffic import (
    ReleasePattern,
    TrafficConfig,
    staggered_offsets,
    synchronous_offsets,
)
from .uniproc import UniprocStats, simulate_uniproc
from .validate import (
    VERDICT_DEGRADED,
    VERDICT_INCOMPLETE,
    VERDICT_MISSING,
    VERDICT_SOUND,
    VERDICT_UNSOUND,
    ValidationReport,
    ValidationRow,
    validate_network,
    validate_uniproc,
)

__all__ = [
    "BusEvent",
    "BusTrace",
    "CYCLE_END",
    "CYCLE_START",
    "DMQueue",
    "EVENT_KINDS",
    "RELEASE",
    "TOKEN_ARRIVAL",
    "render_timeline",
    "EDFQueue",
    "EventHandle",
    "FCFSQueue",
    "MasterStats",
    "ReleasePattern",
    "Request",
    "Simulator",
    "StackQueue",
    "StreamStats",
    "TokenBusConfig",
    "TokenBusResult",
    "TrafficConfig",
    "UniprocStats",
    "VERDICT_DEGRADED",
    "VERDICT_INCOMPLETE",
    "VERDICT_MISSING",
    "VERDICT_SOUND",
    "VERDICT_UNSOUND",
    "ValidationReport",
    "ValidationRow",
    "make_queue",
    "simulate_token_bus",
    "simulate_uniproc",
    "staggered_offsets",
    "synchronous_offsets",
    "validate_network",
    "validate_uniproc",
]
