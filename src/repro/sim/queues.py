"""Outgoing-queue disciplines.

Three queue types cover the paper's design space:

* :class:`FCFSQueue` — the stock PROFIBUS outgoing queue (§3.2);
* :class:`DMQueue` — AP-level queue ordered by relative deadline (§4);
* :class:`EDFQueue` — AP-level queue ordered by absolute deadline (§4.2,
  "earliness of the absolute deadline of the message's generating task").

All are priority queues over :class:`Request` with policy-specific keys;
ties break by enqueue sequence (FIFO), making simulations deterministic.
The AP queue is *re-ordered only when a new request arrives* (the paper's
note in §4.2) — true by construction for a heap keyed on static values.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional


@dataclass(frozen=True)
class Request:
    """One queued message request (an instance of a stream)."""

    stream_name: str
    master: str
    release: Any  # release time (arrival at the AP queue)
    deadline: Any  # absolute deadline = release + D
    rel_deadline: Any  # the stream's relative deadline D
    cycle_bits: int  # transmission length of this cycle
    high_priority: bool = True
    seq: int = 0  # global arrival sequence (FIFO tiebreak)


class _HeapQueue:
    """Shared heap machinery; subclasses provide the ordering key."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._count = itertools.count()

    def key(self, req: Request):  # pragma: no cover - abstract
        raise NotImplementedError

    def push(self, req: Request) -> None:
        heapq.heappush(self._heap, (self.key(req), next(self._count), req))

    def pop(self) -> Request:
        if not self._heap:
            raise IndexError("pop from empty queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Optional[Request]:
        return self._heap[0][2] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Request]:
        while self._heap:
            yield self.pop()

    def items(self) -> Iterator[Request]:
        """Non-destructive iteration (heap order, not priority order) —
        used by the end-of-run pending-work scan."""
        for _key, _seq, req in self._heap:
            yield req


class FCFSQueue(_HeapQueue):
    """First-come-first-served: ordered by arrival (release, seq)."""

    def key(self, req: Request):
        return (req.release, req.seq)


class DMQueue(_HeapQueue):
    """Deadline-monotonic: ordered by the stream's *relative* deadline."""

    def key(self, req: Request):
        return (req.rel_deadline, req.seq)


class EDFQueue(_HeapQueue):
    """Earliest (absolute) deadline first."""

    def key(self, req: Request):
        return (req.deadline, req.seq)


def make_queue(policy: str) -> _HeapQueue:
    """Factory: ``"fcfs" | "dm" | "edf"`` → queue instance."""
    try:
        return {"fcfs": FCFSQueue, "dm": DMQueue, "edf": EDFQueue}[policy]()
    except KeyError:
        raise ValueError(f"unknown queue policy {policy!r}")


class StackQueue:
    """The communication-stack outgoing queue, limited to ``depth``.

    The §4 architecture sets ``depth=1``: the AP dispatcher stages at
    most one request, so the FCFS stack can never invert priorities by
    more than one message.  ``depth>1`` is kept for the ablation bench
    (showing why 1 is the right choice); staged order is FIFO as in the
    stock stack.
    """

    def __init__(self, depth: int = 1):
        if depth < 1:
            raise ValueError("stack depth must be >= 1")
        self.depth = depth
        self._fifo: List[Request] = []

    @property
    def free(self) -> int:
        return self.depth - len(self._fifo)

    def push(self, req: Request) -> None:
        if not self.free:
            raise OverflowError("communication stack queue is full")
        self._fifo.append(req)

    def pop(self) -> Request:
        if not self._fifo:
            raise IndexError("pop from empty stack queue")
        return self._fifo.pop(0)

    def peek(self) -> Optional[Request]:
        return self._fifo[0] if self._fifo else None

    def items(self) -> Iterator[Request]:
        """Non-destructive iteration in staged (FIFO) order."""
        return iter(self._fifo)

    def __len__(self) -> int:
        return len(self._fifo)

    def __bool__(self) -> bool:
        return bool(self._fifo)
