"""Priority assignment policies.

The paper (§2) uses two fixed-priority assignments:

* **Rate monotonic (RM)** — shorter period ⇒ higher priority (Liu &
  Layland [21]);
* **Deadline monotonic (DM)** — shorter relative deadline ⇒ higher
  priority (Burns [20]).

We also provide **Audsley's optimal priority assignment (OPA)**, which is
optimal for any analysis that is independent of the relative order of
higher-priority tasks — in particular the non-preemptive response-time
test of eq. (1)-(2) used for the PROFIBUS message analysis.  OPA is the
natural "extension/future-work" companion: it finds a feasible priority
order whenever one exists for such tests.

Priorities are integers with **lower number = higher priority**; ties are
broken by position in the task set so assignments are deterministic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .task import Task, TaskSet


def assign_rate_monotonic(taskset: TaskSet) -> TaskSet:
    """Assign RM priorities: shorter period ⇒ higher priority."""
    order = sorted(range(taskset.n), key=lambda i: (taskset[i].T, i))
    return _apply_order(taskset, order)


def assign_deadline_monotonic(taskset: TaskSet) -> TaskSet:
    """Assign DM priorities: shorter relative deadline ⇒ higher priority."""
    order = sorted(range(taskset.n), key=lambda i: (taskset[i].D, i))
    return _apply_order(taskset, order)


def assign_dj_monotonic(taskset: TaskSet) -> TaskSet:
    """Assign (D − J)-monotonic priorities.

    With release jitter, plain DM is no longer the optimal fixed-priority
    order; ordering by ``D − J`` is (Zuhily & Burns) — a task that can
    lose most of its deadline to jitter is effectively more urgent.
    Coincides with DM when no task has jitter.
    """
    order = sorted(
        range(taskset.n), key=lambda i: (taskset[i].D - taskset[i].J, i)
    )
    return _apply_order(taskset, order)


def _apply_order(taskset: TaskSet, order: List[int]) -> TaskSet:
    prio_of = {idx: prio for prio, idx in enumerate(order)}
    return TaskSet(
        taskset[i].with_priority(prio_of[i]) for i in range(taskset.n)
    )


def assign_audsley(
    taskset: TaskSet,
    feasible_at: Callable[[Task, List[Task], List[Task]], bool],
) -> Optional[TaskSet]:
    """Audsley's optimal priority assignment.

    ``feasible_at(task, higher, lower)`` must answer: is ``task``
    schedulable with every task in ``higher`` at higher priority and
    every task in ``lower`` at lower priority?  The test must not depend
    on the relative order *within* either group (true for the
    response-time tests in :mod:`repro.core.rta_fixed`: interference
    sums over ``higher``, blocking takes a max over ``lower``).

    Returns a TaskSet with a feasible priority assignment, or ``None``
    when no assignment passes the supplied test.
    """
    remaining = list(range(taskset.n))
    lower: List[Task] = []  # already placed below the current slot
    prio_of = {}
    for prio in range(taskset.n - 1, -1, -1):
        placed = None
        for idx in remaining:
            higher = [taskset[j] for j in remaining if j != idx]
            if feasible_at(taskset[idx], higher, lower):
                placed = idx
                break
        if placed is None:
            return None
        remaining.remove(placed)
        lower.append(taskset[placed])
        prio_of[placed] = prio
    return TaskSet(
        taskset[i].with_priority(prio_of[i]) for i in range(taskset.n)
    )


def priorities_are_dm(taskset: TaskSet) -> bool:
    """True when the assigned priorities are consistent with DM order."""
    ordered = sorted(taskset.tasks, key=lambda t: t.priority)
    return all(
        ordered[i].D <= ordered[i + 1].D for i in range(len(ordered) - 1)
    )


def priorities_are_rm(taskset: TaskSet) -> bool:
    """True when the assigned priorities are consistent with RM order."""
    ordered = sorted(taskset.tasks, key=lambda t: t.priority)
    return all(
        ordered[i].T <= ordered[i + 1].T for i in range(len(ordered) - 1)
    )
