"""Result dataclasses shared by the analysis modules.

Analyses return structured results rather than bare numbers so that the
benchmark harness and the tests can interrogate per-task detail
(response time vs deadline, iteration counts, which test failed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .task import Task
from .timeops import Number


@dataclass(frozen=True)
class ResponseTime:
    """Worst-case response time of one task / message stream."""

    task: Task
    value: Optional[Number]  # None when the iteration exceeded its limit
    iterations: int = 0
    #: For EDF analyses: the release offset ``a`` attaining the maximum.
    critical_a: Optional[Number] = None

    @property
    def schedulable(self) -> bool:
        return self.value is not None and self.value <= self.task.D

    @property
    def slack(self) -> Optional[Number]:
        if self.value is None:
            return None
        return self.task.D - self.value


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of a whole-set schedulability analysis."""

    schedulable: bool
    per_task: Sequence[ResponseTime] = field(default_factory=tuple)
    test: str = ""
    detail: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.schedulable

    def response(self, name: str) -> ResponseTime:
        for rt in self.per_task:
            if rt.task.name == name:
                return rt
        raise KeyError(name)

    @property
    def worst_response(self) -> Optional[Number]:
        values = [rt.value for rt in self.per_task if rt.value is not None]
        return max(values) if values else None

    def summary(self) -> List[str]:
        """Human-readable per-task lines (used by the CLI and examples)."""
        lines = []
        for rt in self.per_task:
            r = "∞" if rt.value is None else f"{rt.value}"
            mark = "ok" if rt.schedulable else "MISS"
            lines.append(
                f"{rt.task.name or '<unnamed>'}: R={r} D={rt.task.D} [{mark}]"
            )
        return lines


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of a demand-style feasibility test (no per-task response)."""

    schedulable: bool
    test: str
    #: First time point at which the demand inequality failed, if any.
    failure_time: Optional[Number] = None
    #: Demand measured at the failure point.
    failure_demand: Optional[Number] = None
    checked_points: int = 0
    horizon: Optional[Number] = None

    def __bool__(self) -> bool:
        return self.schedulable
