"""Utilisation-based schedulability tests (§2.1, §2.2 of the paper).

* Liu & Layland's RM bound: ``ΣCᵢ/Tᵢ ≤ n(2^{1/n} − 1)`` — sufficient for
  preemptive RM with implicit deadlines.
* The hyperbolic bound (Bini–Buttazzo): ``Π(Uᵢ+1) ≤ 2`` — a strictly less
  pessimistic sufficient test for the same model (included as the
  standard refinement; the paper cites only Liu & Layland).
* EDF: ``ΣCᵢ/Tᵢ ≤ 1`` — exact for preemptive EDF with implicit deadlines.

These are the *cheap* tests; the exact ones live in
:mod:`repro.core.rta_fixed` and :mod:`repro.core.demand`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .task import TaskSet


@dataclass(frozen=True)
class UtilizationResult:
    """Outcome of a utilisation-based test."""

    schedulable: bool
    utilization: float
    bound: float
    test: str

    def __bool__(self) -> bool:
        return self.schedulable


def liu_layland_bound(n: int) -> float:
    """``n (2^{1/n} − 1)``, the RM utilisation bound for ``n`` tasks."""
    if n <= 0:
        raise ValueError("n must be positive")
    return n * (2.0 ** (1.0 / n) - 1.0)


def rm_utilization_test(taskset: TaskSet) -> UtilizationResult:
    """Liu & Layland sufficient test for preemptive RM.

    Only meaningful for implicit deadlines (``D == T``); a ``ValueError``
    is raised otherwise, because the bound is unsound for ``D < T``.
    """
    for t in taskset:
        if t.D != t.T:
            raise ValueError(
                f"RM utilisation bound requires D == T (task {t.name!r} has D={t.D!r}, T={t.T!r})"
            )
    u = taskset.utilization
    bound = liu_layland_bound(taskset.n)
    return UtilizationResult(u <= bound, u, bound, "liu-layland")


def hyperbolic_test(taskset: TaskSet) -> UtilizationResult:
    """Bini–Buttazzo hyperbolic sufficient test for preemptive RM."""
    for t in taskset:
        if t.D != t.T:
            raise ValueError("hyperbolic bound requires D == T")
    prod = math.prod(t.utilization + 1.0 for t in taskset)
    return UtilizationResult(prod <= 2.0, prod, 2.0, "hyperbolic")


def edf_utilization_test(taskset: TaskSet) -> UtilizationResult:
    """``U ≤ 1`` — exact for preemptive EDF with ``D == T``.

    For ``D < T`` this is only *necessary*; use
    :func:`repro.core.demand.processor_demand_test` for sufficiency.
    """
    u = taskset.utilization
    return UtilizationResult(u <= 1.0, u, 1.0, "edf-utilization")


def density_test(taskset: TaskSet) -> UtilizationResult:
    """``Σ Cᵢ/min(Dᵢ,Tᵢ) ≤ 1`` — sufficient for preemptive EDF, any D."""
    d = taskset.density
    return UtilizationResult(d <= 1.0, d, 1.0, "edf-density")
