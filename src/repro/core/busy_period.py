"""Busy-period computations.

The *synchronous busy period* ``L`` is the longest interval of continuous
processor demand when all tasks are released together at their maximum
rate.  It solves the fixed point

    L = W(L),   W(t) = Σᵢ ⌈(t + Jᵢ)/Tᵢ⌉ · Cᵢ

(the paper's §2.2, used as the horizon for the ``a`` values in eqs. (8)
and (10)).  It exists iff total utilisation ≤ 1 (for U == 1 it equals the
hyperperiod-scale fixed point and still converges for integer inputs).

Also provided: the Ripoll et al. bound used to cap the processor-demand
test horizon (``tmax`` of eq. (3)).
"""

from __future__ import annotations

from typing import Optional

from ..perf import kernels
from ..perf.config import fast_path_enabled
from .task import TaskSet
from .timeops import Number, ceil_div, fixed_point


def synchronous_busy_period(
    taskset: TaskSet,
    include_jitter: bool = False,
    blocking: Number = 0,
    max_iter: int = 1_000_000,
) -> Number:
    """Length of the synchronous processor busy period.

    ``blocking`` seeds the busy period with an initial non-preemptive
    blocking term (used for the non-preemptive analyses).  Raises
    ``ValueError`` when utilisation exceeds 1 (the busy period would be
    unbounded).

    Memoised per (immutable) task set and argument combination: the EDF
    scan derives the same busy period for every task of a set.
    """
    # One flag read serves the memo and the kernel gate below, so the
    # two can never disagree mid-call.
    use_memo = fast_path_enabled()
    memo_key = ("busy_period", include_jitter, blocking, max_iter)
    if use_memo:
        cached = taskset._cache.get(memo_key)
        if cached is not None:
            return cached

    if taskset.utilization > 1.0 + 1e-12:
        raise ValueError(
            f"busy period unbounded: utilisation {taskset.utilization:.6f} > 1"
        )
    if blocking > 0 and taskset.utilization > 1.0 - 1e-12:
        raise ValueError(
            "busy period unbounded: utilisation is 1 and the blocking seed "
            "can never be absorbed"
        )

    if use_memo and taskset.all_int and type(blocking) is int:
        entries = tuple(
            (t.C, t.T, t.J if include_jitter else 0) for t in taskset
        )
        value = kernels.busy_period(entries, blocking, max_iter=max_iter)
        taskset._cache[memo_key] = value
        return value

    def w(t: Number) -> Number:
        total: Number = blocking
        for task in taskset:
            j = task.J if include_jitter else 0
            total = total + ceil_div(t + j, task.T) * task.C
        return total

    start: Number = blocking + sum(t.C for t in taskset)
    value, _its, converged = fixed_point(w, start, limit=None, max_iter=max_iter)
    if not converged:  # pragma: no cover - limit=None never reports False
        raise RuntimeError("busy period iteration failed to converge")
    if use_memo:
        taskset._cache[memo_key] = value
    return value


def demand_horizon(taskset: TaskSet) -> Number:
    """Upper bound ``tmax`` for the processor-demand test of eq. (3).

    The demand inequality can only fail before

        max( L,  max Dᵢ,  (Σ (Tᵢ−Dᵢ)·Uᵢ) / (1−U) )

    where the last term is the La-&-Ripoll bound (finite only when
    ``U < 1``).  We return the *smallest* safe horizon available:
    ``min(L, ripoll)`` when both are finite — checking beyond either is
    unnecessary — floored at ``max Dᵢ`` so at least every first deadline
    is inspected.
    """
    u = taskset.utilization
    max_d = max(t.D for t in taskset)
    candidates = []
    if u <= 1.0 + 1e-12:
        candidates.append(synchronous_busy_period(taskset))
    if u < 1.0 - 1e-12:
        num = sum((float(t.T) - float(t.D)) * t.utilization for t in taskset)
        if num > 0:
            candidates.append(num / (1.0 - u))
    if not candidates:
        # U == 1 with no slack information: fall back to the busy period
        candidates.append(synchronous_busy_period(taskset))
    horizon = min(candidates)
    return horizon if horizon > max_d else max_d
