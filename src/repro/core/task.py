"""Task and task-set model.

The paper characterises a task set (or a message-stream set) by its
worst-case execution time ``C``, relative deadline ``D`` and period ``T``
(minimum inter-arrival time for sporadic tasks).  We additionally carry
release jitter ``J`` (needed for the §4 message analyses), a blocking
term ``B`` (eq. (2)) and an optional fixed priority.

Tasks are immutable; a :class:`TaskSet` is an ordered, validated
collection with convenience accessors used by every analysis module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .timeops import Number, hyperperiod


@dataclass(frozen=True)
class Task:
    """A periodic or sporadic task / message stream.

    Parameters
    ----------
    C:
        Worst-case execution time (or message-cycle transmission time).
    T:
        Period (minimum inter-arrival time for sporadic tasks).
    D:
        Relative deadline; defaults to ``T`` (implicit-deadline model).
    J:
        Release jitter (maximum delay between the notional arrival of an
        instance and the moment it is actually queued/released).
    priority:
        Fixed priority; **lower number = higher priority** (the DM/RM
        convention used throughout this library).  ``None`` until a
        priority-assignment pass fills it in.
    name:
        Optional identifier used in reports.
    """

    C: Number
    T: Number
    D: Optional[Number] = None
    J: Number = 0
    priority: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.C <= 0:
            raise ValueError(f"task {self.name!r}: C must be > 0, got {self.C!r}")
        if self.T <= 0:
            raise ValueError(f"task {self.name!r}: T must be > 0, got {self.T!r}")
        if self.D is None:
            object.__setattr__(self, "D", self.T)
        if self.D <= 0:
            raise ValueError(f"task {self.name!r}: D must be > 0, got {self.D!r}")
        if self.J < 0:
            raise ValueError(f"task {self.name!r}: J must be >= 0, got {self.J!r}")

    @property
    def utilization(self) -> float:
        """``C / T`` as a float (memoised; tasks are immutable)."""
        try:
            return self._utilization
        except AttributeError:
            u = float(self.C) / float(self.T)
            object.__setattr__(self, "_utilization", u)
            return u

    @property
    def density(self) -> float:
        """``C / min(D, T)`` as a float."""
        return float(self.C) / float(min(self.D, self.T))

    def __getstate__(self):
        # Memoised derivations (leading underscore) stay local to the
        # process: some caches are keyed by object identity and would be
        # stale — or worse, colliding — after unpickling in a worker.
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_")}

    def with_priority(self, priority: int) -> "Task":
        # Hot in priority assignment over generated workloads: a direct
        # field copy skips re-running __init__/__post_init__ validation
        # on values that are unchanged and already validated.
        new = object.__new__(Task)
        new.__dict__.update(self.__dict__)
        new.__dict__["priority"] = priority
        return new

    def with_jitter(self, J: Number) -> "Task":
        return replace(self, J=J)


class TaskSet:
    """An ordered collection of :class:`Task` objects.

    Order is preserved (it matters for FCFS reasoning and for stable
    reports) but no priority order is implied; analyses sort by the
    ``priority`` field or by deadline as appropriate.
    """

    def __init__(self, tasks: Iterable[Task]):
        self._tasks: Tuple[Task, ...] = tuple(tasks)
        if not self._tasks:
            raise ValueError("TaskSet must contain at least one task")
        names = [t.name for t in self._tasks if t.name]
        if len(names) != len(set(names)):
            raise ValueError("duplicate task names in TaskSet")
        # Tasks are immutable, so per-set invariants (priority views,
        # utilisation, the all-int flag) are computed once and memoised.
        self._cache: dict = {}

    def __getstate__(self):
        # The cache holds identity-keyed structures; rebuild fresh after
        # unpickling (e.g. in a batch worker process).
        return {"_tasks": self._tasks, "_cache": {}}

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, idx: int) -> Task:
        return self._tasks[idx]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TaskSet) and self._tasks == other._tasks

    def __repr__(self) -> str:
        return f"TaskSet({list(self._tasks)!r})"

    # -- accessors -----------------------------------------------------------
    @property
    def tasks(self) -> Tuple[Task, ...]:
        return self._tasks

    @property
    def utilization(self) -> float:
        """Total utilisation ``ΣCᵢ/Tᵢ``."""
        u = self._cache.get("utilization")
        if u is None:
            u = sum(t.utilization for t in self._tasks)
            self._cache["utilization"] = u
        return u

    @property
    def all_int(self) -> bool:
        """True when every task's ``(C, T, D, J)`` is a plain ``int`` —
        the precondition for the :mod:`repro.perf.kernels` fast paths."""
        flag = self._cache.get("all_int")
        if flag is None:
            flag = all(
                type(t.C) is int
                and type(t.T) is int
                and type(t.D) is int
                and type(t.J) is int
                for t in self._tasks
            )
            self._cache["all_int"] = flag
        return flag

    @property
    def density(self) -> float:
        return sum(t.density for t in self._tasks)

    @property
    def n(self) -> int:
        return len(self._tasks)

    def by_name(self, name: str) -> Task:
        for t in self._tasks:
            if t.name == name:
                return t
        raise KeyError(name)

    def index_of(self, task: Task) -> int:
        return self._tasks.index(task)

    def hyperperiod(self) -> Optional[int]:
        """LCM of the periods when they are integers, else ``None``."""
        return hyperperiod(t.T for t in self._tasks)

    # -- priority-relative views ----------------------------------------------
    def _require_priorities(self) -> None:
        if any(t.priority is None for t in self._tasks):
            raise ValueError(
                "task set has unassigned priorities; run a priority assignment first"
            )

    def _prio_views(self, task: Task) -> Optional[Tuple[List[Task], List[Task]]]:
        """Memoised ``(hp, lp)`` views for a *member* task (by identity).

        ``None`` for a task that is not a member — those keep the
        uncached path so the identity-based semantics stay exact.
        """
        views = self._cache.get("prio_views")
        if views is None:
            views = {
                id(t): (
                    [u for u in self._tasks if u is not t and u.priority < t.priority],
                    [u for u in self._tasks if u is not t and u.priority > t.priority],
                )
                for t in self._tasks
            }
            self._cache["prio_views"] = views
        return views.get(id(task))

    def hp(self, task: Task) -> List[Task]:
        """Tasks with strictly higher priority than ``task`` (lower number).

        Returns a fresh list (callers may mutate it); the memoised view
        behind it is shared.
        """
        self._require_priorities()
        views = self._prio_views(task)
        if views is not None:
            return list(views[0])
        return [t for t in self._tasks if t is not task and t.priority < task.priority]

    def lp(self, task: Task) -> List[Task]:
        """Tasks with strictly lower priority than ``task`` (fresh list)."""
        self._require_priorities()
        views = self._prio_views(task)
        if views is not None:
            return list(views[1])
        return [t for t in self._tasks if t is not task and t.priority > task.priority]

    def sorted_by_priority(self) -> "TaskSet":
        self._require_priorities()
        return TaskSet(sorted(self._tasks, key=lambda t: t.priority))

    # -- derivation ------------------------------------------------------------
    def map(self, fn) -> "TaskSet":
        """Return a new TaskSet with ``fn`` applied to every task."""
        return TaskSet(fn(t) for t in self._tasks)

    def with_tasks(self, tasks: Sequence[Task]) -> "TaskSet":
        return TaskSet(tasks)


def make_taskset(specs: Iterable[Tuple]) -> TaskSet:
    """Build a :class:`TaskSet` from ``(C, T[, D[, name]])`` tuples.

    A small convenience for tests and examples::

        ts = make_taskset([(1, 4), (2, 6, 5, "video")])
    """
    tasks = []
    for i, spec in enumerate(specs):
        spec = tuple(spec)
        if len(spec) == 2:
            C, T = spec
            tasks.append(Task(C=C, T=T, name=f"t{i}"))
        elif len(spec) == 3:
            C, T, D = spec
            tasks.append(Task(C=C, T=T, D=D, name=f"t{i}"))
        elif len(spec) == 4:
            C, T, D, name = spec
            tasks.append(Task(C=C, T=T, D=D, name=name))
        else:
            raise ValueError(f"bad task spec {spec!r}")
    return TaskSet(tasks)
