"""Exact time arithmetic and fixed-point iteration helpers.

Every recursive schedulability equation in the paper (eqs. (1), (6), (9),
(16), (17)) is a monotone fixed-point iteration over ceiling/floor terms.
This module centralises:

* ``ceil_div`` / ``floor_div`` — exact for ``int`` and
  :class:`fractions.Fraction`, epsilon-guarded for ``float`` so that
  values that are *mathematically* integral (but carry float rounding
  noise) do not get bumped to the next integer;
* ``fixed_point`` — a generic driver with a divergence limit so that
  unschedulable inputs are reported as such instead of looping forever;
* small numeric helpers (``lcm_all`` for hyperperiods, ``pos`` for the
  ``(x)^+`` operator used in the demand-bound equations).

Times may be ``int`` (recommended: express everything in bit-times or
microseconds), ``float`` or ``Fraction``; a single analysis should stick
to one representation.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Iterable, Optional, Tuple, Union

from ..perf.stats import counters as _counters

Number = Union[int, float, Fraction]

#: Relative epsilon used to absorb float rounding noise in ceil/floor.
FLOAT_EPS = 1e-9


def _is_exact(x: Number) -> bool:
    return isinstance(x, (int, Fraction)) and not isinstance(x, bool)


def ceil_div(a: Number, b: Number) -> int:
    """Return ``ceil(a / b)`` exactly.

    ``b`` must be positive.  For floats a relative epsilon absorbs
    representation noise: ``ceil_div(0.3 * 10, 1.0) == 3``.
    """
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b!r}")
    if _is_exact(a) and _is_exact(b):
        if isinstance(a, int) and isinstance(b, int):
            return -((-a) // b)
        q = Fraction(a) / Fraction(b)
        return math.ceil(q)
    q = a / b
    eps = FLOAT_EPS * max(1.0, abs(q))
    return math.ceil(q - eps)


def floor_div(a: Number, b: Number) -> int:
    """Return ``floor(a / b)`` exactly (epsilon-guarded for floats)."""
    if b <= 0:
        raise ValueError(f"floor_div requires b > 0, got {b!r}")
    if _is_exact(a) and _is_exact(b):
        if isinstance(a, int) and isinstance(b, int):
            return a // b
        q = Fraction(a) / Fraction(b)
        return math.floor(q)
    q = a / b
    eps = FLOAT_EPS * max(1.0, abs(q))
    return math.floor(q + eps)


def pos(x: Number) -> Number:
    """The ``(x)^+`` operator: ``max(x, 0)``."""
    return x if x > 0 else 0


def almost_equal(a: Number, b: Number, rel: float = FLOAT_EPS) -> bool:
    """Equality that tolerates float rounding; exact for int/Fraction."""
    if _is_exact(a) and _is_exact(b):
        return a == b
    return math.isclose(a, b, rel_tol=rel, abs_tol=rel)


def lcm_all(values: Iterable[int]) -> int:
    """Least common multiple of a collection of positive integers."""
    out = 1
    seen = False
    for v in values:
        seen = True
        if not isinstance(v, int) or v <= 0:
            raise ValueError(f"lcm_all requires positive ints, got {v!r}")
        out = out * v // math.gcd(out, v)
    if not seen:
        raise ValueError("lcm_all requires at least one value")
    return out


def hyperperiod(periods: Iterable[Number]) -> Optional[int]:
    """Hyperperiod (LCM of periods) when all periods are integers.

    Returns ``None`` when any period is not an exact integer — callers
    fall back to a simulation horizon heuristic in that case.
    """
    ints = []
    for p in periods:
        if isinstance(p, int):
            ints.append(p)
        elif isinstance(p, Fraction) and p.denominator == 1:
            ints.append(int(p))
        elif isinstance(p, float) and p.is_integer():
            ints.append(int(p))
        else:
            return None
    return lcm_all(ints)


class DivergedError(RuntimeError):
    """Raised when a fixed-point iteration exceeds its divergence bound."""

    def __init__(self, message: str, last_value: Number):
        super().__init__(message)
        self.last_value = last_value


def fixed_point(
    func: Callable[[Number], Number],
    start: Number,
    limit: Optional[Number] = None,
    max_iter: int = 1_000_000,
) -> Tuple[Number, int, bool]:
    """Iterate ``x <- func(x)`` from ``start`` until convergence.

    ``func`` must be monotone non-decreasing in ``x`` (all the recursions
    in this library are: they are sums of ``ceil(x/T)*C`` terms).

    Returns ``(value, iterations, converged)``.  If ``limit`` is given and
    an iterate exceeds it, returns ``(value, iterations, False)`` — the
    caller interprets this as "not schedulable by this test".  Raises
    :class:`DivergedError` only if ``max_iter`` is exhausted without
    either converging or crossing ``limit`` (which indicates a bug or a
    pathological float input, not unschedulability).
    """
    x = start
    for it in range(1, max_iter + 1):
        nxt = func(x)
        if nxt < x:
            raise ValueError(
                f"fixed_point requires a monotone map; f({x!r}) = {nxt!r} decreased"
            )
        if almost_equal(nxt, x):
            _counters.generic += it
            return nxt, it, True
        if limit is not None and nxt > limit:
            _counters.generic += it
            return nxt, it, False
        x = nxt
    raise DivergedError(
        f"fixed-point iteration did not settle after {max_iter} iterations",
        x,
    )


def fixed_point_int(
    func: Callable[[int], int],
    start: int,
    limit: Optional[int] = None,
    max_iter: int = 1_000_000,
) -> Tuple[int, int, bool]:
    """:func:`fixed_point` specialised to all-``int`` iterations.

    Same contract and same values, but convergence is plain ``==`` —
    no ``Number`` dispatch, no ``almost_equal`` — which matters when a
    sweep drives millions of iterations.  Callers with all-``int``
    inputs (see :attr:`repro.core.task.TaskSet.all_int`) can use this
    directly; the hot analysis paths go further and use the array
    kernels in :mod:`repro.perf.kernels`.
    """
    x = start
    for it in range(1, max_iter + 1):
        nxt = func(x)
        if nxt < x:
            raise ValueError(
                f"fixed_point requires a monotone map; f({x!r}) = {nxt!r} decreased"
            )
        if nxt == x:
            _counters.fast += it
            return nxt, it, True
        if limit is not None and nxt > limit:
            _counters.fast += it
            return nxt, it, False
        x = nxt
    raise DivergedError(
        f"fixed-point iteration did not settle after {max_iter} iterations",
        x,
    )
