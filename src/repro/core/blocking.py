"""Blocking factors for non-preemptive scheduling — eq. (2) of the paper.

In a non-preemptive system a just-started lower-priority task (or message
cycle) runs to completion, delaying a higher-priority one.  Eq. (2) bounds
this priority inversion by the longest lower-priority execution:

    Bᵢ = max_{j ∈ lp(i)} Cⱼ

We also provide the "minus one tick" refinement used by George et al. in
the non-preemptive EDF analysis (a blocking job must have *started*
strictly before the instant of interest, so with integer time it can
contribute at most ``Cⱼ − 1``), selectable via ``subtract_one``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .task import Task, TaskSet
from .timeops import Number


def blocking_from(
    lower: Iterable[Task],
    subtract_one: bool = False,
) -> Number:
    """Largest C among ``lower`` (eq. (2)); 0 when there is none."""
    best: Optional[Number] = None
    for t in lower:
        c = t.C - 1 if subtract_one else t.C
        if best is None or c > best:
            best = c
    if best is None:
        return 0
    return best if best > 0 else 0


def nonpreemptive_blocking(
    taskset: TaskSet, task: Task, subtract_one: bool = False
) -> Number:
    """Eq. (2): ``Bᵢ = max_{j∈lp(i)} Cⱼ`` for an assigned-priority set."""
    return blocking_from(taskset.lp(task), subtract_one=subtract_one)


def edf_blocking_at(
    taskset: TaskSet, deadline: Number, subtract_one: bool = True
) -> Number:
    """Blocking for EDF at absolute-deadline horizon ``deadline``.

    Only tasks whose relative deadline exceeds ``deadline`` can cause a
    priority inversion against work due by ``deadline`` (they would be
    dispatched only because of non-preemptability).  Used by eq. (5) and
    the eq. (9) recursion.
    """
    return blocking_from(
        (t for t in taskset if t.D > deadline), subtract_one=subtract_one
    )
