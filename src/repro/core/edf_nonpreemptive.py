"""Non-preemptive EDF feasibility — eqs. (4) and (5) of the paper.

Two sufficient tests for non-preemptive, non-idling EDF:

* **Zheng & Shin** [25, 30] (eq. (4)): charge the *longest task in the
  whole set* as blocking at every point,

      ∀t ≥ min Dᵢ:   dbf(t) + max_{i=1..n} Cᵢ ≤ t

* **George, Rivierre & Spuri** [31] (eq. (5)): only a task whose
  *relative deadline exceeds t* can block demand due by ``t``, and it
  must have started strictly before the interval, hence the ``−1``:

      ∀t ∈ S:   dbf(t) + max_{i: Dᵢ > t} (Cᵢ − 1) ≤ t

  (the max is 0 when no such task exists).  Eq. (5) dominates eq. (4) —
  never more pessimistic — which the test suite checks by property.

Both are checked over the deadline points up to the non-preemptive busy
period (busy period seeded with the largest blocking) — a safe horizon
for these inequalities.
"""

from __future__ import annotations

from typing import Callable

from .blocking import edf_blocking_at
from .busy_period import demand_horizon, synchronous_busy_period
from .demand import dbf, deadline_points
from .results import FeasibilityResult
from .task import TaskSet
from .timeops import Number


def _np_horizon(taskset: TaskSet) -> Number:
    """Check horizon: busy period including the worst initial blocking.

    For ``U == 1`` the blocking-seeded busy period is unbounded; there we
    use periodicity instead: ``dbf(t + H) − (t + H) = dbf(t) − t`` over a
    hyperperiod ``H`` and the blocking terms are constant beyond
    ``max Dᵢ``, so scanning one busy period past the largest deadline is
    exhaustive.
    """
    if taskset.utilization > 1.0 + 1e-12:
        raise ValueError("utilisation > 1")
    b = max(t.C for t in taskset)
    if taskset.utilization > 1.0 - 1e-12:
        return synchronous_busy_period(taskset) + max(t.D for t in taskset)
    long_bp = synchronous_busy_period(taskset, blocking=b)
    return max(long_bp, demand_horizon(taskset))


def _scan(
    taskset: TaskSet,
    blocking_at: Callable[[Number], Number],
    test_name: str,
) -> FeasibilityResult:
    if taskset.utilization > 1.0 + 1e-12:
        return FeasibilityResult(schedulable=False, test=test_name)
    horizon = _np_horizon(taskset)
    checked = 0
    for t in deadline_points(taskset, horizon):
        checked += 1
        demand = dbf(taskset, t) + blocking_at(t)
        if demand > t:
            return FeasibilityResult(
                schedulable=False,
                test=test_name,
                failure_time=t,
                failure_demand=demand,
                checked_points=checked,
                horizon=horizon,
            )
    return FeasibilityResult(
        schedulable=True, test=test_name, checked_points=checked, horizon=horizon
    )


def zheng_shin_test(taskset: TaskSet) -> FeasibilityResult:
    """Eq. (4): demand + global-longest-task blocking at every point."""
    cmax = max(t.C for t in taskset)
    return _scan(taskset, lambda t: cmax, "np-edf-zheng-shin")


def george_test(taskset: TaskSet) -> FeasibilityResult:
    """Eq. (5): demand + ``max_{Dᵢ>t}(Cᵢ−1)`` blocking (less pessimistic)."""
    return _scan(
        taskset,
        lambda t: edf_blocking_at(taskset, t, subtract_one=True),
        "np-edf-george",
    )


def pessimism_gap(taskset: TaskSet) -> dict:
    """Diagnostic: per-check-point slack difference between eq. (4) and
    eq. (5); used by the ablation bench.  Returns the maximum extra
    blocking eq. (4) charges over eq. (5) across the scan horizon."""
    horizon = _np_horizon(taskset)
    cmax = max(t.C for t in taskset)
    worst_gap: Number = 0
    at = None
    for t in deadline_points(taskset, horizon):
        g = cmax - edf_blocking_at(taskset, t, subtract_one=True)
        if g > worst_gap:
            worst_gap, at = g, t
    return {"max_gap": worst_gap, "at": at, "horizon": horizon}
