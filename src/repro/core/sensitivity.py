"""Sensitivity analysis: how far is a system from the schedulability edge?

Two standard figures of merit, both extensions beyond the paper (used by
the E5 bench and useful to anyone deploying its analyses):

* **Critical scaling factor** — the largest ``α`` such that the task set
  with every execution time scaled to ``α·Cᵢ`` stays schedulable under a
  given test (Lehoczky et al.'s notion).  ``α > 1`` means headroom,
  ``α < 1`` means overload.  Computed by binary search over a monotone
  feasibility predicate (all tests in this library are monotone in C).
* **Breakdown utilisation** — the utilisation at the critical scaling
  factor, ``α · U``.

The search works on integer time by scaling through exact rationals and
rounding C *up* (so the reported factor is never optimistic).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Optional

from .task import Task, TaskSet


def scale_execution_times(taskset: TaskSet, factor: Fraction) -> TaskSet:
    """Every C scaled by ``factor``, rounded up, floored at 1."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    out = []
    for t in taskset:
        c = -((-t.C * factor.numerator) // factor.denominator)  # ceil
        out.append(Task(C=max(1, int(c)), T=t.T, D=t.D, J=t.J,
                        priority=t.priority, name=t.name))
    return TaskSet(out)


def critical_scaling_factor(
    taskset: TaskSet,
    is_schedulable: Callable[[TaskSet], bool],
    precision: Fraction = Fraction(1, 128),
    upper: Fraction = Fraction(8),
) -> Optional[Fraction]:
    """Largest ``α`` (within ``precision``) keeping the set schedulable.

    Returns ``None`` when the set is unschedulable even at the smallest
    probe (``precision`` itself).  The predicate must be monotone
    decreasing in the execution times (true for every test here).
    """
    if precision <= 0:
        raise ValueError("precision must be positive")
    if not is_schedulable(scale_execution_times(taskset, precision)):
        return None
    lo = precision
    hi = upper
    if is_schedulable(scale_execution_times(taskset, hi)):
        return hi
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if is_schedulable(scale_execution_times(taskset, mid)):
            lo = mid
        else:
            hi = mid
    return lo


def breakdown_utilization(
    taskset: TaskSet,
    is_schedulable: Callable[[TaskSet], bool],
    precision: Fraction = Fraction(1, 128),
) -> Optional[float]:
    """Utilisation at the critical scaling factor (``α·U``), or None."""
    alpha = critical_scaling_factor(taskset, is_schedulable, precision)
    if alpha is None:
        return None
    return float(alpha) * taskset.utilization
