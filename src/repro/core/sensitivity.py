"""Sensitivity analysis: how far is a system from the schedulability edge?

Two standard figures of merit, both extensions beyond the paper (used by
the E5 bench and useful to anyone deploying its analyses):

* **Critical scaling factor** — the largest ``α`` such that the task set
  with every execution time scaled to ``α·Cᵢ`` stays schedulable under a
  given test (Lehoczky et al.'s notion).  ``α > 1`` means headroom,
  ``α < 1`` means overload.  Computed by binary search over a monotone
  feasibility predicate (all tests in this library are monotone in C).
* **Breakdown utilisation** — the utilisation at the critical scaling
  factor, ``α · U``.

The search works on integer time by scaling through exact rationals and
rounding C *up* (so the reported factor is never optimistic).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Optional

from .task import Task, TaskSet


def scale_execution_times(taskset: TaskSet, factor: Fraction) -> TaskSet:
    """Every C scaled by ``factor``, rounded up, floored at 1."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    out = []
    for t in taskset:
        c = -((-t.C * factor.numerator) // factor.denominator)  # ceil
        out.append(Task(C=max(1, int(c)), T=t.T, D=t.D, J=t.J,
                        priority=t.priority, name=t.name))
    return TaskSet(out)


def largest_feasible_factor(
    is_feasible: Callable[[Fraction], bool],
    precision: Fraction = Fraction(1, 128),
    lower: Optional[Fraction] = None,
    upper: Fraction = Fraction(8),
) -> Optional[Fraction]:
    """Largest factor (within ``precision``) satisfying a predicate that
    is monotone *decreasing* in the factor — feasible below some
    boundary, infeasible above it.

    The bisection skeleton behind :func:`critical_scaling_factor`,
    exposed because the same question recurs at the network level: the
    admission-control headroom in :mod:`repro.api` asks for the largest
    load scaling a just-admitted stream set tolerates.  Returns ``None``
    when even ``lower`` (default: ``precision``) is infeasible, and
    ``upper`` itself when nothing in the range is infeasible.
    """
    if precision <= 0:
        raise ValueError("precision must be positive")
    lo = precision if lower is None else lower
    if not is_feasible(lo):
        return None
    hi = upper
    if is_feasible(hi):
        return hi
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if is_feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


def smallest_feasible_factor(
    is_feasible: Callable[[Fraction], bool],
    precision: Fraction = Fraction(1, 128),
    lower: Fraction = Fraction(1, 128),
    upper: Fraction = Fraction(1),
) -> Optional[Fraction]:
    """Mirror image of :func:`largest_feasible_factor` for predicates
    monotone *increasing* in the factor — infeasible below a boundary,
    feasible above it (e.g. "how far can every deadline be tightened
    before the network stops being schedulable?").  Returns ``None``
    when even ``upper`` is infeasible, and ``lower`` itself when the
    whole range is feasible."""
    if precision <= 0:
        raise ValueError("precision must be positive")
    if not is_feasible(upper):
        return None
    lo = lower
    hi = upper
    if is_feasible(lo):
        return lo
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if is_feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi


def critical_scaling_factor(
    taskset: TaskSet,
    is_schedulable: Callable[[TaskSet], bool],
    precision: Fraction = Fraction(1, 128),
    upper: Fraction = Fraction(8),
) -> Optional[Fraction]:
    """Largest ``α`` (within ``precision``) keeping the set schedulable.

    Returns ``None`` when the set is unschedulable even at the smallest
    probe (``precision`` itself).  The predicate must be monotone
    decreasing in the execution times (true for every test here).
    """
    return largest_feasible_factor(
        lambda factor: is_schedulable(scale_execution_times(taskset, factor)),
        precision=precision,
        upper=upper,
    )


def breakdown_utilization(
    taskset: TaskSet,
    is_schedulable: Callable[[TaskSet], bool],
    precision: Fraction = Fraction(1, 128),
) -> Optional[float]:
    """Utilisation at the critical scaling factor (``α·U``), or None."""
    alpha = critical_scaling_factor(taskset, is_schedulable, precision)
    if alpha is None:
        return None
    return float(alpha) * taskset.utilization
