"""Single-processor real-time schedulability theory (§2 of the paper).

The subpackage is self-contained (no PROFIBUS dependencies) and is reused
verbatim by :mod:`repro.profibus` with ``C → Tcycle`` — exactly the
transfer the paper performs in §4.3.
"""

from .blocking import blocking_from, edf_blocking_at, nonpreemptive_blocking
from .busy_period import demand_horizon, synchronous_busy_period
from .demand import dbf, dbf_with_jitter, deadline_points, processor_demand_test, qpa_test
from .edf_nonpreemptive import george_test, pessimism_gap, zheng_shin_test
from .edf_rta import edf_response_time, edf_rta
from .priority import (
    assign_audsley,
    assign_deadline_monotonic,
    assign_dj_monotonic,
    assign_rate_monotonic,
    priorities_are_dm,
    priorities_are_rm,
)
from .results import AnalysisResult, FeasibilityResult, ResponseTime
from .sensitivity import (
    breakdown_utilization,
    critical_scaling_factor,
    largest_feasible_factor,
    scale_execution_times,
    smallest_feasible_factor,
)
from .rta_fixed import (
    feasible_at_lowest_nonpreemptive,
    nonpreemptive_response_time,
    nonpreemptive_rta,
    preemptive_response_time,
    preemptive_response_time_arbitrary,
    preemptive_rta,
)
from .task import Task, TaskSet, make_taskset
from .timeops import (
    DivergedError,
    ceil_div,
    fixed_point,
    floor_div,
    hyperperiod,
    lcm_all,
    pos,
)
from .utilization import (
    UtilizationResult,
    density_test,
    edf_utilization_test,
    hyperbolic_test,
    liu_layland_bound,
    rm_utilization_test,
)

__all__ = [
    "AnalysisResult",
    "DivergedError",
    "FeasibilityResult",
    "ResponseTime",
    "Task",
    "TaskSet",
    "UtilizationResult",
    "assign_audsley",
    "assign_deadline_monotonic",
    "assign_dj_monotonic",
    "assign_rate_monotonic",
    "blocking_from",
    "breakdown_utilization",
    "critical_scaling_factor",
    "largest_feasible_factor",
    "scale_execution_times",
    "smallest_feasible_factor",
    "ceil_div",
    "dbf",
    "dbf_with_jitter",
    "deadline_points",
    "demand_horizon",
    "density_test",
    "edf_blocking_at",
    "edf_response_time",
    "edf_rta",
    "edf_utilization_test",
    "feasible_at_lowest_nonpreemptive",
    "fixed_point",
    "floor_div",
    "george_test",
    "hyperbolic_test",
    "hyperperiod",
    "lcm_all",
    "liu_layland_bound",
    "make_taskset",
    "nonpreemptive_blocking",
    "nonpreemptive_response_time",
    "nonpreemptive_rta",
    "pessimism_gap",
    "pos",
    "preemptive_response_time",
    "preemptive_response_time_arbitrary",
    "preemptive_rta",
    "priorities_are_dm",
    "priorities_are_rm",
    "processor_demand_test",
    "qpa_test",
    "rm_utilization_test",
    "synchronous_busy_period",
    "zheng_shin_test",
]
