"""Fixed-priority worst-case response-time analysis (§2.1).

Implements, for a task set with assigned fixed priorities:

* **Preemptive RTA** (Joseph & Pandya [23]) — the classic critical-instant
  recursion ``rᵢ = Cᵢ + Σ_{j∈hp(i)} ⌈rᵢ/Tⱼ⌉·Cⱼ``;
* **Non-preemptive RTA** (Audsley et al. [24]) — the paper's eq. (1)–(2):
  ``rᵢ = wᵢ + Cᵢ`` with ``wᵢ = Bᵢ + Σ_{j∈hp(i)} ⌈wᵢ/Tⱼ⌉·Cⱼ`` and
  ``Bᵢ = max_{j∈lp(i)} Cⱼ``;
* the **release-jitter extension** (Tindell & Clark [33]) of both, used
  by the PROFIBUS message analysis of §4.3: interference terms become
  ``⌈(wᵢ + Jⱼ)/Tⱼ⌉`` and the reported response time gains ``+ Jᵢ``.

All recursions are solved by the shared monotone fixed-point driver and
bounded by the task deadline (plus jitter), so unschedulable tasks are
reported with ``value=None`` rather than looping.

A subtlety of the classic Audsley non-preemptive recursion: ``wᵢ`` is the
worst-case *queuing* delay (time to start), so interference is counted
over ``[0, wᵢ]``; releases of higher-priority work at exactly ``wᵢ`` do
not preempt the now-started task.  We therefore iterate
``wᵢ = Bᵢ + Σ ⌈(wᵢ + Jⱼ + ε)/Tⱼ⌉·Cⱼ`` with the standard "epsilon via
+1-then-floor" trick on exact numbers — concretely we use
``floor((w + J)/T) + 1`` which equals ``⌈(w+J+ε)/Tⱼ⌉`` for arbitrarily
small ε.  With ``C`` granularity ≥ 1 time unit this matches the
literature (George et al. TR 2966) and is *never* optimistic; the paper's
plain-ceiling print of eq. (1) is recovered with ``strict_start=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..perf import kernels
from ..perf.config import fast_path_enabled
from .blocking import nonpreemptive_blocking
from .results import AnalysisResult, ResponseTime
from .task import Task, TaskSet
from .timeops import Number, ceil_div, fixed_point, floor_div


def _fast_ok(taskset: TaskSet, *extra) -> bool:
    """Take the integer kernels?  All task attributes and every extra
    operand must be plain ints (bit-identical results guaranteed)."""
    return (
        fast_path_enabled()
        and taskset.all_int
        and all(type(x) is int for x in extra)
    )


def preemptive_response_time(
    taskset: TaskSet,
    task: Task,
    limit_factor: Number = 1,
) -> ResponseTime:
    """Joseph–Pandya recursion for one task (with optional jitter).

    The iteration is abandoned (→ ``value=None``) once it exceeds
    ``limit_factor * (D + J)``; ``limit_factor`` > 1 lets callers measure
    *how* unschedulable a task is.
    """
    hp = taskset.hp(task)
    limit = limit_factor * (task.D + task.J)

    if _fast_ok(taskset, limit):
        value, its, converged = kernels.rta_preemptive(
            task.C, kernels.ctj(hp), limit
        )
        if not converged:
            return ResponseTime(task=task, value=None, iterations=its)
        return ResponseTime(task=task, value=value + task.J, iterations=its)

    def step(r: Number) -> Number:
        total = task.C
        for j in hp:
            total = total + ceil_div(r + j.J, j.T) * j.C
        return total

    value, its, converged = fixed_point(step, task.C, limit=limit)
    if not converged:
        return ResponseTime(task=task, value=None, iterations=its)
    return ResponseTime(task=task, value=value + task.J, iterations=its)


def preemptive_rta(taskset: TaskSet) -> AnalysisResult:
    """Whole-set preemptive fixed-priority RTA."""
    per_task = tuple(preemptive_response_time(taskset, t) for t in taskset)
    return AnalysisResult(
        schedulable=all(rt.schedulable for rt in per_task),
        per_task=per_task,
        test="fp-preemptive-rta",
    )


def preemptive_response_time_arbitrary(
    taskset: TaskSet,
    task: Task,
    max_instances: int = 100_000,
) -> ResponseTime:
    """Preemptive FP response time for **arbitrary deadlines** (D > T
    allowed) — Lehoczky's level-i busy-period analysis.

    The Joseph–Pandya recursion assumes each instance completes before
    the next arrives; with ``D > T`` several instances of ``task`` can be
    live at once and a later one can respond worst.  We scan every
    instance ``q`` in the level-i busy period::

        wᵢ(q) = (q+1)·Cᵢ + Σ_{j∈hp(i)} ⌈(wᵢ(q) + Jⱼ)/Tⱼ⌉·Cⱼ
        Rᵢ    = Jᵢ + max_q ( wᵢ(q) − q·Tᵢ )

    Matches :func:`preemptive_response_time` whenever the result is
    ≤ T (property-tested).  Included as the §2 survey's natural
    completion; the paper itself only needs ``D ≤ T``.
    """
    from .busy_period import synchronous_busy_period

    hp = taskset.hp(task)
    level = TaskSet(hp + [task])
    try:
        L = synchronous_busy_period(level, include_jitter=True)
    except ValueError:
        return ResponseTime(task=task, value=None)
    n_instances = ceil_div(L + task.J, task.T)
    if n_instances > max_instances:
        return ResponseTime(task=task, value=None)

    worst: Number = 0
    its_total = 0
    # responses are unbounded only past the busy period; inside it the
    # iteration is capped generously and misses are detected afterwards
    limit = L + task.D + task.J
    fast = _fast_ok(taskset, limit)
    arr = kernels.ctj(hp) if fast else ()
    for q in range(max(1, n_instances)):
        own = (q + 1) * task.C

        if fast:
            value, its, converged = kernels.rta_preemptive(own, arr, limit)
        else:

            def step(w: Number) -> Number:
                total: Number = own
                for j in hp:
                    total = total + ceil_div(w + j.J, j.T) * j.C
                return total

            value, its, converged = fixed_point(step, own, limit=limit)
        its_total += its
        if not converged:
            return ResponseTime(task=task, value=None, iterations=its_total)
        r = value - q * task.T
        if r > worst:
            worst = r
    return ResponseTime(task=task, value=worst + task.J, iterations=its_total)


def nonpreemptive_start_time(
    taskset: TaskSet,
    task: Task,
    strict_start: bool = True,
    limit: Optional[Number] = None,
    instance: int = 0,
) -> Optional[tuple]:
    """Solve the eq. (1) inner recursion for ``wᵢ(q)`` (queuing delay of
    the ``q``-th instance in the level-i busy period).

    ``wᵢ(q) = Bᵢ + q·Cᵢ + Σ_{j∈hp(i)} ⌈(wᵢ(q) + Jⱼ)/Tⱼ⌉·Cⱼ``

    Returns ``(w, iterations)`` or ``None`` when ``w`` exceeds ``limit``.
    """
    hp = taskset.hp(task)
    B = nonpreemptive_blocking(taskset, task) + instance * task.C

    if limit is None:
        limit = instance * task.T + task.D + task.J - task.C

    if _fast_ok(taskset, B, limit):
        arr = kernels.ctj(hp)
        value, its, converged = kernels.np_start(
            B, arr, strict_start, limit, kernels.np_step0(B, arr, strict_start)
        )
        if not converged:
            return None
        return value, its

    def step(w: Number) -> Number:
        total: Number = B
        for j in hp:
            if strict_start:
                k = floor_div(w + j.J, j.T) + 1
            else:
                k = ceil_div(w + j.J, j.T)
            total = total + k * j.C
        return total

    start = step(0)
    value, its, converged = fixed_point(step, start, limit=limit)
    if not converged:
        return None
    return value, its


def nonpreemptive_response_time(
    taskset: TaskSet,
    task: Task,
    strict_start: bool = True,
    max_instances: int = 100_000,
) -> ResponseTime:
    """Eq. (1) with the multi-instance correction.

    The paper (following Audsley et al. [24]) iterates only the *first*
    instance released in the synchronous busy period.  That is unsound
    when the level-i busy period extends past ``Tᵢ`` — a later instance,
    released while higher-priority backlog persists, can respond worse
    (the flaw Davis et al. 2007 corrected in the equivalent CAN
    analysis).  We therefore examine every instance released inside the
    level-i busy period ``Lᵢ`` (the blocking-seeded busy period of
    ``hp(i) ∪ {i}``) and report

        Rᵢ = Jᵢ + max_q ( wᵢ(q) + Cᵢ − q·Tᵢ ),   q = 0 .. ⌈Lᵢ/Tᵢ⌉ − 1

    Any instance exceeding its deadline short-circuits to unschedulable
    (``value=None``).  A level utilisation of 1 with non-zero blocking
    makes ``Lᵢ`` unbounded; the task is then reported unschedulable
    (conservative — the whole set is overloaded in that case).
    """
    from .busy_period import synchronous_busy_period

    hp = taskset.hp(task)
    B = nonpreemptive_blocking(taskset, task)
    fast = _fast_ok(taskset, B)  # one decision for busy period + q-loop
    arr = kernels.ctj(hp) if fast else ()

    if fast:
        # Same computation as TaskSet(hp + [task]) + synchronous_busy_period,
        # without materialising the level set: identical float utilisation
        # guards (same summation order), then the integer kernel.
        u = sum(t.utilization for t in hp) + task.utilization
        if u > 1.0 + 1e-12 or (B > 0 and u > 1.0 - 1e-12):
            return ResponseTime(task=task, value=None)
        L = kernels.busy_period(arr + ((task.C, task.T, task.J),), B)
    else:
        try:
            L = synchronous_busy_period(
                TaskSet(hp + [task]), include_jitter=True, blocking=B
            )
        except ValueError:
            return ResponseTime(task=task, value=None)
    n_instances = ceil_div(L + task.J, task.T)
    if n_instances > max_instances:
        return ResponseTime(task=task, value=None)

    worst: Number = 0
    its_total = 0

    if fast:
        # One (C, T, J) extraction, one seed-bound precomputation and
        # one zero-step evaluation serve every instance; the per-q
        # blocking/limit terms are the same integers the generic
        # nonpreemptive_start_time would derive.
        params = kernels.seed_params(arr)
        step0_tail = kernels.np_step0(0, arr, strict_start)
        C, T, D, J = task.C, task.T, task.D, task.J
        for q in range(max(1, n_instances)):
            Bq = B + q * C
            limit_q = q * T + D + J - C
            w, its, converged = kernels.np_start(
                Bq, arr, strict_start, limit_q, Bq + step0_tail, params
            )
            its_total += its
            if not converged:
                return ResponseTime(task=task, value=None, iterations=its_total)
            r = w + C - q * T
            if r > worst:
                worst = r
            if r + J > D:
                return ResponseTime(task=task, value=None, iterations=its_total)
        return ResponseTime(task=task, value=worst + J, iterations=its_total)

    for q in range(max(1, n_instances)):
        solved = nonpreemptive_start_time(
            taskset, task, strict_start=strict_start, instance=q
        )
        if solved is None:
            return ResponseTime(task=task, value=None, iterations=its_total)
        w, its = solved
        its_total += its
        r = w + task.C - q * task.T
        if r > worst:
            worst = r
        if r + task.J > task.D:
            return ResponseTime(task=task, value=None, iterations=its_total)
    return ResponseTime(task=task, value=worst + task.J, iterations=its_total)


def nonpreemptive_rta(
    taskset: TaskSet, strict_start: bool = True
) -> AnalysisResult:
    """Whole-set non-preemptive fixed-priority RTA (eq. (1)–(2))."""
    per_task = tuple(
        nonpreemptive_response_time(taskset, t, strict_start=strict_start)
        for t in taskset
    )
    return AnalysisResult(
        schedulable=all(rt.schedulable for rt in per_task),
        per_task=per_task,
        test="fp-nonpreemptive-rta",
        detail={"strict_start": strict_start},
    )


def feasible_at_lowest_nonpreemptive(
    task: Task, higher: list, lower: list = ()
) -> bool:
    """Audsley-OPA oracle for the non-preemptive test.

    ``task`` sits below every task in ``higher`` and above every task in
    ``lower`` — the latter matter through the eq. (2) blocking term (a
    lower-priority task's cycle can have just started).  For use with
    :func:`repro.core.priority.assign_audsley`.
    """
    n_high = len(higher)
    probe = TaskSet(
        [t.with_priority(i) for i, t in enumerate(higher)]
        + [task.with_priority(n_high)]
        + [t.with_priority(n_high + 1 + i) for i, t in enumerate(lower)]
    )
    rt = nonpreemptive_response_time(probe, probe[n_high])
    return rt.schedulable
