"""Processor-demand feasibility for preemptive EDF — eq. (3) of the paper.

The demand bound function

    dbf(t) = Σᵢ max(0, ⌊(t − Dᵢ)/Tᵢ⌋ + 1) · Cᵢ

counts the work released in ``[0, t]`` whose absolute deadline is ≤ t
under synchronous release.  A sporadic/periodic set is feasible under
preemptive EDF iff ``dbf(t) ≤ t`` for all ``t ≥ 0``, which only needs
checking at the deadline points ``t = k·Tᵢ + Dᵢ`` up to the horizon
``tmax`` (eq. (3)'s check set ``S``; see DESIGN.md for the floor-vs-ceil
note on the paper's typography).

Also implemented: **QPA** (Zhang & Burns 2009), a backwards quick
processor-demand scan that typically checks orders of magnitude fewer
points — included as the standard modern improvement, and cross-checked
against the exhaustive test in the test suite.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List

from .busy_period import demand_horizon
from .results import FeasibilityResult
from .task import TaskSet
from .timeops import Number, floor_div


def dbf(taskset: TaskSet, t: Number) -> Number:
    """Demand bound function ``dbf(t)`` (synchronous, jitter-free)."""
    total: Number = 0
    for task in taskset:
        if t >= task.D:
            total = total + (floor_div(t - task.D, task.T) + 1) * task.C
    return total


def dbf_with_jitter(taskset: TaskSet, t: Number) -> Number:
    """Demand bound with release jitter: jobs may arrive ``J`` late, so a
    job's deadline lands at ``k·T + D − J`` relative to its notional
    release; equivalently demand shifts earlier by ``J``."""
    total: Number = 0
    for task in taskset:
        eff = t + task.J
        if eff >= task.D:
            total = total + (floor_div(eff - task.D, task.T) + 1) * task.C
    return total


def deadline_points(taskset: TaskSet, horizon: Number) -> Iterator[Number]:
    """Yield the check set ``S = {k·Tᵢ + Dᵢ} ∩ [0, horizon]`` in
    increasing order without duplicates (lazy heap merge, so huge
    horizons do not materialise a list per task)."""
    heap: List = []
    for idx, task in enumerate(taskset):
        if task.D <= horizon:
            heap.append((task.D, idx, task))
    heapq.heapify(heap)
    last = None
    while heap:
        t, idx, task = heapq.heappop(heap)
        nxt = t + task.T
        if nxt <= horizon:
            heapq.heappush(heap, (nxt, idx, task))
        if last is None or t != last:
            last = t
            yield t


def processor_demand_test(
    taskset: TaskSet, horizon: Number = None
) -> FeasibilityResult:
    """Exhaustive eq. (3) test over the deadline points up to ``tmax``.

    Fails immediately (necessary condition) when utilisation exceeds 1.
    """
    if taskset.utilization > 1.0 + 1e-12:
        return FeasibilityResult(
            schedulable=False,
            test="edf-pdc",
            failure_time=None,
            checked_points=0,
            horizon=None,
        )
    if horizon is None:
        horizon = demand_horizon(taskset)
    checked = 0
    for t in deadline_points(taskset, horizon):
        checked += 1
        demand = dbf(taskset, t)
        if demand > t:
            return FeasibilityResult(
                schedulable=False,
                test="edf-pdc",
                failure_time=t,
                failure_demand=demand,
                checked_points=checked,
                horizon=horizon,
            )
    return FeasibilityResult(
        schedulable=True, test="edf-pdc", checked_points=checked, horizon=horizon
    )


def _largest_deadline_point_below(taskset: TaskSet, t: Number) -> Number:
    """max{ k·Tᵢ + Dᵢ : k·Tᵢ + Dᵢ < t }, assuming one exists."""
    best = None
    for task in taskset:
        if task.D < t:
            k = floor_div(t - task.D, task.T)
            cand = k * task.T + task.D
            if cand >= t:  # exact multiple: step one back
                cand = cand - task.T
            if cand >= task.D and (best is None or cand > best):
                best = cand
    if best is None:
        raise ValueError("no deadline point below t")
    return best


def qpa_test(taskset: TaskSet) -> FeasibilityResult:
    """Quick Processor-demand Analysis (Zhang & Burns).

    Scans backwards from the busy-period horizon:

        t ← max deadline point < L
        while dbf(t) ≤ t and dbf(t) > min Dᵢ:
            t ← dbf(t) if dbf(t) < t else largest deadline point < t
        feasible iff dbf(t) ≤ min Dᵢ ... (standard termination condition)

    Equivalent to :func:`processor_demand_test` (property-tested).
    """
    if taskset.utilization > 1.0 + 1e-12:
        return FeasibilityResult(schedulable=False, test="edf-qpa")
    horizon = demand_horizon(taskset)
    dmin = min(task.D for task in taskset)
    if horizon <= dmin:
        # Only the very first deadline(s) can matter.
        demand = dbf(taskset, dmin)
        ok = demand <= dmin
        return FeasibilityResult(
            schedulable=ok,
            test="edf-qpa",
            failure_time=None if ok else dmin,
            failure_demand=None if ok else demand,
            checked_points=1,
            horizon=horizon,
        )
    t = _largest_deadline_point_below(taskset, horizon)
    checked = 0
    while True:
        checked += 1
        h = dbf(taskset, t)
        if h > t:
            return FeasibilityResult(
                schedulable=False,
                test="edf-qpa",
                failure_time=t,
                failure_demand=h,
                checked_points=checked,
                horizon=horizon,
            )
        if h <= dmin:
            break
        if h < t:
            t = h
        else:  # h == t: hop to the previous deadline point
            if t <= dmin:
                break
            t = _largest_deadline_point_below(taskset, t)
        if t < dmin:
            break
    # final check at the smallest deadline
    demand = dbf(taskset, dmin)
    ok = demand <= dmin
    return FeasibilityResult(
        schedulable=ok,
        test="edf-qpa",
        failure_time=None if ok else dmin,
        failure_demand=None if ok else demand,
        checked_points=checked + 1,
        horizon=horizon,
    )
