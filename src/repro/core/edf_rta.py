"""Worst-case response-time analysis under EDF — eqs. (6)–(10).

Under EDF the critical instant is *not* the synchronous release: the
worst case for task ``i`` is found by scanning release offsets ``a`` of
one ``i``-instance while every other task is released synchronously at
time 0 at maximum rate (Spuri [32]; George et al. [31] for the
non-preemptive variant).

Preemptive (eqs. (6)–(8))::

    rᵢ(a) = max(Cᵢ, Lᵢ(a) − a)
    Lᵢ(a) = Wᵢ(a, Lᵢ(a)) + (1 + ⌊a/Tᵢ⌋)·Cᵢ
    Wᵢ(a,t) = Σ_{j≠i, Dⱼ ≤ a+Dᵢ} min(⌈t/Tⱼ⌉, 1 + ⌊(a+Dᵢ−Dⱼ)/Tⱼ⌋)·Cⱼ

Non-preemptive (eqs. (9)–(10)) — the busy period now precedes the
*start* of the instance, and a later-deadline task can block for at most
``Cⱼ − 1``::

    rᵢ(a) = max(Cᵢ, Cᵢ + Lᵢ(a) − a)
    Lᵢ(a) = max_{Dⱼ > a+Dᵢ}(Cⱼ − 1) + Wᵢ*(a, Lᵢ(a)) + ⌊a/Tᵢ⌋·Cᵢ
    Wᵢ*(a,t) = Σ_{j≠i, Dⱼ ≤ a+Dᵢ} min(1+⌊t/Tⱼ⌋, 1+⌊(a+Dᵢ−Dⱼ)/Tⱼ⌋)·Cⱼ

In both cases ``a`` ranges over ``{k·Tⱼ + Dⱼ − Dᵢ ≥ 0} ∩ [0, L]`` where
``L`` is the synchronous busy period (eq. (8)/(10)); we additionally add
the jitter-shifted points ``k·Tⱼ + Dⱼ − Jⱼ − Dᵢ`` when jitter is present
so the scan stays safe.  Release jitter enters the interference terms as
in the holistic analyses of Spuri [34] / Tindell & Clark [33]; response
times are reported **from the actual release** — add ``Jᵢ`` for the
delay from the notional arrival (done by :mod:`repro.apsched.end_to_end`).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..perf import kernels
from ..perf.config import fast_path_enabled
from .blocking import blocking_from
from .busy_period import synchronous_busy_period
from .results import AnalysisResult, ResponseTime
from .task import Task, TaskSet
from .timeops import Number, ceil_div, fixed_point, floor_div


def _candidate_offsets(
    taskset: TaskSet, task: Task, horizon: Number
) -> List[Number]:
    """The eq. (8)/(10) scan set for ``a``, deduplicated and sorted."""
    points: Set[Number] = {0}
    for j in taskset:
        base = j.D - task.D
        k = 0
        while True:
            a = base + k * j.T
            if a > horizon:
                break
            if a >= 0:
                points.add(a)
            if j.J:
                aj = a - j.J
                if 0 <= aj <= horizon:
                    points.add(aj)
            k += 1
    return sorted(points)


def _interference_preemptive(
    taskset: TaskSet, task: Task, a: Number, t: Number
) -> Number:
    total: Number = 0
    dl = a + task.D
    for j in taskset:
        if j is task or j.D > dl:
            continue
        by_time = ceil_div(t + j.J, j.T) if t > 0 else 0
        by_deadline = 1 + floor_div(a + task.D - j.D + j.J, j.T)
        total = total + min(by_time, by_deadline) * j.C
    return total


def _interference_nonpreemptive(
    taskset: TaskSet, task: Task, a: Number, t: Number
) -> Number:
    total: Number = 0
    dl = a + task.D
    for j in taskset:
        if j is task or j.D > dl:
            continue
        by_time = 1 + floor_div(t + j.J, j.T)
        by_deadline = 1 + floor_div(a + task.D - j.D + j.J, j.T)
        total = total + min(by_time, by_deadline) * j.C
    return total


def edf_preemptive_response_at(
    taskset: TaskSet, task: Task, a: Number, limit: Number
) -> Number:
    """``rᵢ(a)`` of eq. (6); ``limit`` bounds the busy-period iteration."""
    own = (1 + floor_div(a + task.J, task.T)) * task.C

    def step(L: Number) -> Number:
        return _interference_preemptive(taskset, task, a, L) + own

    L, _its, converged = fixed_point(step, own, limit=limit)
    if not converged:
        return L - a if L - a > task.C else task.C  # already past limit
    r = L - a
    return r if r > task.C else task.C


def edf_nonpreemptive_response_at(
    taskset: TaskSet,
    task: Task,
    a: Number,
    limit: Number,
    blocking_subtract_one: bool = True,
) -> Number:
    """``rᵢ(a)`` of eq. (9).

    ``blocking_subtract_one=False`` charges the full ``Cⱼ`` as blocking —
    the continuous-time-safe variant eq. (18) uses for messages (a
    request may be staged "marginally before" the token passes).
    """
    own = floor_div(a + task.J, task.T) * task.C
    B = blocking_from(
        (j for j in taskset if j.D > a + task.D),
        subtract_one=blocking_subtract_one,
    )

    def step(L: Number) -> Number:
        return B + _interference_nonpreemptive(taskset, task, a, L) + own

    L, _its, converged = fixed_point(step, step(0), limit=limit)
    r = task.C + L - a
    return r if r > task.C else task.C


def edf_response_time(
    taskset: TaskSet,
    task: Task,
    preemptive: bool = True,
    limit_factor: Number = 4,
    blocking_subtract_one: bool = True,
) -> ResponseTime:
    """Worst-case EDF response time of ``task`` (eq. (7)).

    The per-offset busy-period iteration is capped at
    ``limit_factor * (L + D + J)``; an offset whose iteration escapes the
    cap contributes a response beyond the deadline, so the task is
    reported unschedulable (never an infinite loop).
    """
    if taskset.utilization > 1.0 + 1e-12:
        return ResponseTime(task=task, value=None)
    b_seed = 0
    if not preemptive:
        b_seed = blocking_from(taskset, subtract_one=blocking_subtract_one)
    if b_seed > 0 and taskset.utilization > 1.0 - 1e-12:
        # U == 1: a blocking-seeded busy period never drains, but r_i(a)
        # is eventually periodic in ``a`` with the hyperperiod, so one
        # hyperperiod past the plain busy period is an exhaustive scan.
        L0 = synchronous_busy_period(taskset, include_jitter=True)
        H = taskset.hyperperiod() or max(t.T for t in taskset)
        L = L0 + H + max(t.D for t in taskset)
    else:
        L = synchronous_busy_period(taskset, include_jitter=True, blocking=b_seed)
    limit = limit_factor * (L + task.D + task.J) + task.C
    best: Number = 0
    best_a: Number = 0
    offsets = _candidate_offsets(taskset, task, L)

    if fast_path_enabled() and taskset.all_int and type(limit) is int:
        # Offset-invariant data (interference set sorted by deadline,
        # blocking suffix-maxima) is prepared once; each offset is then
        # a prefix slice + bisect + one monomorphic iteration.
        profile = kernels.EdfProfile(taskset, task, blocking_subtract_one)
        C, T, D, J = task.C, task.T, task.D, task.J
        for a in offsets:
            dl = a + D
            interferers = profile.in_scope(dl)
            if preemptive:
                own = (1 + (a + J) // T) * C
                r = kernels.edf_p_response_at(C, own, interferers, a, limit)
            else:
                own = ((a + J) // T) * C
                r = kernels.edf_np_response_at(
                    C, own, profile.blocking_at(dl), interferers, a, limit
                )
            if r > best:
                best, best_a = r, a
        return ResponseTime(task=task, value=best, critical_a=best_a)

    for a in offsets:
        if preemptive:
            r = edf_preemptive_response_at(taskset, task, a, limit)
        else:
            r = edf_nonpreemptive_response_at(
                taskset, task, a, limit,
                blocking_subtract_one=blocking_subtract_one,
            )
        if r > best:
            best, best_a = r, a
    return ResponseTime(task=task, value=best, critical_a=best_a)


def edf_rta(taskset: TaskSet, preemptive: bool = True) -> AnalysisResult:
    """Whole-set EDF response-time analysis (eqs. (6)–(10))."""
    per_task = tuple(
        edf_response_time(taskset, t, preemptive=preemptive) for t in taskset
    )
    return AnalysisResult(
        schedulable=all(rt.schedulable for rt in per_task),
        per_task=per_task,
        test="edf-preemptive-rta" if preemptive else "edf-nonpreemptive-rta",
    )
