"""PROFIBUS network model and message schedulability analyses (§3–§4).

Layering:

* :mod:`~repro.profibus.phy`, :mod:`~repro.profibus.frames`,
  :mod:`~repro.profibus.cycle` — the DIN 19245 timing substrate (bit
  times, telegrams, message-cycle lengths);
* :mod:`~repro.profibus.stream`, :mod:`~repro.profibus.network` — the
  system model (streams, masters, logical ring);
* :mod:`~repro.profibus.timing` — token-cycle bounds, eqs. (13)–(14);
* :mod:`~repro.profibus.fcfs` / :mod:`~repro.profibus.dm` /
  :mod:`~repro.profibus.edf` — the three message analyses,
  eqs. (11)–(12) and (16)–(18);
* :mod:`~repro.profibus.ttr` — TTR derivation, eq. (15) and the
  binary-search generalisation.
"""

from .cycle import (
    MessageCycleSpec,
    attempt_time,
    cycle_time,
    failed_attempt_time,
    token_pass_time,
)
from .dm import dm_analysis, dm_response_time_paper_form, dm_response_times
from .edf import edf_analysis, edf_response_times
from .fcfs import fcfs_analysis
from .fp import (
    djm_analysis,
    fp_analysis,
    fp_response_times,
    opa_analysis,
    stack_depth_analysis,
)
from .fcfs import max_feasible_ttr as fcfs_max_feasible_ttr
from .gap import (
    gap_aware_cm,
    gap_aware_tcycle,
    gap_aware_tdel,
    gap_cycle_bits,
)
from .frames import (
    SD2_MAX_PAYLOAD,
    SHORT_ACK,
    TOKEN_FRAME,
    Frame,
    FrameType,
    frame_for_payload,
)
from .network import Master, Network, Slave
from .phy import (
    BITS_PER_CHAR,
    STANDARD_BAUD_RATES,
    PhyParameters,
    bits_to_seconds,
    char_time_bits,
    seconds_to_bits,
)
from .bandwidth import (
    BandwidthReport,
    bandwidth_advantage,
    high_demand_per_rotation,
    low_priority_bandwidth,
)
from .results import NetworkAnalysis, StreamResponse
from .serialization import (
    ScenarioFormatError,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from .stream import MessageStream
from .sweep import (
    SweepRow,
    baud_sweep,
    deadline_scale_sweep,
    rows_to_csv,
    ttr_sweep,
)
from .timing import (
    TokenCycleReport,
    longest_cycle,
    longest_high_cycle,
    tcycle,
    tdel,
    tdel_refined,
    token_cycle_report,
)
from .ttr import analyse, max_feasible_ttr, schedulable_with_ttr, ttr_advantage

__all__ = [
    "BITS_PER_CHAR",
    "BandwidthReport",
    "ScenarioFormatError",
    "bandwidth_advantage",
    "high_demand_per_rotation",
    "load_network",
    "low_priority_bandwidth",
    "network_from_dict",
    "network_to_dict",
    "save_network",
    "Frame",
    "FrameType",
    "Master",
    "MessageCycleSpec",
    "MessageStream",
    "Network",
    "NetworkAnalysis",
    "PhyParameters",
    "SD2_MAX_PAYLOAD",
    "SHORT_ACK",
    "STANDARD_BAUD_RATES",
    "Slave",
    "SweepRow",
    "baud_sweep",
    "deadline_scale_sweep",
    "rows_to_csv",
    "ttr_sweep",
    "StreamResponse",
    "TOKEN_FRAME",
    "TokenCycleReport",
    "analyse",
    "attempt_time",
    "bits_to_seconds",
    "char_time_bits",
    "cycle_time",
    "djm_analysis",
    "dm_analysis",
    "fp_analysis",
    "fp_response_times",
    "opa_analysis",
    "stack_depth_analysis",
    "dm_response_time_paper_form",
    "dm_response_times",
    "edf_analysis",
    "edf_response_times",
    "failed_attempt_time",
    "fcfs_analysis",
    "fcfs_max_feasible_ttr",
    "frame_for_payload",
    "gap_aware_cm",
    "gap_aware_tcycle",
    "gap_aware_tdel",
    "gap_cycle_bits",
    "longest_cycle",
    "longest_high_cycle",
    "max_feasible_ttr",
    "schedulable_with_ttr",
    "seconds_to_bits",
    "tcycle",
    "tdel",
    "tdel_refined",
    "token_cycle_report",
    "token_pass_time",
    "ttr_advantage",
]
