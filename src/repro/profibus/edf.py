"""EDF message analysis for the AP-level priority queue — eqs. (17)–(18).

The §4.3 transfer for EDF dispatching: apply the non-preemptive EDF
response-time analysis of eqs. (9)–(10) with every message cycle costing
one token cycle (``C → Tcycle``, all cycles assumed equal)::

    R_i(a) = max( Tcycle, Tcycle + L_i(a) − a )                 (17)
    L_i(a) = T*cycle(a) + W_i(a, L_i(a)) + ⌊a/T_i⌋·Tcycle       (18)
    W_i(a,t) = Σ_{j≠i, D_j ≤ a+D_i}
               min( 1+⌊(t+J_j)/T_j⌋, 1+⌊(a+D_i−D_j+J_j)/T_j⌋ ) · Tcycle

with ``T*cycle(a) = Tcycle`` when some other stream has
``D_j > a + D_i`` (one staged later-deadline request blocks a full token
cycle — no ``−1`` here: requests can be staged "marginally before" the
token passes) and 0 otherwise.  Implemented by building a core task set
with ``C = Tcycle`` and calling
:func:`repro.core.edf_rta.edf_response_time` with
``blocking_subtract_one=False``.  As with DM, only same-master streams
interfere; the rest of the network lives inside ``Tcycle``.
"""

from __future__ import annotations

from typing import List, Optional

from ..perf import kernels
from ..perf.config import fast_path_enabled
from ..core.edf_rta import edf_response_time
from ..core.task import TaskSet
from .network import Master, Network, master_memo, stream_specs
from .results import NetworkAnalysis, StreamResponse
from .timing import tcycle as compute_tcycle


def _staged_taskset(master: Master, tc: int) -> TaskSet:
    # Shared across sweep rows / repeated analyses of the same immutable
    # master: the TaskSet carries its own memoised invariants.
    if not fast_path_enabled():
        return TaskSet(s.as_token_task(tc) for s in master.high_streams)
    memo = master_memo(master)
    entry = memo.get("edf_ts")  # single slot: bounded under TTR sweeps
    if entry is not None and entry[0] == tc:
        return entry[1]
    ts = TaskSet(s.as_token_task(tc) for s in master.high_streams)
    memo["edf_ts"] = (tc, ts)
    return ts


def edf_response_times(master: Master, tc: int) -> List[StreamResponse]:
    """Eqs. (17)–(18) for every high-priority stream of one master
    (memoised per master instance and Tcycle)."""
    streams = master.high_streams
    if not streams:
        return []
    fast = fast_path_enabled()
    if fast:
        memo = master_memo(master)
        entry = memo.get("edf_rows")  # single slot, see _staged_taskset
        if entry is not None and entry[0] == tc:
            return list(entry[1])  # callers own their copy

    specs = stream_specs(master) if fast else None
    if specs is not None and type(tc) is int:
        values = kernels.edf_master_response_times(specs, tc)
    else:
        ts = _staged_taskset(master, tc)
        values = [
            (rt.value, rt.critical_a)
            for rt in (
                # lint: disable=REP010 — int-domain call: the EDF RTA's
                # float branch is its generic-Number utilisation guard;
                # all-int tasksets take the exact path
                edf_response_time(
                    ts, ts[idx], preemptive=False,
                    blocking_subtract_one=False,
                )
                for idx in range(len(streams))
            )
        ]
    out = [
        StreamResponse(
            master=master.name,
            stream=s,
            R=r,
            Q=None if r is None else r - tc,
            critical_a=a,
        )
        for s, (r, a) in zip(streams, values)
    ]
    if fast:
        memo["edf_rows"] = (tc, list(out))  # private copy
    return out


def edf_analysis(
    network: Network, ttr: Optional[int] = None, refined: bool = False
) -> NetworkAnalysis:
    """Whole-network eqs. (17)–(18) analysis."""
    if ttr is None:
        ttr = network.require_ttr()
    tc = compute_tcycle(network, ttr, refined=refined)
    per_stream = []
    for master in network.masters:
        per_stream.extend(edf_response_times(master, tc))
    return NetworkAnalysis(
        policy="edf",
        ttr=ttr,
        tcycle=tc,
        per_stream=tuple(per_stream),
        detail={"refined": refined},
    )
