"""Message streams — the paper's ``Sh_i^k`` (footnote 6).

A *message stream* is a temporal sequence of message cycles related to
one control variable (reading a sensor, updating an actuator).  Each
stream has the usual real-time attributes — period ``T``, relative
deadline ``D``, release jitter ``J`` (all in bit times) — plus the
logical description of its message cycle, from which the exact cycle
length ``Ch`` is derived for a given PHY parameter set.

Streams are either **high priority** (the real-time traffic the paper
analyses) or **low priority** (background traffic which matters only
through the blocking terms of eq. (13)).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.task import Task
from ..perf.config import fast_path_enabled
from .cycle import MessageCycleSpec, cycle_time
from .phy import PhyParameters


@dataclass(frozen=True)
class MessageStream:
    """One message stream of a master station."""

    name: str
    T: int
    D: Optional[int] = None
    J: int = 0
    high_priority: bool = True
    spec: MessageCycleSpec = MessageCycleSpec()
    #: Explicit cycle length in bit times; overrides ``spec`` when set
    #: (handy for abstract scenarios where only ``Ch`` matters).
    C_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.T <= 0:
            raise ValueError(f"stream {self.name!r}: T must be > 0")
        if self.D is None:
            object.__setattr__(self, "D", self.T)
        if self.D <= 0:
            raise ValueError(f"stream {self.name!r}: D must be > 0")
        if self.J < 0:
            raise ValueError(f"stream {self.name!r}: J must be >= 0")
        if self.C_bits is not None and self.C_bits <= 0:
            raise ValueError(f"stream {self.name!r}: C_bits must be > 0")

    def __getstate__(self):
        # Keep memoised derivations (leading underscore) out of pickles;
        # workers rebuild them locally.
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_")}

    def cycle_bits(self, phy: PhyParameters) -> int:
        """Worst-case message-cycle length ``Ch`` in bit times.

        Memoised per PHY parameter set: streams are immutable and the
        sweep/batch drivers evaluate the same stream against the same
        PHY thousands of times.
        """
        if self.C_bits is not None:
            return self.C_bits
        if not fast_path_enabled():
            return cycle_time(self.spec, phy)
        # Single-slot identity cache: a stream is evaluated against one
        # PHY in practice, and identity comparison avoids hashing the
        # parameter set on every lookup.
        memo = getattr(self, "_cycle_memo", None)
        if memo is not None and memo[0] is phy:
            return memo[1]
        bits = cycle_time(self.spec, phy)
        object.__setattr__(self, "_cycle_memo", (phy, bits))
        return bits

    def as_task(self, phy: PhyParameters) -> Task:
        """View this stream as a core :class:`~repro.core.task.Task`
        with ``C = Ch`` (used by FCFS reasoning and the simulator)."""
        return Task(
            C=self.cycle_bits(phy), T=self.T, D=self.D, J=self.J, name=self.name
        )

    def as_token_task(self, tcycle: int) -> Task:
        """The §4.3 substitution: ``C → Tcycle`` (eqs. (16)–(18)).

        Built by direct field assignment — the stream's attributes are
        already validated and this runs once per stream per sweep row;
        only the one input the stream does not own is checked.
        """
        if tcycle <= 0:
            raise ValueError(f"stream {self.name!r}: Tcycle must be > 0")
        task = object.__new__(Task)
        task.__dict__.update(
            C=tcycle, T=self.T, D=self.D, J=self.J, priority=None,
            name=self.name,
        )
        return task

    def with_jitter(self, J: int) -> "MessageStream":
        return replace(self, J=J)

    def with_deadline(self, D: int) -> "MessageStream":
        return replace(self, D=D)
