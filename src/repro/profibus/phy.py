"""PROFIBUS physical-layer timing model.

All internal time values in this library are **bit times** (integers):
one bit time is ``1/baud`` seconds, a UART character is 11 bit times
(start bit + 8 data + even parity + stop, per DIN 19245 part 1).  Using
integer bit times keeps every analysis exact (see
:mod:`repro.core.timeops`) and matches how the standard itself specifies
its timers (T_SL, T_SDR, T_ID are all given in bit times).

:class:`PhyParameters` collects the protocol timers a station needs:

* ``tsdr_min`` / ``tsdr_max`` — station delay of a responder (time from
  the end of an action frame until the responder starts its reply);
* ``tid1`` — idle time the initiator inserts after receiving a reply
  before starting its next transmission;
* ``tid2`` — idle time after sending an unacknowledged frame (the token);
* ``tsl`` — slot time: how long the initiator waits for the first
  character of a reply before it declares a timeout and retries;
* ``max_retry`` — retry limit after slot-time expiry.

Defaults follow the DIN 19245 recommendations for 500 kbit/s.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bits per UART character on PROFIBUS (start + 8 data + parity + stop).
BITS_PER_CHAR = 11

#: Standard PROFIBUS (FMS/DP) baud rates, bit/s.
STANDARD_BAUD_RATES = (
    9_600,
    19_200,
    93_750,
    187_500,
    500_000,
    1_500_000,
    12_000_000,
)


def char_time_bits(chars: int) -> int:
    """Transmission time of ``chars`` UART characters, in bit times."""
    if chars < 0:
        raise ValueError("chars must be >= 0")
    return chars * BITS_PER_CHAR


def bits_to_seconds(bits: float, baud_rate: int) -> float:
    """Convert a bit-time duration to seconds at ``baud_rate``."""
    if baud_rate <= 0:
        raise ValueError("baud_rate must be positive")
    return bits / float(baud_rate)


def seconds_to_bits(seconds: float, baud_rate: int) -> int:
    """Convert seconds to (rounded-up) integer bit times at ``baud_rate``."""
    if seconds < 0:
        raise ValueError("seconds must be >= 0")
    import math

    return math.ceil(seconds * baud_rate - 1e-9)


@dataclass(frozen=True)
class PhyParameters:
    """Protocol timer set for one network (all values in bit times)."""

    baud_rate: int = 500_000
    tsdr_min: int = 11
    tsdr_max: int = 60
    tid1: int = 37
    tid2: int = 60
    tsl: int = 100
    max_retry: int = 1

    def __post_init__(self) -> None:
        if self.baud_rate <= 0:
            raise ValueError("baud_rate must be positive")
        if self.tsdr_min < 0 or self.tsdr_max < self.tsdr_min:
            raise ValueError(
                f"need 0 <= tsdr_min <= tsdr_max, got {self.tsdr_min}..{self.tsdr_max}"
            )
        for field_name in ("tid1", "tid2", "tsl"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        if self.max_retry < 0:
            raise ValueError("max_retry must be >= 0")
        if self.tsl <= self.tsdr_max:
            raise ValueError(
                "slot time tsl must exceed tsdr_max or every cycle times out"
            )

    def bits_to_seconds(self, bits: float) -> float:
        return bits_to_seconds(bits, self.baud_rate)

    def ms(self, bits: float) -> float:
        """Convenience: bit times → milliseconds (for reports)."""
        return self.bits_to_seconds(bits) * 1e3
