"""TTR parameter derivation (§3.4) and its priority-based generalisation.

For FCFS, eq. (15) gives the admissible TTR in closed form
(:func:`repro.profibus.fcfs.max_feasible_ttr`).  For the §4 priority
architectures no closed form exists, but every response-time bound in
eqs. (16)–(18) is **monotone non-decreasing in Tcycle** and hence in
TTR, so the largest feasible TTR can be found by binary search — that is
what :func:`max_feasible_ttr` does for any policy.

A *larger* TTR is desirable in practice (more budget per rotation for
low-priority/background traffic); the benches therefore report the
maximum feasible TTR per policy as a second figure of merit next to
response times.
"""

from __future__ import annotations

from typing import Callable, Optional

from .dm import dm_analysis
from .edf import edf_analysis
from .fcfs import fcfs_analysis
from .fcfs import max_feasible_ttr as fcfs_max_ttr
from .network import Network
from .results import NetworkAnalysis

_POLICIES: dict = {
    "fcfs": fcfs_analysis,
    "dm": dm_analysis,
    "edf": edf_analysis,
}


def analyse(
    network: Network,
    policy: str,
    ttr: Optional[int] = None,
    refined: bool = False,
) -> NetworkAnalysis:
    """Dispatch to the FCFS / DM / EDF analysis by name."""
    try:
        fn = _POLICIES[policy]
    except KeyError:
        raise ValueError(f"unknown policy {policy!r}; pick from {sorted(_POLICIES)}")
    return fn(network, ttr, refined=refined)


def schedulable_with_ttr(
    network: Network, policy: str, ttr: int, refined: bool = False
) -> bool:
    """Is the network schedulable under ``policy`` with this TTR?"""
    if ttr < network.ring_latency():
        return False
    return analyse(network, policy, ttr, refined=refined).schedulable


def max_feasible_ttr(
    network: Network,
    policy: str = "fcfs",
    refined: bool = False,
    hi: Optional[int] = None,
) -> Optional[int]:
    """Largest TTR (≥ ring latency) keeping ``policy`` schedulable.

    Uses eq. (15) directly for FCFS; binary search on the monotone
    feasibility predicate for DM/EDF.  Returns ``None`` when even the
    minimum TTR fails.
    """
    lo = network.ring_latency()
    if policy == "fcfs":
        closed = fcfs_max_ttr(network, refined=refined)
        if closed is None or closed < lo:
            return None
        # eq. (15) is exact for FCFS, but keep the contract honest:
        return closed
    if not schedulable_with_ttr(network, policy, lo, refined=refined):
        return None
    if hi is None:
        hi = max(
            (s.D for m in network.masters for s in m.high_streams),
            default=lo,
        )
        hi = max(hi, lo)
    # Invariant: lo feasible. Grow hi until infeasible or proven maximal.
    if schedulable_with_ttr(network, policy, hi, refined=refined):
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if schedulable_with_ttr(network, policy, mid, refined=refined):
            lo = mid
        else:
            hi = mid
    return lo


def ttr_advantage(network: Network, refined: bool = False) -> dict:
    """Per-policy maximum feasible TTR — the §5 claim as one table row."""
    return {
        policy: max_feasible_ttr(network, policy, refined=refined)
        for policy in ("fcfs", "dm", "edf")
    }
