"""DM message analysis for the AP-level priority queue — eq. (16) (§4.3).

With the §4 architecture — a deadline-monotonic priority queue at the
application-process level feeding a communication-stack queue limited to
**one** pending request — each token visit transmits the one staged
request, so a message effectively "executes" for one token cycle.  The
paper's transfer is therefore literal: take the non-preemptive
fixed-priority response-time analysis of eq. (1)–(2) and substitute
``C → Tcycle``::

    w_i = B_i + Σ_{j∈hp(i)} ⌈(w_i + J_j)/T_j⌉ · Tcycle
    R_i = w_i + Tcycle
    B_i = Tcycle  if lp(i) ≠ ∅  (a just-staged lower-priority request)
        = 0       otherwise     (the printed "T*cycle = 0" case)

Only streams **within the same master** interfere here — other masters'
traffic is already inside ``Tcycle``.  We implement the substitution by
building a core :class:`~repro.core.task.TaskSet` with ``C = Tcycle``
per stream and running :func:`repro.core.rta_fixed.nonpreemptive_rta`;
``paper_form=True`` instead iterates the equation exactly as printed
(non-strict ceiling, blocking merged into the base term) for the
ablation bench — see DESIGN.md §2 for why the Tindell form is primary.
"""

from __future__ import annotations

from typing import List, Optional

from ..perf import kernels
from ..perf.config import fast_path_enabled
from ..core.priority import assign_deadline_monotonic
from ..core.rta_fixed import nonpreemptive_response_time
from ..core.task import TaskSet
from ..core.timeops import ceil_div, fixed_point, fixed_point_int
from .network import Master, Network, master_memo, stream_specs
from .results import NetworkAnalysis, StreamResponse
from .timing import tcycle as compute_tcycle


def _master_taskset(master: Master, tc: int) -> Optional[TaskSet]:
    streams = master.high_streams
    if not streams:
        return None
    if not fast_path_enabled():
        return assign_deadline_monotonic(
            TaskSet(s.as_token_task(tc) for s in streams)
        )
    # Single-slot per master: bounded memory under fine-grained TTR
    # sweeps/bisections that probe many distinct Tcycle values.
    memo = master_memo(master)
    entry = memo.get("dm_ts")
    if entry is not None and entry[0] == tc:
        return entry[1]
    ts = assign_deadline_monotonic(
        TaskSet(s.as_token_task(tc) for s in streams)
    )
    memo["dm_ts"] = (tc, ts)
    return ts


def dm_response_times(master: Master, tc: int) -> List[StreamResponse]:
    """Eq. (16) for every high-priority stream of one master (memoised
    per master instance and Tcycle)."""
    streams = master.high_streams
    if not streams:
        return []
    fast = fast_path_enabled()
    if fast:
        memo = master_memo(master)
        entry = memo.get("dm_rows")  # single slot, see _master_taskset
        if entry is not None and entry[0] == tc:
            return list(entry[1])  # callers own their copy

    specs = stream_specs(master) if fast else None
    if specs is not None and type(tc) is int:
        values = kernels.dm_master_response_times(specs, tc)
    else:
        ts = _master_taskset(master, tc)
        values = [
            # lint: disable=REP010 — int-domain call: the RTA helper's
            # float branch is its generic-Number API; all-int tasksets
            # take the exact path (proven by the cross-mode oracles)
            nonpreemptive_response_time(ts, ts[idx]).value
            for idx in range(len(streams))
        ]
    out = [
        StreamResponse(
            master=master.name,
            stream=s,
            R=r,
            Q=None if r is None else r - tc,
        )
        for s, r in zip(streams, values)
    ]
    if fast:
        memo["dm_rows"] = (tc, list(out))  # private copy
    return out


def dm_response_time_paper_form(
    master: Master, tc: int, stream_name: str
) -> Optional[int]:
    """The eq. (16) recursion exactly as printed.

    ``R_i = T*cycle + Σ_{j∈hp(i)} ⌈(R_i + J_j)/T_j⌉·Tcycle`` with
    ``T*cycle = Tcycle`` except 0 for the lowest-priority stream.
    Kept verbatim for the ablation; see the module docstring.
    """
    ts = _master_taskset(master, tc)
    if ts is None:
        raise KeyError(stream_name)
    task = ts.by_name(stream_name)
    hp = ts.hp(task)
    lowest = not ts.lp(task)
    base = 0 if lowest else tc

    def step(r):
        total = base
        for j in hp:
            # lint: disable=REP010 — int-domain call: ceil_div's float
            # branch is its generic-Number API; int args stay exact
            total = total + ceil_div(r + j.J, j.T) * tc
        return total

    limit = 64 * (task.D + task.J) + tc
    driver = (
        fixed_point_int
        if fast_path_enabled() and ts.all_int and type(tc) is int
        else fixed_point
    )
    value, _its, converged = driver(step, 0, limit=limit)
    return value if converged else None


def dm_analysis(
    network: Network, ttr: Optional[int] = None, refined: bool = False
) -> NetworkAnalysis:
    """Whole-network eq. (16) analysis (per-master independence)."""
    if ttr is None:
        ttr = network.require_ttr()
    tc = compute_tcycle(network, ttr, refined=refined)
    per_stream = []
    for master in network.masters:
        per_stream.extend(dm_response_times(master, tc))
    return NetworkAnalysis(
        policy="dm",
        ttr=ttr,
        tcycle=tc,
        per_stream=tuple(per_stream),
        detail={"refined": refined},
    )
