"""JSON (de)serialisation of network scenarios.

Lets users keep network descriptions in version-controlled files and
feed them to the CLI (``profibus-rt analyse --file plant.json``).  The
format mirrors the object model one-to-one::

    {
      "phy": {"baud_rate": 500000, "tsdr_max": 60, ...},
      "ttr": 3000,
      "masters": [
        {"address": 1, "name": "cell",
         "streams": [
            {"name": "axis", "T": 75000, "D": 22500, "J": 0,
             "high_priority": true,
             "cycle": {"req_payload": 8, "resp_payload": 0,
                        "short_ack": true}},
            {"name": "raw", "T": 10000, "C_bits": 777}
         ]}
      ],
      "slaves": [{"address": 10}]
    }

Unknown keys raise immediately (typo protection — a silently-ignored
``"dealine"`` would make an unschedulable plant look fine).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

from .cycle import MessageCycleSpec
from .network import Master, Network, Slave
from .phy import PhyParameters
from .stream import MessageStream


class ScenarioFormatError(ValueError):
    """Raised for malformed scenario documents."""


def _check_keys(obj: Dict[str, Any], allowed, where: str) -> None:
    unknown = set(obj) - set(allowed)
    if unknown:
        raise ScenarioFormatError(
            f"unknown key(s) {sorted(unknown)} in {where}; allowed: {sorted(allowed)}"
        )


def _phy_from(obj: Dict[str, Any]) -> PhyParameters:
    fields = {f.name for f in dataclasses.fields(PhyParameters)}
    _check_keys(obj, fields, "phy")
    return PhyParameters(**obj)


def _cycle_from(obj: Dict[str, Any]) -> MessageCycleSpec:
    fields = {f.name for f in dataclasses.fields(MessageCycleSpec)}
    _check_keys(obj, fields, "cycle")
    return MessageCycleSpec(**obj)


def _stream_from(obj: Dict[str, Any]) -> MessageStream:
    allowed = {"name", "T", "D", "J", "high_priority", "cycle", "C_bits"}
    _check_keys(obj, allowed, f"stream {obj.get('name', '?')!r}")
    kwargs = {k: obj[k] for k in ("name", "T", "D", "J", "high_priority",
                                  "C_bits") if k in obj}
    if "cycle" in obj:
        kwargs["spec"] = _cycle_from(obj["cycle"])
    try:
        return MessageStream(**kwargs)
    except TypeError as exc:
        raise ScenarioFormatError(f"bad stream {obj!r}: {exc}") from exc


def _master_from(obj: Dict[str, Any]) -> Master:
    _check_keys(obj, {"address", "name", "streams"}, "master")
    return Master(
        address=obj["address"],
        name=obj.get("name", ""),
        streams=tuple(_stream_from(s) for s in obj.get("streams", [])),
    )


def network_from_dict(doc: Dict[str, Any]) -> Network:
    """Build a :class:`Network` from a parsed scenario document."""
    if not isinstance(doc, dict):
        raise ScenarioFormatError("scenario document must be a JSON object")
    _check_keys(doc, {"phy", "ttr", "masters", "slaves"}, "scenario")
    if "masters" not in doc:
        raise ScenarioFormatError("scenario needs a 'masters' list")
    return Network(
        masters=tuple(_master_from(m) for m in doc["masters"]),
        slaves=tuple(
            Slave(address=s["address"], name=s.get("name", ""))
            for s in doc.get("slaves", [])
        ),
        phy=_phy_from(doc.get("phy", {})),
        ttr=doc.get("ttr"),
    )


def _field_defaults(cls) -> Dict[str, Any]:
    """Field name → declared default (``MISSING`` for required fields)."""
    return {
        f.name: (f.default_factory() if f.default_factory
                 is not dataclasses.MISSING else f.default)
        for f in dataclasses.fields(cls)
    }


_CYCLE_DEFAULTS = _field_defaults(MessageCycleSpec)
_STREAM_DEFAULTS = _field_defaults(MessageStream)


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Inverse of :func:`network_from_dict` (round-trip safe).

    Optional fields are omitted exactly when they equal the dataclass
    *defaults* (not when they are merely falsy): a ``max_retry`` of 0
    overrides the PHY retry limit and must survive the round trip, and
    any non-falsy default added to :class:`MessageCycleSpec` later stays
    round-trip exact without touching this function.
    """
    def stream_doc(s: MessageStream) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": s.name, "T": s.T, "D": s.D}
        if s.J != _STREAM_DEFAULTS["J"]:
            out["J"] = s.J
        if s.high_priority != _STREAM_DEFAULTS["high_priority"]:
            out["high_priority"] = s.high_priority
        if s.C_bits is not None:
            out["C_bits"] = s.C_bits
        else:
            out["cycle"] = {
                k: v
                for k, v in dataclasses.asdict(s.spec).items()
                if v != _CYCLE_DEFAULTS[k]
            }
        return out

    doc: Dict[str, Any] = {
        "phy": dataclasses.asdict(network.phy),
        "masters": [
            {
                "address": m.address,
                "name": m.name,
                "streams": [stream_doc(s) for s in m.streams],
            }
            for m in network.masters
        ],
    }
    if network.ttr is not None:
        doc["ttr"] = network.ttr
    if network.slaves:
        doc["slaves"] = [
            {"address": s.address, "name": s.name} for s in network.slaves
        ]
    return doc


#: Version tag mixed into every fingerprint.  Bump it (in
#: :mod:`repro.schemas`) whenever the canonical scenario-document form
#: changes meaning (a new semantic field, a changed default) so stale
#: value-keyed cache entries and checkpoint rows from older code can
#: never collide with new ones.
from ..schemas import FINGERPRINT_SCHEMA


def network_fingerprint(network: Network) -> str:
    """Canonical content hash of a network — the value-identity key.

    Two networks get the same fingerprint exactly when their canonical
    scenario documents are identical: the hash runs over the
    :func:`network_to_dict` form serialised with sorted keys, so field
    order in a source file, formatting, and default-valued optional
    fields all normalise away, while any semantic change (a period, a
    deadline, jitter, PHY parameters, ring order, TTR) changes the
    digest.  This is the shared-cache key for the analysis service and
    the identity key for corpus entries and fuzz checkpoints — contexts
    where *fresh value-equal instances* must collide, which is exactly
    what the instance-keyed analysis memos intentionally never do.
    """
    return network_doc_fingerprint(network_to_dict(network))


def network_doc_fingerprint(doc: Dict[str, Any]) -> str:
    """:func:`network_fingerprint` of an already-canonical scenario
    document (one produced by :func:`network_to_dict`).  Pure hashing,
    no (de)serialisation — corpus-entry validation uses this so a stored
    fingerprint can be audited without flowing through the late-bound
    serialisation seam the mutation harness patches."""
    payload = json.dumps(
        {"schema": FINGERPRINT_SCHEMA, "network": doc},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_network(path: Union[str, Path]) -> Network:
    """Read a scenario file (JSON) into a :class:`Network`."""
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioFormatError(f"{path}: invalid JSON: {exc}") from exc
    return network_from_dict(doc)


def save_network(network: Network, path: Union[str, Path]) -> None:
    """Write a :class:`Network` as a scenario file (JSON, stable order)."""
    Path(path).write_text(
        json.dumps(network_to_dict(network), indent=2, sort_keys=True) + "\n"
    )
