"""Result types for the PROFIBUS message analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .network import Master
from .stream import MessageStream


@dataclass(frozen=True)
class StreamResponse:
    """Worst-case figures for one high-priority message stream."""

    master: str
    stream: MessageStream
    #: Worst-case response time R (release → end of message cycle), bit times.
    R: Optional[int]
    #: Worst-case queuing delay Q = R − (own transmission bound), bit times.
    Q: Optional[int] = None
    #: For EDF: the release offset ``a`` attaining the maximum.
    critical_a: Optional[int] = None

    @property
    def schedulable(self) -> bool:
        return self.R is not None and self.R <= self.stream.D

    @property
    def slack(self) -> Optional[int]:
        if self.R is None:
            return None
        return self.stream.D - self.R


@dataclass(frozen=True)
class NetworkAnalysis:
    """Outcome of a whole-network message schedulability analysis."""

    policy: str  # "fcfs" | "dm" | "edf"
    ttr: int
    tcycle: int
    per_stream: Sequence[StreamResponse] = field(default_factory=tuple)
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def schedulable(self) -> bool:
        return all(sr.schedulable for sr in self.per_stream)

    def __bool__(self) -> bool:
        return self.schedulable

    def response(self, master: str, stream: str) -> StreamResponse:
        for sr in self.per_stream:
            if sr.master == master and sr.stream.name == stream:
                return sr
        raise KeyError((master, stream))

    def for_master(self, master: str) -> List[StreamResponse]:
        return [sr for sr in self.per_stream if sr.master == master]

    @property
    def worst_response(self) -> Optional[int]:
        vals = [sr.R for sr in self.per_stream if sr.R is not None]
        return max(vals) if vals else None

    def summary(self) -> List[str]:
        lines = [
            f"policy={self.policy} TTR={self.ttr} Tcycle={self.tcycle} "
            f"schedulable={self.schedulable}"
        ]
        for sr in self.per_stream:
            r = "∞" if sr.R is None else str(sr.R)
            mark = "ok" if sr.schedulable else "MISS"
            lines.append(
                f"  {sr.master}/{sr.stream.name}: R={r} D={sr.stream.D} [{mark}]"
            )
        return lines
