"""Generalised fixed-priority message analysis and message-level OPA.

Eq. (16) is DM-specific only through the priority order; the underlying
transfer (``C → Tcycle`` into the non-preemptive RTA) works for *any*
fixed-priority assignment of the AP queue.  This module exposes that
generality:

* :func:`fp_analysis` — eq. (16) under a caller-chosen assignment
  (``assign`` maps a core TaskSet to a prioritised one), e.g.
  ``assign_dj_monotonic`` when streams carry release jitter (DM is not
  optimal then);
* :func:`opa_analysis` — Audsley's optimal priority assignment run
  per master on the token-task sets: finds a feasible order whenever
  one exists for the eq. (16) test, strictly dominating any fixed rule.

Both are extensions beyond the paper (its §4 fixes DM or EDF), ablated
in bench E9.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.priority import (
    assign_audsley,
    assign_deadline_monotonic,
    assign_dj_monotonic,
)
from ..core.rta_fixed import (
    feasible_at_lowest_nonpreemptive,
    nonpreemptive_response_time,
)
from ..core.task import TaskSet
from .network import Master, Network
from .results import NetworkAnalysis, StreamResponse
from .timing import tcycle as compute_tcycle


def fp_response_times(
    master: Master,
    tc: int,
    assign: Callable[[TaskSet], Optional[TaskSet]],
) -> Optional[List[StreamResponse]]:
    """Eq. (16) under ``assign``; None when ``assign`` yields no order."""
    streams = master.high_streams
    if not streams:
        return []
    ts = assign(TaskSet(s.as_token_task(tc) for s in streams))
    if ts is None:
        return None
    out = []
    for idx, s in enumerate(streams):
        # lint: disable=REP010 — int-domain call: the RTA helper's float
        # branch is its generic-Number API; all-int tasksets stay exact
        rt = nonpreemptive_response_time(ts, ts[idx])
        out.append(
            StreamResponse(
                master=master.name,
                stream=s,
                R=rt.value,
                Q=None if rt.value is None else rt.value - tc,
            )
        )
    return out


def fp_analysis(
    network: Network,
    assign: Callable[[TaskSet], Optional[TaskSet]] = assign_deadline_monotonic,
    ttr: Optional[int] = None,
    refined: bool = False,
    policy_name: str = "fp",
) -> NetworkAnalysis:
    """Whole-network eq. (16) under an arbitrary priority assignment."""
    if ttr is None:
        ttr = network.require_ttr()
    tc = compute_tcycle(network, ttr, refined=refined)
    per_stream: List[StreamResponse] = []
    for master in network.masters:
        rows = fp_response_times(master, tc, assign)
        if rows is None:
            # assignment failed for this master: mark all its streams
            rows = [
                StreamResponse(master=master.name, stream=s, R=None)
                for s in master.high_streams
            ]
        per_stream.extend(rows)
    return NetworkAnalysis(
        policy=policy_name,
        ttr=ttr,
        tcycle=tc,
        per_stream=tuple(per_stream),
        detail={"refined": refined},
    )


def djm_analysis(
    network: Network, ttr: Optional[int] = None, refined: bool = False
) -> NetworkAnalysis:
    """(D − J)-monotonic AP queue — the right rule under release jitter."""
    return fp_analysis(
        network, assign_dj_monotonic, ttr, refined, policy_name="djm"
    )


def opa_analysis(
    network: Network, ttr: Optional[int] = None, refined: bool = False
) -> NetworkAnalysis:
    """Audsley-optimal AP priorities per master (eq. (16) oracle)."""

    def assign(ts: TaskSet) -> Optional[TaskSet]:
        return assign_audsley(ts, feasible_at_lowest_nonpreemptive)

    return fp_analysis(network, assign, ttr, refined, policy_name="opa")


def stack_depth_analysis(
    network: Network,
    depth: int,
    ttr: Optional[int] = None,
    refined: bool = False,
) -> NetworkAnalysis:
    """Eq. (16) generalised to a ``depth``-deep FCFS stack queue.

    The §4 architecture limits the communication-stack queue to one
    pending request precisely because the stack is FCFS: with ``depth``
    staged requests, a newly arrived urgent message can sit behind up to
    ``min(depth, |lp(i)|)`` lower-priority requests it cannot overtake —
    the blocking term grows to that many token cycles::

        wᵢ = min(depth, |lp(i)|)·Tcycle
             + Σ_{j∈hp(i)} ⌈(wᵢ+Jⱼ)/Tⱼ⌉·Tcycle
        Rᵢ = wᵢ + Tcycle

    ``depth=1`` coincides with :func:`~repro.profibus.dm.dm_analysis`.
    This is the analytical counterpart of the E4.b simulator ablation —
    the quantitative argument for the paper's one-deep choice.
    """
    if depth < 1:
        raise ValueError("stack depth must be >= 1")
    if ttr is None:
        ttr = network.require_ttr()
    tc = compute_tcycle(network, ttr, refined=refined)
    per_stream: List[StreamResponse] = []
    from ..core.timeops import fixed_point, fixed_point_int, floor_div
    from ..perf.config import fast_path_enabled

    for master in network.masters:
        streams = master.high_streams
        if not streams:
            continue
        base = assign_deadline_monotonic(
            TaskSet(s.as_token_task(tc) for s in streams)
        )
        for idx, s in enumerate(streams):
            task = base[idx]
            n_lp = len(base.lp(task))
            B = min(depth, n_lp) * tc if n_lp else 0
            hp = base.hp(task)

            def step(w):
                total = B
                for j in hp:
                    total = total + (floor_div(w + j.J, j.T) + 1) * tc
                return total

            limit = 64 * (task.D + task.J) + (depth + 1) * tc
            driver = (
                fixed_point_int
                if fast_path_enabled() and base.all_int and type(tc) is int
                else fixed_point
            )
            value, _its, converged = driver(step, step(0), limit=limit)
            r = value + tc + task.J if converged else None
            per_stream.append(
                StreamResponse(
                    master=master.name,
                    stream=s,
                    R=r,
                    Q=None if r is None else r - tc,
                )
            )
    return NetworkAnalysis(
        policy=f"dm-stack{depth}",
        ttr=ttr,
        tcycle=tc,
        per_stream=tuple(per_stream),
        detail={"stack_depth": depth, "refined": refined},
    )
