"""FCFS message analysis — eqs. (11), (12) and (15) of the paper (§3.2/§3.4).

With the stock PROFIBUS outgoing queue (first-come-first-served), a
master ``k`` with ``nh^k`` high-priority streams can have at most
``nh^k`` pending requests (one per stream — two from the same stream
would already imply a missed deadline), and one of them is served per
token visit.  Hence

    Q_i^k = nh^k · Tcycle − Ch_i^k            (queuing delay)
    R_i^k = Q_i^k + Ch_i^k = nh^k · Tcycle    (eq. (11))

and the stream set is schedulable iff ``Dh_i^k ≥ R_i^k`` for every
stream of every master (eq. (12)).  Since ``R`` grows with ``TTR``
through ``Tcycle = TTR + Tdel``, eq. (15) yields the largest admissible
target rotation time:

    TTR ≤ min_{k,i} ( Dh_i^k / nh^k ) − Tdel
"""

from __future__ import annotations

from typing import Optional

from ..core.timeops import floor_div
from .network import Network
from .results import NetworkAnalysis, StreamResponse
from .timing import tcycle as compute_tcycle
from .timing import tdel as compute_tdel


def fcfs_analysis(
    network: Network, ttr: Optional[int] = None, refined: bool = False
) -> NetworkAnalysis:
    """Eq. (11)/(12) for every high-priority stream of the network."""
    from ..perf.config import fast_path_enabled
    from .network import master_memo

    if ttr is None:
        ttr = network.require_ttr()
    tc = compute_tcycle(network, ttr, refined=refined)
    per_stream = []
    fast = fast_path_enabled()
    phy = network.phy
    for master in network.masters:
        rows = None
        if fast:
            # Single slot per master (bounded under TTR sweeps); the
            # identity check on the PHY avoids hashing it.
            memo = master_memo(master)
            entry = memo.get("fcfs_rows")
            if entry is not None and entry[0] == tc and entry[1] is phy:
                rows = entry[2]
        if rows is None:
            nh = master.nh
            rows = [
                StreamResponse(
                    master=master.name, stream=s, R=nh * tc,
                    Q=nh * tc - s.cycle_bits(phy),
                )
                for s in master.high_streams
            ]
            if fast:
                memo["fcfs_rows"] = (tc, phy, rows)
        per_stream.extend(rows)
    return NetworkAnalysis(
        policy="fcfs",
        ttr=ttr,
        tcycle=tc,
        per_stream=tuple(per_stream),
        detail={"refined": refined},
    )


def max_feasible_ttr(network: Network, refined: bool = False) -> Optional[int]:
    """Eq. (15): largest TTR for which FCFS meets every deadline.

    Returns ``None`` when no TTR at or above the ring latency works
    (i.e. even the most aggressive setting cannot schedule the set).
    Integer bit times: the bound is ``⌊min D/nh⌋ − Tdel``.
    """
    if refined:
        from .timing import tdel_refined

        lateness = tdel_refined(network)
    else:
        lateness = compute_tdel(network)
    best: Optional[int] = None
    for master in network.masters:
        nh = master.nh
        for s in master.high_streams:
            # lint: disable=REP010 — int-domain call: floor_div's float
            # branch is its generic-Number API; int args stay exact
            cand = floor_div(s.D, nh) - lateness
            if best is None or cand < best:
                best = cand
    if best is None:
        # No high-priority streams: any TTR ≥ ring latency is fine.
        return None
    if best < network.ring_latency():
        return None
    return best
