"""Token-cycle analysis — eqs. (13) and (14) of the paper (§3.3).

The token can only be late because a master overruns its token-holding
time ``TTH`` by (at most) one message cycle, after which every following
master that receives the late token may still transmit one high-priority
message.  With

    C_M^k = max( max_i Ch_i^k , Cl^k )        (longest cycle of master k)

the aggregate lateness bound is (eq. (13))

    Tdel = Σ_k C_M^k

and the upper bound on the time between consecutive token arrivals at a
given master is (eq. (14))

    Tcycle = TTR + Tdel.

We also implement the *refined* bound sketched in [14] (and in the
paper's own illustrative scenario): exactly **one** master plays the
overrunner — contributing its longest cycle of either priority — while
each other master, holding a late token, contributes at most its longest
**high-priority** cycle (a master with no high-priority stream passes the
token straight on)::

    Tdel_refined = max_k ( C_M^k + Σ_{j≠k} ChM^j )

which never exceeds eq. (13) and is validated against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..perf.config import fast_path_enabled
from .network import Master, Network, master_memo


def longest_cycle(master: Master, phy) -> int:
    """``C_M^k``: longest message cycle of either priority; 0 if no streams."""
    if not fast_path_enabled():
        lengths = [s.cycle_bits(phy) for s in master.streams]
        return max(lengths) if lengths else 0
    # Single-slot identity cache per master (one PHY per network).
    memo = master_memo(master)
    entry = memo.get("cm")
    if entry is not None and entry[0] is phy:
        return entry[1]
    lengths = [s.cycle_bits(phy) for s in master.streams]
    value = max(lengths) if lengths else 0
    memo["cm"] = (phy, value)
    return value


def longest_high_cycle(master: Master, phy) -> int:
    """``ChM^k``: longest *high-priority* cycle; 0 if none."""
    if not fast_path_enabled():
        lengths = [s.cycle_bits(phy) for s in master.high_streams]
        return max(lengths) if lengths else 0
    memo = master_memo(master)
    entry = memo.get("chm")
    if entry is not None and entry[0] is phy:
        return entry[1]
    lengths = [s.cycle_bits(phy) for s in master.high_streams]
    value = max(lengths) if lengths else 0
    memo["chm"] = (phy, value)
    return value


def _network_memo(network: Network) -> dict:
    try:
        return network._timing_memo
    except AttributeError:
        memo: dict = {}
        object.__setattr__(network, "_timing_memo", memo)
        return memo


def tdel(network: Network) -> int:
    """Eq. (13): ``Tdel = Σ_k C_M^k`` (memoised per network)."""
    if not fast_path_enabled():
        return sum(longest_cycle(m, network.phy) for m in network.masters)
    memo = _network_memo(network)
    value = memo.get("tdel")
    if value is None:
        value = sum(longest_cycle(m, network.phy) for m in network.masters)
        memo["tdel"] = value
    return value


def tdel_refined(network: Network) -> int:
    """Refined lateness bound (one overrunner + one high-prio cycle each).

    Falls back to the single master's longest cycle for a one-master
    network.  Never exceeds :func:`tdel`.  Memoised per network.
    """
    use_memo = fast_path_enabled()
    if use_memo:
        memo = _network_memo(network)
        value = memo.get("tdel_refined")
        if value is not None:
            return value
    phy = network.phy
    cm = [longest_cycle(m, phy) for m in network.masters]
    chm = [longest_high_cycle(m, phy) for m in network.masters]
    total_high = sum(chm)
    best = 0
    for k in range(len(cm)):
        cand = cm[k] + (total_high - chm[k])
        if cand > best:
            best = cand
    if use_memo:
        memo["tdel_refined"] = best
    return best


def tcycle(network: Network, ttr: int = None, refined: bool = False) -> int:
    """Eq. (14): ``Tcycle = TTR + Tdel`` (refined Tdel on request)."""
    if ttr is None:
        ttr = network.require_ttr()
    if ttr < network.ring_latency():
        raise ValueError(
            f"TTR={ttr} is below the no-load ring latency "
            f"{network.ring_latency()}; the Tcycle bound does not apply"
        )
    lateness = tdel_refined(network) if refined else tdel(network)
    return ttr + lateness


@dataclass(frozen=True)
class TokenCycleReport:
    """Breakdown of the token-cycle bound for reporting/benches."""

    ttr: int
    tdel_aggregate: int
    tdel_refined: int
    ring_latency: int
    per_master_cm: Dict[str, int]
    per_master_chm: Dict[str, int]

    @property
    def tcycle_aggregate(self) -> int:
        return self.ttr + self.tdel_aggregate

    @property
    def tcycle_refined(self) -> int:
        return self.ttr + self.tdel_refined


def token_cycle_report(network: Network, ttr: int = None) -> TokenCycleReport:
    """Full eq. (13)/(14) breakdown for one network."""
    if ttr is None:
        ttr = network.require_ttr()
    phy = network.phy
    return TokenCycleReport(
        ttr=ttr,
        tdel_aggregate=tdel(network),
        tdel_refined=tdel_refined(network),
        ring_latency=network.ring_latency(),
        per_master_cm={m.name: longest_cycle(m, phy) for m in network.masters},
        per_master_chm={
            m.name: longest_high_cycle(m, phy) for m in network.masters
        },
    )
