"""GAP maintenance (ring upkeep) — a protocol mechanism the paper omits.

Every PROFIBUS master periodically polls the address *gap* between
itself and its successor with an FDL-Request-Status telegram, so that
newly powered stations can join the logical ring (DIN 19245: every G
token rotations, G the *gap update factor*).  The worst-case poll is an
unanswered request::

    gap_cycle = SD1.bits + tsl + tid1

Timing impact: the standard schedules gap polls out of *remaining*
token-holding time, i.e. they behave exactly like one more piece of
low-priority traffic.  The eq. (13) bound therefore stays valid provided
``C_M^k`` accounts for the poll being the longest cycle a master can
start before its TTH expires::

    C_M^k (gap-aware) = max(C_M^k, gap_cycle)

which :func:`gap_aware_tdel` applies.  The simulator implements the
mechanism itself (``TokenBusConfig.gap_update_factor``): every G-th
token visit, a master with budget left issues one poll; deferred polls
wait for the next visit with budget — and the E8 bench shows the bound
holds with the mechanism enabled.
"""

from __future__ import annotations

from .frames import Frame, FrameType
from .network import Network
from .phy import PhyParameters
from .timing import longest_cycle


def gap_cycle_bits(phy: PhyParameters) -> int:
    """Worst-case gap poll: unanswered SD1 request (slot-time timeout)."""
    return Frame(FrameType.SD1).bits + phy.tsl + phy.tid1


def gap_aware_cm(master, phy: PhyParameters) -> int:
    """``max(C_M^k, gap_cycle)`` — the longest cycle a master may start."""
    return max(longest_cycle(master, phy), gap_cycle_bits(phy))


def gap_aware_tdel(network: Network) -> int:
    """Eq. (13) with gap-aware per-master longest cycles."""
    return sum(gap_aware_cm(m, network.phy) for m in network.masters)


def gap_aware_tcycle(network: Network, ttr: int = None) -> int:
    """Eq. (14) with gap maintenance accounted for."""
    if ttr is None:
        ttr = network.require_ttr()
    if ttr < network.ring_latency():
        raise ValueError(
            f"TTR={ttr} below ring latency {network.ring_latency()}"
        )
    return ttr + gap_aware_tdel(network)
