"""Message-cycle length ``Ch`` — footnote 2 and §3.1 of the paper.

A PROFIBUS *message cycle* is an action frame (request or send/request)
from a master plus the responder's **immediate** acknowledgement or
response frame.  The paper requires ``Ch`` to include "request, response,
turnaround time and maximum allowable retries".

Our model of one attempt::

    attempt = request.bits + tsdr_max + response.bits + tid1

and of a timed-out attempt (no response within the slot time)::

    failed  = request.bits + tsl + tid1

so the worst-case cycle with ``r`` allowed retries (all but the last
attempt failing, the last succeeding — the standard worst case) is::

    Ch = r * (request.bits + tsl + tid1) + attempt

All values are integer bit times.  ``MessageCycleSpec`` describes the
cycle logically (payload sizes, retry limit override); ``cycle_time``
evaluates it against a :class:`~repro.profibus.phy.PhyParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .frames import Frame, frame_for_payload
from .phy import PhyParameters


@dataclass(frozen=True)
class MessageCycleSpec:
    """Logical description of one message cycle.

    ``req_payload`` / ``resp_payload`` are user-data byte counts; the
    smallest legal telegram is chosen for each (a 0-byte response becomes
    an SD1 acknowledgement; pass ``short_ack=True`` for the 1-character
    SC acknowledgement instead).
    """

    req_payload: int = 0
    resp_payload: int = 0
    short_ack: bool = False
    #: Override the network-wide retry limit for this cycle, if not None.
    max_retry: Optional[int] = None

    def request_frame(self) -> Frame:
        return frame_for_payload(self.req_payload)

    def response_frame(self) -> Frame:
        if self.short_ack:
            if self.resp_payload:
                raise ValueError("short acknowledgement carries no data")
            from .frames import SHORT_ACK

            return SHORT_ACK
        return frame_for_payload(self.resp_payload)


def attempt_time(spec: MessageCycleSpec, phy: PhyParameters) -> int:
    """One successful request/response exchange, in bit times."""
    return (
        spec.request_frame().bits
        + phy.tsdr_max
        + spec.response_frame().bits
        + phy.tid1
    )


def failed_attempt_time(spec: MessageCycleSpec, phy: PhyParameters) -> int:
    """One attempt that times out at the slot time, in bit times."""
    return spec.request_frame().bits + phy.tsl + phy.tid1


def cycle_time(spec: MessageCycleSpec, phy: PhyParameters) -> int:
    """Worst-case message-cycle length ``Ch`` including retries."""
    retries = phy.max_retry if spec.max_retry is None else spec.max_retry
    if retries < 0:
        raise ValueError("retry count must be >= 0")
    return retries * failed_attempt_time(spec, phy) + attempt_time(spec, phy)


def token_pass_time(phy: PhyParameters) -> int:
    """Time for a token pass: the SD4 telegram plus the tid2 idle gap."""
    from .frames import TOKEN_FRAME

    return TOKEN_FRAME.bits + phy.tid2
