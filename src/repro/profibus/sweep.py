"""Parameter sweeps: design-space exploration over a network.

Answers the questions an engineer deploying the paper's results actually
asks — *how does schedulability move as I turn the knobs?* — in one call
each:

* :func:`ttr_sweep` — schedulability and worst response per policy as
  the TTR grows (eq. (11)/(16)/(17) are monotone in TTR, so this maps
  each policy's feasible region);
* :func:`deadline_scale_sweep` — acceptance as every deadline is scaled
  (the E5 curve for one concrete network);
* :func:`baud_sweep` — the same network at each standard baud rate
  (bit-time parameters are baud-invariant, deadlines in seconds are
  not, so this shows the minimum line speed for a plant).

All three build their (network, policy) grid up front and evaluate it
through :func:`repro.perf.batch.analyse_many` — pass ``workers=N`` to
spread a large sweep over a process pool; the default stays serial
in-process.  Static per-network work (ring latency, the scaled-network
construction) is hoisted out of the row loops.

Rows are plain dataclasses; :func:`rows_to_csv` renders any of them for
spreadsheet handoff.  Used by the CLI ``sweep`` subcommand.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..perf.batch import BatchResult, analyse_many
from .network import Master, Network
from .phy import STANDARD_BAUD_RATES, PhyParameters
from .stream import MessageStream

DEFAULT_POLICIES = ("fcfs", "dm", "edf")


@dataclass(frozen=True)
class SweepRow:
    """One (parameter value, policy) observation."""

    parameter: str
    value: float
    policy: str
    schedulable: bool
    worst_response: Optional[int]
    worst_slack: Optional[int]
    tcycle: int


def _grid_rows(
    parameter: str,
    entries: Sequence[Tuple[float, Optional[Network]]],
    policies: Sequence[str],
    workers: Optional[int],
) -> List[SweepRow]:
    """Evaluate ``(value, network)`` entries × policies through the batch
    driver; ``network=None`` marks a structurally infeasible value
    (below ring latency) reported unschedulable without analysis."""
    jobs = [net for _, net in entries if net is not None]
    results = analyse_many(jobs, policies, workers=workers) if jobs else []
    by_key = {(r.index, r.policy): r for r in results}
    rows: List[SweepRow] = []
    job_index = 0
    for value, net in entries:
        if net is None:
            for policy in policies:
                rows.append(
                    SweepRow(parameter, value, policy, False, None, None, 0)
                )
            continue
        for policy in policies:
            b: BatchResult = by_key[(job_index, policy)]
            rows.append(
                SweepRow(
                    parameter=parameter,
                    value=value,
                    policy=policy,
                    schedulable=b.schedulable,
                    worst_response=b.worst_response,
                    worst_slack=b.worst_slack,
                    tcycle=b.tcycle,
                )
            )
        job_index += 1
    return rows


def ttr_sweep(
    network: Network,
    ttr_values: Iterable[int],
    policies: Sequence[str] = DEFAULT_POLICIES,
    workers: Optional[int] = 1,
) -> List[SweepRow]:
    """Analyse the network at each TTR (values below the ring latency
    are reported unschedulable rather than raising)."""
    ring = network.ring_latency()
    entries = []
    for ttr in ttr_values:
        # Round — never truncate — float grid values, and judge
        # feasibility on the rounded TTR actually analysed.
        t = int(round(ttr))
        entries.append((ttr, network.with_ttr(t) if t >= ring else None))
    return _grid_rows("ttr", entries, policies, workers)


def _scale_deadlines(network: Network, factor: float) -> Network:
    masters = []
    for m in network.masters:
        streams = []
        for s in m.streams:
            # Round like _rescale_network does — truncation shifted E5
            # acceptance curves by an off-by-one deadline tightening on
            # fine factor grids.
            d = max(1, min(s.T, int(round(s.D * factor))))
            streams.append(s.with_deadline(d))
        masters.append(m.with_streams(streams))
    return Network(masters=tuple(masters), slaves=network.slaves,
                   phy=network.phy, ttr=network.ttr)


def deadline_scale_sweep(
    network: Network,
    factors: Iterable[float],
    policies: Sequence[str] = DEFAULT_POLICIES,
    workers: Optional[int] = 1,
) -> List[SweepRow]:
    """Scale every deadline by each factor (clamped to ``[1, T]``)."""
    factors = list(factors)
    for factor in factors:
        if factor <= 0:
            raise ValueError("deadline factors must be positive")
    entries = [
        (factor, _scale_deadlines(network, factor)) for factor in factors
    ]
    return _grid_rows("deadline_scale", entries, policies, workers)


def _rescale_network(network: Network, baud: int) -> Network:
    """One scaled-network construction per baud rate, shared by every
    policy row: wall-clock periods/deadlines/TTR are rescaled so their
    duration in seconds is preserved at the new line speed."""
    scale = baud / network.phy.baud_rate

    def rescale(v: int) -> int:
        return max(1, int(round(v * scale)))

    masters = []
    for m in network.masters:
        streams = [
            dataclasses.replace(
                s,
                T=rescale(s.T),
                D=rescale(s.D),
                J=int(round(s.J * scale)),
            )
            for s in m.streams
        ]
        masters.append(m.with_streams(streams))
    phy = dataclasses.replace(network.phy, baud_rate=baud)
    return Network(
        masters=tuple(masters),
        slaves=network.slaves,
        phy=phy,
        ttr=max(1, rescale(network.require_ttr())),
    )


def baud_sweep(
    network: Network,
    baud_rates: Iterable[int] = STANDARD_BAUD_RATES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    workers: Optional[int] = 1,
) -> List[SweepRow]:
    """Re-evaluate the network at each baud rate.

    Periods/deadlines/TTR are interpreted as *wall-clock* quantities of
    the original network, so they are rescaled to keep their duration in
    seconds while the frame/timer bit counts stay fixed — exactly what
    changing the line speed of a real plant does.
    """
    entries = []
    for baud in baud_rates:
        net = _rescale_network(network, baud)
        entries.append((baud, net if net.ttr >= net.ring_latency() else None))
    return _grid_rows("baud", entries, policies, workers)


def rows_to_csv(rows: Sequence[SweepRow]) -> str:
    """Render sweep rows as CSV (header + one line per row).

    ``None`` cells render empty; fields containing separators, quotes
    or newlines are RFC 4180 quoted (stdlib :mod:`csv` semantics), so a
    crafted parameter name can never shift columns in a spreadsheet
    handoff."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    fields = [f.name for f in dataclasses.fields(SweepRow)]
    writer.writerow(fields)
    for row in rows:
        writer.writerow([getattr(row, f) for f in fields])
    return out.getvalue()
