"""Parameter sweeps: design-space exploration over a network.

Answers the questions an engineer deploying the paper's results actually
asks — *how does schedulability move as I turn the knobs?* — in one call
each:

* :func:`ttr_sweep` — schedulability and worst response per policy as
  the TTR grows (eq. (11)/(16)/(17) are monotone in TTR, so this maps
  each policy's feasible region);
* :func:`deadline_scale_sweep` — acceptance as every deadline is scaled
  (the E5 curve for one concrete network);
* :func:`baud_sweep` — the same network at each standard baud rate
  (bit-time parameters are baud-invariant, deadlines in seconds are
  not, so this shows the minimum line speed for a plant).

Rows are plain dataclasses; :func:`rows_to_csv` renders any of them for
spreadsheet handoff.  Used by the CLI ``sweep`` subcommand.
"""

from __future__ import annotations

import dataclasses
import io
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from .network import Master, Network
from .phy import STANDARD_BAUD_RATES, PhyParameters
from .stream import MessageStream
from .ttr import analyse

DEFAULT_POLICIES = ("fcfs", "dm", "edf")


@dataclass(frozen=True)
class SweepRow:
    """One (parameter value, policy) observation."""

    parameter: str
    value: float
    policy: str
    schedulable: bool
    worst_response: Optional[int]
    worst_slack: Optional[int]
    tcycle: int


def _analyse_row(net: Network, policy: str, parameter: str,
                 value: float) -> SweepRow:
    res = analyse(net, policy)
    slacks = [sr.slack for sr in res.per_stream if sr.slack is not None]
    return SweepRow(
        parameter=parameter,
        value=value,
        policy=policy,
        schedulable=res.schedulable,
        worst_response=res.worst_response,
        worst_slack=min(slacks) if slacks and res.schedulable else None,
        tcycle=res.tcycle,
    )


def ttr_sweep(
    network: Network,
    ttr_values: Iterable[int],
    policies: Sequence[str] = DEFAULT_POLICIES,
) -> List[SweepRow]:
    """Analyse the network at each TTR (values below the ring latency
    are reported unschedulable rather than raising)."""
    rows = []
    for ttr in ttr_values:
        for policy in policies:
            if ttr < network.ring_latency():
                rows.append(SweepRow("ttr", ttr, policy, False, None, None, 0))
                continue
            rows.append(
                _analyse_row(network.with_ttr(int(ttr)), policy, "ttr", ttr)
            )
    return rows


def _scale_deadlines(network: Network, factor: float) -> Network:
    masters = []
    for m in network.masters:
        streams = []
        for s in m.streams:
            d = max(1, min(s.T, int(s.D * factor)))
            streams.append(s.with_deadline(d))
        masters.append(m.with_streams(streams))
    return Network(masters=tuple(masters), slaves=network.slaves,
                   phy=network.phy, ttr=network.ttr)


def deadline_scale_sweep(
    network: Network,
    factors: Iterable[float],
    policies: Sequence[str] = DEFAULT_POLICIES,
) -> List[SweepRow]:
    """Scale every deadline by each factor (clamped to ``[1, T]``)."""
    rows = []
    for factor in factors:
        if factor <= 0:
            raise ValueError("deadline factors must be positive")
        scaled = _scale_deadlines(network, factor)
        for policy in policies:
            rows.append(_analyse_row(scaled, policy, "deadline_scale", factor))
    return rows


def baud_sweep(
    network: Network,
    baud_rates: Iterable[int] = STANDARD_BAUD_RATES,
    policies: Sequence[str] = DEFAULT_POLICIES,
) -> List[SweepRow]:
    """Re-evaluate the network at each baud rate.

    Periods/deadlines/TTR are interpreted as *wall-clock* quantities of
    the original network, so they are rescaled to keep their duration in
    seconds while the frame/timer bit counts stay fixed — exactly what
    changing the line speed of a real plant does.
    """
    base_baud = network.phy.baud_rate
    rows = []
    for baud in baud_rates:
        scale = baud / base_baud

        def rescale(v: int) -> int:
            return max(1, int(round(v * scale)))

        masters = []
        for m in network.masters:
            streams = [
                dataclasses.replace(
                    s,
                    T=rescale(s.T),
                    D=rescale(s.D),
                    J=int(round(s.J * scale)),
                )
                for s in m.streams
            ]
            masters.append(m.with_streams(streams))
        phy = dataclasses.replace(network.phy, baud_rate=baud)
        net = Network(
            masters=tuple(masters),
            slaves=network.slaves,
            phy=phy,
            ttr=max(1, rescale(network.require_ttr())),
        )
        if net.ttr < net.ring_latency():
            for policy in policies:
                rows.append(SweepRow("baud", baud, policy, False, None, None, 0))
            continue
        for policy in policies:
            rows.append(_analyse_row(net, policy, "baud", baud))
    return rows


def rows_to_csv(rows: Sequence[SweepRow]) -> str:
    """Render sweep rows as CSV (header + one line per row)."""
    out = io.StringIO()
    fields = [f.name for f in dataclasses.fields(SweepRow)]
    out.write(",".join(fields) + "\n")
    for row in rows:
        values = []
        for f in fields:
            v = getattr(row, f)
            values.append("" if v is None else str(v))
        out.write(",".join(values) + "\n")
    return out.getvalue()
