"""Low-priority bandwidth analysis — the *why* behind a large TTR.

The paper's §5 argues priority dispatching supports tighter deadlines;
the operational payoff of the resulting TTR headroom (eq. (15) vs the
binary-searched priority-policy maximum) is bandwidth for low-priority
traffic.  This module quantifies it.

Model: over any long window, each master receives the token about once
per rotation.  In a rotation where the token is *early*, the master may
spend the residual ``TTH = TTR − TRR`` on queued traffic.  The
guaranteed-available budget per rotation, network-wide, is::

    B_rot = TTR − τ − Σ_k (high-priority demand per rotation)

with ``τ`` the no-load ring latency and the high-priority demand of a
stream bounded by ``Ch · (Tcycle / T)`` (its share of one rotation at
the worst token cadence).  The guaranteed low-priority *throughput
fraction* is then ``B_rot / Tcycle`` — pessimistic but safe, and 0 when
TTR is at the FCFS eq. (15) knife edge with a loaded network.

This is an extension beyond the paper (flagged as such in DESIGN.md §5);
the simulator cross-checks it: observed low-priority throughput under
saturating background lows is never below the guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .network import Network
from .timing import tcycle as compute_tcycle


@dataclass(frozen=True)
class BandwidthReport:
    """Guaranteed low-priority budget for one network setting."""

    ttr: int
    tcycle: int
    ring_latency: int
    #: Worst-case high-priority transmission demand per token rotation.
    high_demand_per_rotation: float
    #: Guaranteed bit-times per rotation available to low-priority traffic.
    low_budget_per_rotation: float

    @property
    def low_fraction(self) -> float:
        """Guaranteed fraction of bus time available to low traffic."""
        if self.low_budget_per_rotation <= 0:
            return 0.0
        return self.low_budget_per_rotation / self.tcycle


def high_demand_per_rotation(network: Network, tc: int) -> float:
    """Σ over high-priority streams of ``Ch · min(1, Tcycle/T)``.

    A stream with period ≥ Tcycle contributes at most one cycle per
    rotation; faster streams (T < Tcycle) are clamped to one cycle per
    rotation as well — the MAC cannot serve a stream twice in one visit
    *and* the late-token rule throttles backlog to one per visit, so one
    cycle per rotation per stream is the worst sustained demand.
    """
    total = 0.0
    for master in network.masters:
        for s in master.high_streams:
            share = min(1.0, tc / s.T)
            total += s.cycle_bits(network.phy) * share
    return total


def low_priority_bandwidth(
    network: Network, ttr: Optional[int] = None, refined: bool = False
) -> BandwidthReport:
    """Guaranteed low-priority budget at ``ttr`` (default: network's)."""
    if ttr is None:
        ttr = network.require_ttr()
    tc = compute_tcycle(network, ttr, refined=refined)
    demand = high_demand_per_rotation(network, tc)
    budget = ttr - network.ring_latency() - demand
    return BandwidthReport(
        ttr=ttr,
        tcycle=tc,
        ring_latency=network.ring_latency(),
        high_demand_per_rotation=demand,
        low_budget_per_rotation=max(0.0, budget),
    )


def bandwidth_advantage(network: Network) -> dict:
    """Low-priority fraction at each policy's maximum feasible TTR.

    The §5 payoff in one dict: the priority policies' TTR headroom
    translates directly into guaranteed background bandwidth.
    """
    from .ttr import max_feasible_ttr

    out = {}
    for policy in ("fcfs", "dm", "edf"):
        best = max_feasible_ttr(network, policy)
        if best is None:
            out[policy] = None
        else:
            out[policy] = low_priority_bandwidth(network, best).low_fraction
    return out
