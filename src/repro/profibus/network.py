"""Network model: masters, slaves and the logical ring.

A PROFIBUS network is a set of **master** stations forming a logical
token ring (token passes in ascending ring order, wrapping around) and
**slave** stations that only answer.  Each master owns its message
streams.  The :class:`Network` object carries the PHY parameter set and
the configured target token-rotation time ``TTR`` and is the single
input to every analysis in :mod:`repro.profibus` and to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..perf.config import fast_path_enabled
from .cycle import token_pass_time
from .phy import PhyParameters
from .stream import MessageStream


@dataclass(frozen=True)
class Master:
    """A master station and its message streams."""

    address: int
    streams: Tuple[MessageStream, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 126:
            raise ValueError("PROFIBUS addresses are 0..126")
        streams = tuple(self.streams)
        object.__setattr__(self, "streams", streams)
        names = [s.name for s in streams]
        if len(names) != len(set(names)):
            raise ValueError(f"master {self.address}: duplicate stream names")
        if not self.name:
            object.__setattr__(self, "name", f"M{self.address}")

    def __getstate__(self):
        # Memoised derivations (leading underscore) are process-local:
        # the analysis memo can hold identity-keyed caches.
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_")}

    @property
    def high_streams(self) -> Tuple[MessageStream, ...]:
        try:
            return self._high_streams
        except AttributeError:
            high = tuple(s for s in self.streams if s.high_priority)
            object.__setattr__(self, "_high_streams", high)
            return high

    @property
    def low_streams(self) -> Tuple[MessageStream, ...]:
        try:
            return self._low_streams
        except AttributeError:
            low = tuple(s for s in self.streams if not s.high_priority)
            object.__setattr__(self, "_low_streams", low)
            return low

    @property
    def nh(self) -> int:
        """Number of high-priority message streams (the paper's ``nh^k``)."""
        return len(self.high_streams)

    def stream(self, name: str) -> MessageStream:
        for s in self.streams:
            if s.name == name:
                return s
        raise KeyError(name)

    def with_streams(self, streams: Iterable[MessageStream]) -> "Master":
        return replace(self, streams=tuple(streams))


def master_memo(master: Master) -> dict:
    """Per-master instance memo for derived analysis artefacts.

    Masters are immutable (frozen dataclasses), so staged task sets,
    longest-cycle figures and analysis rows are cached on the instance
    itself, keyed by the remaining analysis inputs (``Tcycle``, PHY).
    Instance-keyed (not value-keyed) on purpose: sweeps re-analyse the
    *same* master objects thousands of times, while benchmark baselines
    on freshly generated but value-equal networks must not get
    accidental hits.  Dropped on pickling (see ``__getstate__``);
    worker processes rebuild locally.
    """
    try:
        return master._analysis_memo
    except AttributeError:
        memo: dict = {}
        object.__setattr__(master, "_analysis_memo", memo)
        return memo


def stream_specs(master: Master) -> Optional[tuple]:
    """``(T, D, J)`` per high-priority stream when all are plain ints —
    the whole-master kernel input (see :mod:`repro.perf.kernels`) —
    else ``None``.  Memoised on the master."""
    memo = master_memo(master)
    specs = memo.get("specs", False)
    if specs is False:
        specs = tuple((s.T, s.D, s.J) for s in master.high_streams)
        if not all(
            type(t) is int and type(d) is int and type(j) is int
            for t, d, j in specs
        ):
            specs = None
        memo["specs"] = specs
    return specs


def master_pack_columns(master: Master, phy) -> Optional[tuple]:
    """One fused extraction pass for the SoA packer
    (:func:`repro.perf.vector.pack_networks`): ``(Ts, Ds, Js, maxval,
    longest_cycle)`` from a single walk of ``master.streams`` — the
    high-priority ``(T, D, J)`` specs transposed into columns, their
    magnitude ceiling, and the eq. (13) ``C_M^k`` term — or ``None``
    when any high-priority attribute is not a plain int.  Memoised per
    (master, PHY): packing is per-network-constant-cost bound, and the
    batch drivers pack the same master against one PHY thousands of
    times."""
    memo = master_memo(master)
    entry = memo.get("pack_cols")
    if entry is not None and entry[0] is phy:
        return entry[1]
    ts: list = []
    ds: list = []
    js: list = []
    mx = 0
    cm = 0
    ok = True
    fp = fast_path_enabled()
    for s in master.streams:
        # Inline warm probe of the stream's single-slot cycle memo (the
        # TTR assignment walks the cycle lengths, so it is usually
        # populated); cold or fast-path-disabled streams take the
        # canonical s.cycle_bits path.
        cb = s.C_bits
        if cb is None:
            mc = getattr(s, "_cycle_memo", None) if fp else None
            cb = mc[1] if mc is not None and mc[0] is phy \
                else s.cycle_bits(phy)
        if cb > cm:
            cm = cb
        if not s.high_priority:
            continue
        t = s.T
        d = s.D
        j = s.J
        if type(t) is int and type(d) is int and type(j) is int:
            if t > mx:
                mx = t
            if d > mx:
                mx = d
            if j > mx:
                mx = j
            ts.append(t)
            ds.append(d)
            js.append(j)
        else:
            ok = False
            break
    cols = (tuple(ts), tuple(ds), tuple(js), mx, cm) if ok else None
    memo["pack_cols"] = (phy, cols)
    return cols


@dataclass(frozen=True)
class Slave:
    """A slave station (responder only)."""

    address: int
    name: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 126:
            raise ValueError("PROFIBUS addresses are 0..126")
        if not self.name:
            object.__setattr__(self, "name", f"S{self.address}")


@dataclass(frozen=True)
class Network:
    """A complete network configuration.

    ``masters`` are listed in logical-ring order (the token travels
    ``masters[0] → masters[1] → … → masters[0]``).  ``ttr`` is the target
    token-rotation time in bit times; it may be left ``None`` while using
    :mod:`repro.profibus.ttr` to derive it.
    """

    masters: Tuple[Master, ...]
    slaves: Tuple[Slave, ...] = ()
    phy: PhyParameters = PhyParameters()
    ttr: Optional[int] = None

    def __post_init__(self) -> None:
        masters = tuple(self.masters)
        slaves = tuple(self.slaves)
        object.__setattr__(self, "masters", masters)
        object.__setattr__(self, "slaves", slaves)
        if not masters:
            raise ValueError("a network needs at least one master")
        addrs = [m.address for m in masters] + [s.address for s in slaves]
        if len(addrs) != len(set(addrs)):
            raise ValueError("duplicate station addresses")
        if self.ttr is not None and self.ttr <= 0:
            raise ValueError("ttr must be positive")

    def __getstate__(self):
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_")}

    # -- lookups ---------------------------------------------------------
    @property
    def n_masters(self) -> int:
        return len(self.masters)

    def master(self, address: int) -> Master:
        for m in self.masters:
            if m.address == address:
                return m
        raise KeyError(address)

    def master_named(self, name: str) -> Master:
        for m in self.masters:
            if m.name == name:
                return m
        raise KeyError(name)

    def all_streams(self) -> List[Tuple[Master, MessageStream]]:
        return [(m, s) for m in self.masters for s in m.streams]

    def high_stream_count(self) -> int:
        return sum(m.nh for m in self.masters)

    # -- derived timing --------------------------------------------------
    def ring_latency(self) -> int:
        """No-load token rotation time: one token pass per master.

        The analyses require ``TTR`` to be at least this (otherwise the
        token is *structurally* late every rotation and the late-token
        rule throttles every master to one message per visit).  Memoised:
        the network is immutable and sweeps query this per row.
        """
        try:
            return self._ring_latency
        except AttributeError:
            latency = self.n_masters * token_pass_time(self.phy)
            object.__setattr__(self, "_ring_latency", latency)
            return latency

    def fingerprint(self) -> str:
        """Canonical content hash (see
        :func:`repro.profibus.serialization.network_fingerprint`):
        equal for value-equal networks however they were built, distinct
        on any semantic change.  Memoised on the instance; the memo is
        process-local and dropped on pickling like every other derived
        attribute."""
        try:
            return self._fingerprint
        except AttributeError:
            from .serialization import network_fingerprint

            value = network_fingerprint(self)
            object.__setattr__(self, "_fingerprint", value)
            return value

    def with_ttr(self, ttr: int) -> "Network":
        return replace(self, ttr=ttr)

    def require_ttr(self) -> int:
        if self.ttr is None:
            raise ValueError(
                "network.ttr is not set; call with_ttr() or derive one via repro.profibus.ttr"
            )
        return self.ttr
