"""PROFIBUS telegram (frame) formats — DIN 19245 part 1.

PROFIBUS frames are built from 11-bit UART characters.  The fixed
formats and their character counts are:

=====  =========================================  ==============
code   layout                                      characters
=====  =========================================  ==============
SD1    SD DA SA FC FCS ED (no data)                6
SD2    SD LE LEr SD DA SA FC DU… FCS ED            9 + len(DU)
SD3    SD DA SA FC DU(8) FCS ED (fixed 8 data)     14
SD4    SD DA SA (token frame)                      3
SC     single-character acknowledgement            1
=====  =========================================  ==============

``frame_for_payload`` picks the smallest legal format for a payload and
is what :mod:`repro.profibus.cycle` uses to turn "a request with *p*
bytes of user data" into an exact transmission time.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from .phy import char_time_bits

#: Maximum data-unit length of an SD2 telegram (DIN 19245: 246 bytes of
#: net data; 249 including the DSAP/SSAP/PCV header bytes).
SD2_MAX_PAYLOAD = 246


class FrameType(Enum):
    """The PROFIBUS telegram start-delimiter families."""

    SD1 = "SD1"  # fixed length, no data field
    SD2 = "SD2"  # variable data field
    SD3 = "SD3"  # fixed length, 8-byte data field
    SD4 = "SD4"  # token
    SC = "SC"  # short (single character) acknowledgement


_FIXED_CHARS = {
    FrameType.SD1: 6,
    FrameType.SD3: 14,
    FrameType.SD4: 3,
    FrameType.SC: 1,
}

#: Overhead characters of an SD2 telegram (SD LE LEr SD DA SA FC FCS ED).
SD2_OVERHEAD_CHARS = 9


@dataclass(frozen=True)
class Frame:
    """One telegram: its format and data-unit length (bytes)."""

    frame_type: FrameType
    payload: int = 0

    def __post_init__(self) -> None:
        if self.payload < 0:
            raise ValueError("payload must be >= 0")
        if self.frame_type is FrameType.SD2:
            if self.payload > SD2_MAX_PAYLOAD:
                raise ValueError(
                    f"SD2 payload {self.payload} exceeds maximum {SD2_MAX_PAYLOAD}"
                )
        elif self.frame_type is FrameType.SD3:
            if self.payload not in (0, 8):
                raise ValueError("SD3 carries exactly 8 data bytes")
        elif self.payload != 0:
            raise ValueError(f"{self.frame_type.value} carries no data field")

    @property
    def chars(self) -> int:
        """Length of the telegram in UART characters."""
        if self.frame_type is FrameType.SD2:
            return SD2_OVERHEAD_CHARS + self.payload
        if self.frame_type is FrameType.SD3:
            return _FIXED_CHARS[FrameType.SD3]
        return _FIXED_CHARS[self.frame_type]

    @property
    def bits(self) -> int:
        """Transmission time of the telegram in bit times."""
        return char_time_bits(self.chars)


#: The token telegram (SD4), used by the MAC analyses and the simulator.
TOKEN_FRAME = Frame(FrameType.SD4)

#: Single-character acknowledgement.
SHORT_ACK = Frame(FrameType.SC)


@lru_cache(maxsize=None)
def frame_for_payload(payload: int) -> Frame:
    """Smallest legal telegram for ``payload`` data bytes.

    0 bytes → SD1; exactly 8 → SD3 (14 chars beats SD2's 17); anything
    else up to :data:`SD2_MAX_PAYLOAD` → SD2.

    Cached: frames are immutable and the payload domain is 0..246, so
    sweeping thousands of generated networks reuses a few hundred
    instances instead of re-validating per stream.
    """
    if payload == 0:
        return Frame(FrameType.SD1)
    if payload == 8:
        return Frame(FrameType.SD3, 8)
    return Frame(FrameType.SD2, payload)
