"""`repro.api` — the unified typed analysis entrypoint.

Every front end of this toolbox ultimately answers one of four
questions about a network document:

* **analyse** — per-stream worst-case response times and the
  schedulability verdict under one policy (eqs. (11)/(16)/(17));
* **sweep** — the same verdicts across a parameter grid (TTR,
  deadline scale, baud rate);
* **admission** — *can this message stream join the bus without
  breaking the guarantees of the streams already on it?* — plus how
  much headroom remains after it does (seeded on
  :mod:`repro.core.sensitivity`);
* **monitor** — *does this recorded frame log respect the analytic
  bounds?* — a ``profibus-rt/trace/v1`` trace document checked by
  :mod:`repro.monitor`, answered as a ``profibus-rt/monitor/v1``
  report.

This module gives those questions one typed request/response shape:
frozen :class:`AnalysisRequest` / :class:`AnalysisResult` dataclasses
with schema-versioned dict/JSON forms (``profibus-rt/api/v1``).  The
CLI subcommands and the resident service (:mod:`repro.service`) are two
thin transports over :func:`execute`; scripts embed it directly.  The
declarative-input / deterministic-core / schema-validated-output split
is deliberate: interpretation happens at this boundary (documents in,
documents out), the analysis core stays pure computation.

Caching.  :func:`execute` optionally consults a
:class:`repro.perf.cache.ResultCache` keyed on the request's **value
key** — the canonical network fingerprint plus the analysis coordinates
— so identical and repeated requests hit instead of recompute, whoever
parsed the document.  Pass ``cache=None`` (the default) for the
recompute-always behaviour the benchmarks and differential oracles
require.

The old call signatures (``repro.profibus.ttr.analyse``,
``repro.perf.batch.analyse_many``, the sweep functions) remain as the
compute core underneath and keep working unchanged; new code should
come in through this module.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple, Union

from .perf.cache import ResultCache
from .perf.config import ANALYSIS_MODES, analysis_mode_set
from .profibus import serialization as serialization_mod
from .profibus import sweep as sweep_mod
from .profibus import ttr as ttr_mod
from .profibus.network import Master, Network
from .profibus.serialization import ScenarioFormatError
from .schemas import API_SCHEMA

OPS = ("analyse", "sweep", "admission", "monitor")
POLICIES = ("fcfs", "dm", "edf")
SWEEP_PARAMS = ("ttr", "deadline-scale", "baud")

#: Precision of the admission-headroom bisections (mirrors the default
#: of :func:`repro.core.sensitivity.critical_scaling_factor`).
HEADROOM_PRECISION = Fraction(1, 128)


class ApiError(ValueError):
    """A malformed or unanswerable request (bad document, unknown
    policy, missing TTR, …) — the caller's fault, reported as data."""


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis question, as data.

    ``network`` is a scenario document (the
    :mod:`repro.profibus.serialization` shape), **not** a live object —
    requests must survive JSON transport bit-exactly.  Op-specific
    fields are ignored by the other ops; ``__post_init__`` freezes the
    containers so instances hash and compare by value.
    """

    op: str
    network: Dict[str, Any]
    policy: str = "dm"
    #: sweep only: the policies evaluated per grid point
    policies: Tuple[str, ...] = POLICIES
    ttr: Optional[int] = None
    refined: bool = False
    #: sweep only: which knob the grid turns
    sweep_param: Optional[str] = None
    #: sweep only: grid values (empty for ``baud`` = the standard rates)
    sweep_values: Tuple[float, ...] = ()
    #: admission only: ring address the candidate stream joins (an
    #: existing master's, or a fresh address appended to the ring)
    admission_master: Optional[int] = None
    #: admission only: the candidate stream document
    admission_stream: Optional[Dict[str, Any]] = None
    #: monitor only: the recorded frame log, as a
    #: ``profibus-rt/trace/v1`` document (:mod:`repro.monitor.trace_io`)
    trace: Optional[Dict[str, Any]] = None
    #: monitor only: ignore responses of releases before this time (bit
    #: times) — the steady-state filter of ``TokenBusConfig.stats_after``
    stats_after: int = 0
    #: analysis mode override (``generic``/``fast``/``vectorized``);
    #: ``None`` = the serving process's default.  All modes answer
    #: bit-identically (the PERF.md contract) — the knob exists for
    #: benchmarking and cross-checking through the same transport.
    mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ApiError(f"unknown op {self.op!r}; pick from {list(OPS)}")
        if self.mode is not None and self.mode not in ANALYSIS_MODES:
            raise ApiError(
                f"unknown mode {self.mode!r}; pick from {list(ANALYSIS_MODES)}"
            )
        if not isinstance(self.network, dict):
            raise ApiError("request network must be a scenario document")
        if self.policy not in POLICIES:
            raise ApiError(
                f"unknown policy {self.policy!r}; pick from {list(POLICIES)}"
            )
        object.__setattr__(self, "policies", tuple(self.policies))
        for p in self.policies:
            if p not in POLICIES:
                raise ApiError(
                    f"unknown policy {p!r}; pick from {list(POLICIES)}"
                )
        object.__setattr__(self, "sweep_values", tuple(self.sweep_values))
        if self.op == "sweep":
            if self.sweep_param not in SWEEP_PARAMS:
                raise ApiError(
                    f"sweep needs sweep_param from {list(SWEEP_PARAMS)}, "
                    f"got {self.sweep_param!r}"
                )
            if self.sweep_param != "baud" and not self.sweep_values:
                raise ApiError(
                    f"sweep over {self.sweep_param!r} needs sweep_values"
                )
        if self.op == "admission":
            if self.admission_master is None:
                raise ApiError("admission needs admission_master (address)")
            if not isinstance(self.admission_stream, dict):
                raise ApiError(
                    "admission needs admission_stream (a stream document)"
                )
        if self.op == "monitor" and not isinstance(self.trace, dict):
            raise ApiError("monitor needs trace (a trace document)")
        if (isinstance(self.stats_after, bool)
                or not isinstance(self.stats_after, int)
                or self.stats_after < 0):
            raise ApiError("stats_after must be a non-negative integer")

    # -- value identity --------------------------------------------------
    def cache_key(self, fingerprint: str) -> str:
        """The shared-cache key: canonical network fingerprint + the
        analysis coordinates.  Two requests with value-equal networks
        and equal coordinates collide — by design — however their
        documents were spelled."""
        return json.dumps({
            "schema": API_SCHEMA,
            "op": self.op,
            "fingerprint": fingerprint,
            "policy": self.policy,
            "policies": list(self.policies),
            "ttr": self.ttr,
            "refined": self.refined,
            "sweep_param": self.sweep_param,
            "sweep_values": list(self.sweep_values),
            "admission_master": self.admission_master,
            "admission_stream": self.admission_stream,
            # a digest stands in for the (potentially huge) event list;
            # canonical JSON, so value-equal traces collide by design
            "trace_digest": self.trace_digest(),
            "stats_after": self.stats_after,
            "mode": self.mode,
        }, sort_keys=True, separators=(",", ":"))

    def trace_digest(self) -> Optional[str]:
        """Content hash of the trace document (``None`` without one)."""
        if self.trace is None:
            return None
        canonical = json.dumps(self.trace, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- schema-versioned transport forms --------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": API_SCHEMA,
            "op": self.op,
            "network": self.network,
        }
        defaults = {
            f.name: (f.default_factory() if f.default_factory
                     is not dataclasses.MISSING else f.default)
            for f in dataclasses.fields(self)
        }
        for name in ("policy", "policies", "ttr", "refined", "sweep_param",
                     "sweep_values", "admission_master", "admission_stream",
                     "trace", "stats_after", "mode"):
            value = getattr(self, name)
            if value != defaults[name]:
                doc[name] = list(value) if isinstance(value, tuple) else value
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "AnalysisRequest":
        if not isinstance(doc, dict):
            raise ApiError("request must be a JSON object")
        if doc.get("schema") != API_SCHEMA:
            raise ApiError(
                f"unsupported request schema {doc.get('schema')!r}; "
                f"this build speaks {API_SCHEMA}"
            )
        allowed = {"schema", "op", "network", "policy", "policies", "ttr",
                   "refined", "sweep_param", "sweep_values",
                   "admission_master", "admission_stream", "trace",
                   "stats_after", "mode"}
        unknown = set(doc) - allowed
        if unknown:
            raise ApiError(
                f"unknown request key(s) {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        for key in ("op", "network"):
            if key not in doc:
                raise ApiError(f"request missing key {key!r}")
        kwargs: Dict[str, Any] = {"op": doc["op"], "network": doc["network"]}
        for name in ("policy", "ttr", "refined", "sweep_param",
                     "admission_master", "admission_stream", "trace",
                     "stats_after", "mode"):
            if name in doc:
                kwargs[name] = doc[name]
        if "policies" in doc:
            kwargs["policies"] = tuple(doc["policies"])
        if "sweep_values" in doc:
            kwargs["sweep_values"] = tuple(doc["sweep_values"])
        return cls(**kwargs)


@dataclass(frozen=True)
class AnalysisResult:
    """One analysis answer, as data.

    ``fingerprint`` names the network content the answer holds for (the
    cache key component); ``payload`` is the op-specific body, all
    JSON-ready, so ``to_dict`` round-trips bit-exactly and two
    transports serving the same request serve byte-identical documents.
    """

    op: str
    fingerprint: str
    schedulable: Optional[bool]
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": API_SCHEMA,
            "op": self.op,
            "fingerprint": self.fingerprint,
            "schedulable": self.schedulable,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "AnalysisResult":
        if not isinstance(doc, dict):
            raise ApiError("result must be a JSON object")
        if doc.get("schema") != API_SCHEMA:
            raise ApiError(
                f"unsupported result schema {doc.get('schema')!r}; "
                f"this build speaks {API_SCHEMA}"
            )
        for key in ("op", "fingerprint", "schedulable", "payload"):
            if key not in doc:
                raise ApiError(f"result missing key {key!r}")
        return cls(
            op=doc["op"],
            fingerprint=doc["fingerprint"],
            schedulable=doc["schedulable"],
            payload=doc["payload"],
        )


# ---------------------------------------------------------------- compute

def _parse_network(request: AnalysisRequest) -> Network:
    try:
        net = serialization_mod.network_from_dict(request.network)
    except ScenarioFormatError as exc:
        raise ApiError(f"bad network document: {exc}") from exc
    if request.ttr is not None:
        if request.ttr <= 0:
            raise ApiError("ttr override must be positive")
        net = net.with_ttr(request.ttr)
    return net


def _analysis_payload(net: Network, policy: str,
                      refined: bool) -> Dict[str, Any]:
    try:
        res = ttr_mod.analyse(net, policy, refined=refined)
    except ValueError as exc:
        raise ApiError(str(exc)) from exc
    return {
        "policy": policy,
        "refined": refined,
        "ttr": res.ttr,
        "tcycle": res.tcycle,
        "schedulable": res.schedulable,
        "streams": [
            {
                "master": sr.master,
                "stream": sr.stream.name,
                "R": sr.R,
                "D": sr.stream.D,
                "schedulable": sr.schedulable,
                "slack": sr.slack,
            }
            for sr in res.per_stream
        ],
    }


def _compute_analyse(request: AnalysisRequest, net: Network,
                     fingerprint: str, workers: int) -> AnalysisResult:
    payload = _analysis_payload(net, request.policy, request.refined)
    return AnalysisResult(
        op="analyse",
        fingerprint=fingerprint,
        schedulable=payload["schedulable"],
        payload=payload,
    )


def _compute_sweep(request: AnalysisRequest, net: Network,
                   fingerprint: str, workers: int) -> AnalysisResult:
    policies = request.policies
    try:
        if request.sweep_param == "ttr":
            rows = sweep_mod.ttr_sweep(net, request.sweep_values,
                                       policies=policies, workers=workers)
        elif request.sweep_param == "deadline-scale":
            rows = sweep_mod.deadline_scale_sweep(
                net, request.sweep_values, policies=policies, workers=workers
            )
        else:
            values = ([int(v) for v in request.sweep_values]
                      if request.sweep_values else None)
            rows = sweep_mod.baud_sweep(
                net, values if values is not None
                else sweep_mod.STANDARD_BAUD_RATES,
                policies=policies, workers=workers,
            )
    except ValueError as exc:
        raise ApiError(str(exc)) from exc
    row_docs = [
        {
            "parameter": r.parameter,
            "value": r.value,
            "policy": r.policy,
            "schedulable": r.schedulable,
            "worst_response": r.worst_response,
            "worst_slack": r.worst_slack,
            "tcycle": r.tcycle,
        }
        for r in rows
    ]
    payload = {
        "param": request.sweep_param,
        "policies": list(policies),
        "rows": row_docs,
        "csv": sweep_mod.rows_to_csv(rows),
    }
    return AnalysisResult(
        op="sweep",
        fingerprint=fingerprint,
        schedulable=None,
        payload=payload,
    )


def _admit_stream(net: Network, address: int,
                  stream_doc: Dict[str, Any]) -> Network:
    """The candidate network: ``stream_doc`` joined to the master at
    ``address`` (or a fresh master appended to the logical ring)."""
    try:
        stream = serialization_mod._stream_from(stream_doc)
    except ScenarioFormatError as exc:
        raise ApiError(f"bad admission stream: {exc}") from exc
    masters: List[Master] = []
    joined = False
    for m in net.masters:
        if m.address == address:
            if any(s.name == stream.name for s in m.streams):
                raise ApiError(
                    f"master {address} already has a stream named "
                    f"{stream.name!r}"
                )
            m = m.with_streams(m.streams + (stream,))
            joined = True
        masters.append(m)
    if not joined:
        try:
            masters.append(Master(address=address, streams=(stream,)))
        except ValueError as exc:
            raise ApiError(str(exc)) from exc
    try:
        return Network(masters=tuple(masters), slaves=net.slaves,
                       phy=net.phy, ttr=net.ttr)
    except ValueError as exc:
        raise ApiError(str(exc)) from exc


def _deadline_tightening_limit(net: Network, policy: str,
                               refined: bool) -> Optional[float]:
    """Smallest factor every deadline can be scaled down to with the
    network still schedulable — the sensitivity-analysis headroom
    figure, through the same monotone bisection the core's critical
    scaling factor uses.  ``None`` when the network is not schedulable
    even unscaled (the bisection's infeasible-at-upper case)."""
    from .core.sensitivity import smallest_feasible_factor

    def feasible(factor: Fraction) -> bool:
        scaled = sweep_mod._scale_deadlines(net, float(factor))
        return ttr_mod.analyse(scaled, policy, refined=refined).schedulable

    limit = smallest_feasible_factor(feasible, precision=HEADROOM_PRECISION)
    return None if limit is None else float(limit)


def _compute_admission(request: AnalysisRequest, net: Network,
                       fingerprint: str, workers: int) -> AnalysisResult:
    before = _analysis_payload(net, request.policy, request.refined)
    after_net = _admit_stream(net, request.admission_master,
                              request.admission_stream)
    after = _analysis_payload(after_net, request.policy, request.refined)
    admitted = bool(after["schedulable"])
    ok_before = {
        (row["master"], row["stream"])
        for row in before["streams"] if row["schedulable"]
    }
    broken = [
        {"master": row["master"], "stream": row["stream"], "R": row["R"],
         "D": row["D"]}
        for row in after["streams"]
        if not row["schedulable"] and (row["master"], row["stream"])
        in ok_before
    ]
    headroom: Dict[str, Any] = {
        "max_feasible_ttr": None,
        "deadline_tightening_limit": None,
    }
    if admitted:
        headroom["max_feasible_ttr"] = ttr_mod.max_feasible_ttr(
            after_net, request.policy, refined=request.refined
        )
        headroom["deadline_tightening_limit"] = _deadline_tightening_limit(
            after_net, request.policy, request.refined
        )
    payload = {
        "policy": request.policy,
        "refined": request.refined,
        "master": request.admission_master,
        "stream": request.admission_stream,
        "admitted": admitted,
        "before": before,
        "after": after,
        "broken_streams": broken,
        "headroom": headroom,
    }
    return AnalysisResult(
        op="admission",
        fingerprint=fingerprint,
        schedulable=admitted,
        payload=payload,
    )


def _compute_monitor(request: AnalysisRequest, net: Network,
                     fingerprint: str, workers: int) -> AnalysisResult:
    from .monitor import TraceFormatError
    from .monitor import engine as monitor_engine
    from .monitor.trace_io import trace_from_doc

    try:
        ingested = trace_from_doc(request.trace)
    except TraceFormatError as exc:
        raise ApiError(f"bad trace document: {exc}") from exc
    try:
        report = monitor_engine.monitor_trace(
            net, ingested, request.policy,
            refined=request.refined, stats_after=request.stats_after,
        )
    except ValueError as exc:
        raise ApiError(str(exc)) from exc
    payload = {
        "policy": request.policy,
        "refined": request.refined,
        "report": report.to_dict(),
        "all_sound": report.all_sound,
        "all_clear": report.all_clear,
        "degraded": report.degraded,
    }
    # "schedulable" answers the op's question: did the recorded run
    # positively respect every bound (rows and token rotations)?
    return AnalysisResult(
        op="monitor",
        fingerprint=fingerprint,
        schedulable=report.all_clear,
        payload=payload,
    )


_COMPUTE = {
    "analyse": _compute_analyse,
    "sweep": _compute_sweep,
    "admission": _compute_admission,
    "monitor": _compute_monitor,
}


# ------------------------------------------------------------- entrypoint

def execute_cached(
    request: AnalysisRequest,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
) -> Tuple[AnalysisResult, bool]:
    """``(result, cache_hit)`` for one request.

    With a cache, the value key (canonical network fingerprint +
    analysis coordinates) is consulted first; a hit returns the stored
    result without touching the analysis layer.  ``workers`` spreads a
    large sweep grid over the batch process pool; it is an execution
    detail, never part of the value key.
    """
    net = _parse_network(request)
    fingerprint = net.fingerprint()

    def compute() -> AnalysisResult:
        # A mode override scopes the whole computation: every analysis
        # kernel under this op (including pooled workers, which inherit
        # the mode through the chunk payload) runs in the requested mode.
        if request.mode is None:
            return _COMPUTE[request.op](request, net, fingerprint, workers)
        with analysis_mode_set(request.mode):
            return _COMPUTE[request.op](request, net, fingerprint, workers)

    if cache is None:
        return compute(), False
    key = request.cache_key(fingerprint)
    hit, result = cache.get_or_compute(key, compute)
    return result, hit


def execute(
    request: AnalysisRequest,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
) -> AnalysisResult:
    """The one typed entrypoint: every transport routes through here."""
    result, _ = execute_cached(request, cache=cache, workers=workers)
    return result


def execute_request_doc(doc: Dict[str, Any], workers: int = 1) -> Dict[str, Any]:
    """Dict-in/dict-out :func:`execute` — module-level and picklable, so
    the service's process-pool workers can run it directly.  Caching
    stays in the caller's process (the pool must compute, not consult a
    worker-local cache that would miss forever)."""
    return execute(AnalysisRequest.from_dict(doc), workers=workers).to_dict()


# ------------------------------------------------- convenience front doors

def _network_doc(network: Union[Network, Dict[str, Any]]) -> Dict[str, Any]:
    if isinstance(network, Network):
        return serialization_mod.network_to_dict(network)
    return network


def analyse_network(
    network: Union[Network, Dict[str, Any]],
    policy: str = "dm",
    ttr: Optional[int] = None,
    refined: bool = False,
    cache: Optional[ResultCache] = None,
    mode: Optional[str] = None,
) -> AnalysisResult:
    """Typed form of the classic ``ttr.analyse`` call (which remains as
    the compute core; new code should prefer this entrypoint)."""
    return execute(
        AnalysisRequest(op="analyse", network=_network_doc(network),
                        policy=policy, ttr=ttr, refined=refined, mode=mode),
        cache=cache,
    )


def sweep_network(
    network: Union[Network, Dict[str, Any]],
    sweep_param: str,
    sweep_values: Tuple[float, ...] = (),
    policies: Tuple[str, ...] = POLICIES,
    ttr: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    mode: Optional[str] = None,
) -> AnalysisResult:
    """Typed form of the sweep drivers (grid in, rows + CSV out)."""
    return execute(
        AnalysisRequest(op="sweep", network=_network_doc(network),
                        policies=tuple(policies), ttr=ttr,
                        sweep_param=sweep_param,
                        sweep_values=tuple(sweep_values), mode=mode),
        cache=cache,
        workers=workers,
    )


def monitor_check(
    network: Union[Network, Dict[str, Any]],
    trace: Dict[str, Any],
    policy: str = "dm",
    ttr: Optional[int] = None,
    refined: bool = False,
    stats_after: int = 0,
    cache: Optional[ResultCache] = None,
) -> AnalysisResult:
    """Does this recorded frame log (a ``profibus-rt/trace/v1``
    document) respect the analytic bounds?  The payload carries the full
    ``profibus-rt/monitor/v1`` report."""
    return execute(
        AnalysisRequest(op="monitor", network=_network_doc(network),
                        policy=policy, ttr=ttr, refined=refined,
                        trace=trace, stats_after=stats_after),
        cache=cache,
    )


def admission_check(
    network: Union[Network, Dict[str, Any]],
    master: int,
    stream: Dict[str, Any],
    policy: str = "dm",
    ttr: Optional[int] = None,
    refined: bool = False,
    cache: Optional[ResultCache] = None,
) -> AnalysisResult:
    """Can ``stream`` join the master at ``master`` without breaking the
    existing guarantees — and how much headroom is left if it does?"""
    return execute(
        AnalysisRequest(op="admission", network=_network_doc(network),
                        policy=policy, ttr=ttr, refined=refined,
                        admission_master=master, admission_stream=stream),
        cache=cache,
    )
