"""`repro.schemas` — the central registry of wire/file schema versions.

Every durable document this toolbox emits or accepts is tagged with a
``profibus-rt/<name>/v<k>`` schema string.  Those strings are **frozen
contracts**: a consumer that sees an unknown tag refuses the document
instead of guessing.  Before this module existed the tags lived as
scattered string literals, so two modules could silently drift apart —
now every tag is defined exactly once here and *imported* at each use
site.  The ``REP003`` rule of :mod:`repro.lint` statically enforces
that discipline: any ``profibus-rt/...`` literal outside this module,
any tag not in this registry, any family registered twice at different
versions, and any registry entry undocumented in ``PERF.md`` is a lint
failure.

Bumping a version is a deliberate act: change the constant here, update
the producers/consumers, document the new shape in ``PERF.md``, and the
lint pass keeps every mention coherent.
"""

from __future__ import annotations

from typing import Dict

#: One-shot analysis/sweep/admission request & result documents
#: (:mod:`repro.api`).
API_SCHEMA = "profibus-rt/api/v1"

#: JSON-lines wire protocol of the resident analysis daemon
#: (:mod:`repro.service`).
SERVICE_SCHEMA = "profibus-rt/service/v1"

#: Canonical network content hash — the value-identity key for result
#: caching, corpus dedup, and checkpoint rows
#: (:func:`repro.profibus.serialization.network_fingerprint`).
FINGERPRINT_SCHEMA = "profibus-rt/fingerprint/v1"

#: Golden regression corpus entries, one JSONL row per network
#: (:mod:`repro.corpus`).
CORPUS_SCHEMA = "profibus-rt/corpus/v1"

#: ``FUZZ_report.json`` campaign reports (:mod:`repro.fuzz.report`).
FUZZ_SCHEMA = "profibus-rt/fuzz/v2"

#: Kill-safe streaming campaign checkpoints
#: (:mod:`repro.fuzz.campaign`).
FUZZ_CHECKPOINT_SCHEMA = "profibus-rt/fuzz-checkpoint/v1"

#: ``BENCH_batch.json`` throughput reports (:mod:`repro.perf.bench`).
BENCH_SCHEMA = "profibus-rt/bench-batch/v2"

#: ``repro-cli lint`` JSON reports (:mod:`repro.lint`).  v2 replaces v1:
#: the rule catalogue spans the interprocedural flow rules and a
#: ``graph`` key summarises the call graph (null without ``--flow``).
LINT_SCHEMA = "profibus-rt/lint/v2"

#: ``repro-cli lint --dump-graph`` whole-program call-graph artifacts
#: (:mod:`repro.lint.graph`) — byte-deterministic for a given tree.
CALLGRAPH_SCHEMA = "profibus-rt/callgraph/v1"

#: Timestamped frame-log documents the trace monitor ingests — the
#: native :class:`repro.sim.trace.BusTrace` event stream exported as
#: JSONL *and* the simple external CSV/JSONL shape for foreign logs
#: both carry this tag (:mod:`repro.monitor.trace_io`).
TRACE_SCHEMA = "profibus-rt/trace/v1"

#: Streaming online bound-checking reports of the trace monitor
#: (:mod:`repro.monitor.report`).
MONITOR_SCHEMA = "profibus-rt/monitor/v1"


#: Registry of every frozen schema tag, constant name -> value.  Built
#: from the module namespace so a constant can never be left out.
SCHEMAS: Dict[str, str] = {
    name: value
    for name, value in list(globals().items())
    if name.endswith("_SCHEMA") and isinstance(value, str)
}


def schema_family(value: str) -> str:
    """The family (name without the version suffix) of a schema tag:
    ``profibus-rt/fuzz/v2`` -> ``profibus-rt/fuzz``."""
    head, _, version = value.rpartition("/")
    if not head or not version.startswith("v"):
        raise ValueError(f"not a schema tag: {value!r}")
    return head


#: family -> full tag, for drift detection (one version per family).
FAMILIES: Dict[str, str] = {
    schema_family(value): value for value in SCHEMAS.values()
}
