"""The service wire protocol: newline-delimited JSON, schema
``profibus-rt/service/v1``.

One request per line, one response per line, in order, per connection.
A request envelope names an operation and (for analysis operations)
carries a ``profibus-rt/api/v1`` request document verbatim::

    {"schema": "profibus-rt/service/v1", "id": 7, "op": "analyse",
     "request": {"schema": "profibus-rt/api/v1", "op": "analyse",
                 "network": {...}, "policy": "dm"}}

Responses echo the ``id`` (clients may pipeline) and either wrap an
``profibus-rt/api/v1`` result document::

    {"schema": "profibus-rt/service/v1", "id": 7, "ok": true,
     "op": "analyse", "result": {...}, "cached": false,
     "elapsed_ms": 3.1}

or report a typed error without closing the connection::

    {"schema": "profibus-rt/service/v1", "id": 7, "ok": false,
     "op": "analyse",
     "error": {"type": "bad-request", "message": "..."}}

Error types: ``protocol`` (unparseable/ill-formed envelope),
``bad-request`` (well-formed envelope, unanswerable analysis request —
the :class:`repro.api.ApiError` cases), ``internal`` (server fault).

Control operations need no request document: ``ping`` (liveness +
schema versions), ``stats`` (session statistics + cache counters),
``shutdown`` (graceful stop; in-flight requests complete first).

The ``result`` documents are byte-identical to what
:func:`repro.api.execute` returns offline for the same request — the
service adds transport metadata (``cached``, ``elapsed_ms``) strictly
*outside* the result, so verdicts can be compared bit-exactly across
transports (the service tests and the CI smoke job do exactly that).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..api import API_SCHEMA, OPS as ANALYSIS_OPS
from ..schemas import SERVICE_SCHEMA

CONTROL_OPS = ("ping", "stats", "shutdown")
ALL_OPS = tuple(ANALYSIS_OPS) + CONTROL_OPS

#: Hard cap on one request line (16 MiB): a runaway or hostile client
#: must not buffer the server into the ground.
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """An envelope the server cannot make sense of."""


def encode(doc: Dict[str, Any]) -> bytes:
    """One protocol message as one JSON line (canonical key order, so
    logs and goldens are stable)."""
    return (json.dumps(doc, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable message: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("message must be a JSON object")
    return doc


def request_envelope(
    op: str,
    request: Optional[Dict[str, Any]] = None,
    request_id: Any = None,
) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"schema": SERVICE_SCHEMA, "op": op}
    if request_id is not None:
        doc["id"] = request_id
    if request is not None:
        doc["request"] = request
    return doc


def parse_request(doc: Dict[str, Any]) -> Tuple[str, Any, Optional[Dict[str, Any]]]:
    """``(op, id, api_request_doc_or_None)`` from a request envelope.
    Raises :class:`ProtocolError` on any shape problem."""
    if doc.get("schema") != SERVICE_SCHEMA:
        raise ProtocolError(
            f"unsupported envelope schema {doc.get('schema')!r}; "
            f"this server speaks {SERVICE_SCHEMA}"
        )
    allowed = {"schema", "id", "op", "request"}
    unknown = set(doc) - allowed
    if unknown:
        raise ProtocolError(
            f"unknown envelope key(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    op = doc.get("op")
    if op not in ALL_OPS:
        raise ProtocolError(f"unknown op {op!r}; pick from {list(ALL_OPS)}")
    request = doc.get("request")
    if op in CONTROL_OPS:
        if request is not None:
            raise ProtocolError(f"op {op!r} takes no request document")
        return op, doc.get("id"), None
    if not isinstance(request, dict):
        raise ProtocolError(f"op {op!r} needs a request document")
    if "op" in request and request["op"] != op:
        raise ProtocolError(
            f"envelope op {op!r} does not match request op "
            f"{request['op']!r}"
        )
    return op, doc.get("id"), request


def result_response(
    request_id: Any,
    op: str,
    result: Dict[str, Any],
    cached: bool,
    elapsed_ms: float,
) -> Dict[str, Any]:
    return {
        "schema": SERVICE_SCHEMA,
        "id": request_id,
        "ok": True,
        "op": op,
        "result": result,
        "cached": cached,
        "elapsed_ms": elapsed_ms,
    }


def error_response(
    request_id: Any,
    op: Optional[str],
    error_type: str,
    message: str,
) -> Dict[str, Any]:
    return {
        "schema": SERVICE_SCHEMA,
        "id": request_id,
        "ok": False,
        "op": op,
        "error": {"type": error_type, "message": message},
    }


def ping_result() -> Dict[str, Any]:
    return {"pong": True,
            "schemas": {"service": SERVICE_SCHEMA, "api": API_SCHEMA}}
