"""Per-client session tagging and statistics.

Every connection gets a server-assigned client id (``client-1``,
``client-2``, …) the moment it is accepted; the id tags the session's
statistics for the lifetime of the daemon, surviving disconnect — the
``stats`` operation reports closed sessions too, so a monitoring client
can audit what an earlier batch client did.  All mutation happens on
the server's event loop, so the registry needs no locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class SessionStats:
    """One client connection's running counters."""

    client_id: str
    peer: str
    requests: int = 0
    ok: int = 0
    errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: per-operation request counts (including control ops)
    ops: Dict[str, int] = field(default_factory=dict)
    active: bool = True

    def note_request(self, op: str) -> None:
        self.requests += 1
        self.ops[op] = self.ops.get(op, 0) + 1

    def note_ok(self, cached: bool = False, counts_cache: bool = False) -> None:
        self.ok += 1
        if counts_cache:
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def note_error(self) -> None:
        self.errors += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "client_id": self.client_id,
            "peer": self.peer,
            "active": self.active,
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "ops": dict(sorted(self.ops.items())),
        }


class SessionRegistry:
    """Assigns client ids and aggregates per-session statistics."""

    def __init__(self) -> None:
        self._sessions: Dict[str, SessionStats] = {}
        self._count = 0

    def open(self, peer: str) -> SessionStats:
        self._count += 1
        session = SessionStats(client_id=f"client-{self._count}", peer=peer)
        self._sessions[session.client_id] = session
        return session

    def close(self, session: SessionStats) -> None:
        session.active = False

    @property
    def total(self) -> int:
        return self._count

    @property
    def active(self) -> int:
        return sum(1 for s in self._sessions.values() if s.active)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "total_clients": self.total,
            "active_clients": self.active,
            "sessions": {
                cid: s.snapshot() for cid, s in sorted(self._sessions.items())
            },
        }
