"""Blocking JSON-lines client for the analysis service.

The client the CLI, scripts and tests use.  One socket, one request on
the wire at a time (the server answers in order, so pipelining is
possible — this client just doesn't need it).  Typed replies carry the
``profibus-rt/api/v1`` result document verbatim, plus the transport
metadata (``cached``, ``elapsed_ms``) the server adds around it.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Any, Dict, Optional

from . import protocol


class ServiceError(RuntimeError):
    """An error response from the server (or a dead connection)."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


@dataclass(frozen=True)
class ServiceReply:
    """One successful response off the wire."""

    op: str
    request_id: Any
    result: Dict[str, Any]
    cached: bool
    elapsed_ms: float


class ServiceClient:
    """``with ServiceClient(host, port) as c: c.analyse(doc)``."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # buffered reader so readline() is cheap; writes go via sendall
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing --------------------------------------------------------
    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self,
        op: str,
        request: Optional[Dict[str, Any]] = None,
    ) -> ServiceReply:
        """Send one envelope, block for its response.  Error responses
        raise :class:`ServiceError`; transport loss raises it with type
        ``connection``."""
        self._next_id += 1
        request_id = self._next_id
        envelope = protocol.request_envelope(op, request, request_id)
        self._sock.sendall(protocol.encode(envelope))
        line = self._rfile.readline()
        if not line:
            raise ServiceError("connection", "server closed the connection")
        doc = protocol.decode_line(line)
        if doc.get("schema") != protocol.SERVICE_SCHEMA:
            raise ServiceError(
                "protocol", f"unexpected response schema {doc.get('schema')!r}"
            )
        if not doc.get("ok"):
            error = doc.get("error") or {}
            raise ServiceError(
                error.get("type", "unknown"),
                error.get("message", "unspecified server error"),
            )
        return ServiceReply(
            op=doc.get("op"),
            request_id=doc.get("id"),
            result=doc.get("result"),
            cached=bool(doc.get("cached")),
            elapsed_ms=float(doc.get("elapsed_ms", 0.0)),
        )

    # -- analysis operations ---------------------------------------------
    def analyse(self, request_doc: Dict[str, Any]) -> ServiceReply:
        return self.request("analyse", request_doc)

    def sweep(self, request_doc: Dict[str, Any]) -> ServiceReply:
        return self.request("sweep", request_doc)

    def admission(self, request_doc: Dict[str, Any]) -> ServiceReply:
        return self.request("admission", request_doc)

    def monitor(self, request_doc: Dict[str, Any]) -> ServiceReply:
        return self.request("monitor", request_doc)

    # -- control operations ----------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping").result

    def stats(self) -> Dict[str, Any]:
        return self.request("stats").result

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop (gracefully: in-flight work finishes)."""
        return self.request("shutdown").result
