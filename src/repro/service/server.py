"""The resident asyncio analysis daemon.

Architecture (the single-backend / multi-client proxy shape)::

    client-1 ─┐
    client-2 ─┤  TCP, JSON lines   ┌──────────────────┐
    client-N ─┴────────────────────┤  AnalysisServer  │
                                   │  shared ResultCache
                                   │  shared worker pool
                                   └──────────────────┘

One :class:`AnalysisServer` owns **one** value-keyed
:class:`repro.perf.cache.ResultCache` and **one** worker pool; every
connected client is multiplexed over both.  A request is served in
three steps:

1. the envelope is parsed and the api request's **value key** computed
   (canonical network fingerprint + analysis coordinates) — cheap, on
   the event loop;
2. the shared cache is consulted; a hit returns the stored result
   document without touching the analysis layer at all — this is what
   makes repeated and near-duplicate traffic cheap;
3. a miss computes through :func:`repro.api.execute_request_doc` on the
   worker pool (a shared :class:`~concurrent.futures.ProcessPoolExecutor`
   when ``workers > 1``, the loop's thread executor otherwise, so the
   accept loop stays responsive either way), then populates the cache.

Shutdown is graceful by construction: each connection handler races its
next read against the server-wide stop event, so a ``shutdown`` request
(or :meth:`AnalysisServer.stop`) lets every **in-flight** request
complete and flush its response before connections close.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Optional, Tuple

from .. import api
from ..perf.cache import DEFAULT_CAPACITY, ResultCache
from . import protocol
from .sessions import SessionRegistry, SessionStats


class AnalysisServer:
    """The resident multi-client analysis service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        cache_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.cache = ResultCache(cache_capacity)
        self.sessions = SessionRegistry()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._stopping = asyncio.Event()
        self._client_tasks: set = set()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)`` — with
        ``port=0`` the kernel-assigned port, so scripts and tests can
        connect without racing a fixed number."""
        if self.workers > 1:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_until_stopped(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives,
        then drain: stop accepting, let in-flight requests finish, close
        every connection, shut the pool down."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        self._server.close()
        await self._server.wait_closed()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def run(self) -> Tuple[str, int]:
        """``start`` + ``serve_until_stopped`` in one call (what
        ``repro-cli serve`` runs)."""
        bound = await self.start()
        await self.serve_until_stopped()
        return bound

    async def stop(self) -> None:
        self._stopping.set()

    # -- connection handling ---------------------------------------------
    def _on_connect(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle_client(reader, writer))
        self._client_tasks.add(task)
        task.add_done_callback(self._client_tasks.discard)

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        session = self.sessions.open(peer)
        stop_wait = asyncio.ensure_future(self._stopping.wait())
        try:
            while not self._stopping.is_set():
                read = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {read, stop_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if read not in done:
                    # server stopping while this client sat idle
                    read.cancel()
                    break
                try:
                    line = read.result()
                except (ValueError, asyncio.LimitOverrunError):
                    # request line over MAX_LINE_BYTES: report and drop
                    # the connection (the stream cannot be resynced)
                    session.note_request("?")
                    session.note_error()
                    writer.write(protocol.encode(protocol.error_response(
                        None, None, "protocol",
                        f"request line exceeds {protocol.MAX_LINE_BYTES} "
                        "bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break  # client closed its end
                # In-flight work completes even if shutdown arrives now:
                # the stop event is only consulted between requests.
                response = await self._dispatch(session, line)
                writer.write(protocol.encode(response))
                await writer.drain()
        except ConnectionError:
            pass  # client vanished mid-write; its stats stay recorded
        finally:
            stop_wait.cancel()
            self.sessions.close(session)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    # -- dispatch --------------------------------------------------------
    async def _dispatch(self, session: SessionStats,
                        line: bytes) -> Dict[str, Any]:
        request_id: Any = None
        op: Optional[str] = None
        try:
            envelope = protocol.decode_line(line)
            request_id = envelope.get("id")
            op, request_id, request_doc = protocol.parse_request(envelope)
        except protocol.ProtocolError as exc:
            session.note_request(op or "?")
            session.note_error()
            return protocol.error_response(request_id, op, "protocol",
                                           str(exc))
        session.note_request(op)
        try:
            if op == "ping":
                session.note_ok()
                return protocol.result_response(
                    request_id, op, protocol.ping_result(), False, 0.0
                )
            if op == "stats":
                session.note_ok()
                return protocol.result_response(
                    request_id, op, self.stats_doc(), False, 0.0
                )
            if op == "shutdown":
                session.note_ok()
                self._stopping.set()
                return protocol.result_response(
                    request_id, op, {"stopping": True}, False, 0.0
                )
            return await self._serve_analysis(session, op, request_id,
                                              request_doc)
        except api.ApiError as exc:
            session.note_error()
            return protocol.error_response(request_id, op, "bad-request",
                                           str(exc))
        except Exception as exc:  # noqa: BLE001 — a fault must not kill
            session.note_error()   # the daemon, only the one response
            return protocol.error_response(
                request_id, op, "internal", f"{type(exc).__name__}: {exc}"
            )

    async def _serve_analysis(
        self,
        session: SessionStats,
        op: str,
        request_id: Any,
        request_doc: Dict[str, Any],
    ) -> Dict[str, Any]:
        start = time.perf_counter()
        request = api.AnalysisRequest.from_dict(request_doc)
        # Value key first (cheap): the fingerprint normalises the
        # document, so two clients spelling the same plant differently
        # still share one cache slot.
        net = api._parse_network(request)
        key = request.cache_key(net.fingerprint())
        hit, result_doc = self.cache.get(key)
        if not hit:
            loop = asyncio.get_event_loop()
            result_doc = await loop.run_in_executor(
                self._pool, api.execute_request_doc, request.to_dict()
            )
            self.cache.put(key, result_doc)
        session.note_ok(cached=hit, counts_cache=True)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return protocol.result_response(request_id, op, result_doc, hit,
                                        round(elapsed_ms, 3))

    # -- statistics ------------------------------------------------------
    def stats_doc(self) -> Dict[str, Any]:
        """The ``stats`` operation's result document (shape documented
        in PERF.md): server identity, shared-cache counters, per-client
        session statistics."""
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "workers": self.workers,
            },
            "cache": self.cache.snapshot(),
            "sessions": self.sessions.snapshot(),
        }
