"""Analysis-as-a-service: a resident multi-client daemon.

One analysis backend, N subscribed clients — the single-backend /
multi-client proxy shape.  The asyncio server (:mod:`.server`) accepts
newline-delimited JSON over TCP (:mod:`.protocol`, schema
``profibus-rt/service/v1``), tags every connection with a client id,
keeps per-client session statistics (:mod:`.sessions`), and serves
per-stream analysis verdicts, sweep rows and admission-control checks
through the one typed entrypoint in :mod:`repro.api` — fronted by a
shared value-keyed result cache, so identical and repeated requests
from any client hit instead of recompute.  :mod:`.client` is the
blocking client used by the CLI, scripts and tests.
"""

from .client import ServiceClient, ServiceError, ServiceReply
from .protocol import SERVICE_SCHEMA, ProtocolError
from .server import AnalysisServer
from .sessions import SessionRegistry, SessionStats

__all__ = [
    "AnalysisServer",
    "ProtocolError",
    "SERVICE_SCHEMA",
    "ServiceClient",
    "ServiceError",
    "ServiceReply",
    "SessionRegistry",
    "SessionStats",
]
