"""repro — reproduction of Tovar & Vasques (IPPS/WPDRTS 1999):
"From Task Scheduling in Single Processor Environments to Message
Scheduling in a PROFIBUS Fieldbus Network".

Public surface:

* :mod:`repro.core` — single-processor schedulability theory (§2);
* :mod:`repro.profibus` — PROFIBUS model and message analyses (§3–§4);
* :mod:`repro.apsched` — AP-level jitter and end-to-end delays (§4.1–4.2);
* :mod:`repro.sim` — discrete-event simulators (token bus, uniprocessor);
* :mod:`repro.gen` — workload generators;
* :mod:`repro.scenarios` — reference networks for examples and benches.
"""

from . import apsched, core, gen, profibus, scenarios, sim

__version__ = "1.0.0"

__all__ = ["apsched", "core", "gen", "profibus", "scenarios", "sim", "__version__"]
