"""Reference scenarios used by the examples, tests and benches.

The paper evaluates no concrete network, so these scenarios are our
documented stand-ins (DESIGN.md, substitutions): a small factory cell
with sensor/actuator traffic shaped like the DCCS applications the
paper's introduction motivates.  All scenarios are deterministic.

The factory cell is deliberately tuned to the *interesting* regime: with
the recommended ``TTR`` the stock FCFS queue misses the tightest
deadlines while the §4 priority architectures meet them — the paper's
§5 claim in one object.
"""

from __future__ import annotations

from typing import Optional

from .profibus.cycle import MessageCycleSpec
from .profibus.network import Master, Network, Slave
from .profibus.phy import PhyParameters
from .profibus.stream import MessageStream

#: Bit times per millisecond at 1.5 Mbit/s.
_MS_1M5 = 1500
#: Bit times per millisecond at 500 kbit/s.
_MS_500K = 500


def paper_illustration_network() -> Network:
    """The §3.3 illustration: a ring of masters where one TTH overrun
    plus one high-priority message per following master defines Tdel.

    Three masters, 500 kbit/s; master M1 carries a long low-priority
    stream (the overrunner), all masters carry high-priority traffic.
    """
    phy = PhyParameters(baud_rate=500_000)
    ms = _MS_500K
    m1 = Master(
        1,
        (
            MessageStream("alarm", T=100 * ms, D=60 * ms,
                          spec=MessageCycleSpec(req_payload=2, resp_payload=2)),
            MessageStream("bulk", T=100 * ms, D=100 * ms, high_priority=False,
                          spec=MessageCycleSpec(req_payload=200, resp_payload=8)),
        ),
    )
    m2 = Master(
        2,
        (
            MessageStream("sensor", T=80 * ms, D=80 * ms,
                          spec=MessageCycleSpec(req_payload=0, resp_payload=8)),
        ),
    )
    m3 = Master(
        3,
        (
            MessageStream("actuator", T=90 * ms, D=45 * ms,
                          spec=MessageCycleSpec(req_payload=8, resp_payload=0,
                                                short_ack=True)),
        ),
    )
    return Network(masters=(m1, m2, m3),
                   slaves=(Slave(10), Slave(11), Slave(12)),
                   phy=phy)


#: Recommended TTR (bit times) for :func:`factory_cell_network` — the
#: operating point at which FCFS fails and DM/EDF succeed.
FACTORY_CELL_TTR = 3000


def factory_cell_network(ttr: Optional[int] = FACTORY_CELL_TTR) -> Network:
    """A 4-master factory cell at 1.5 Mbit/s (the E2/E3 reference).

    * ``cell`` — cell controller: axis set-points with a tight deadline,
      an alarm poll, and a slow status exchange;
    * ``plc`` — medium-rate I/O scans plus a command channel;
    * ``robot`` — position updates and a tight gripper command;
    * ``supervisor`` — slow trend acquisition plus low-priority logging
      (the long cycle that drives the TTH-overrun term of eq. (13)).

    With the default ``TTR`` (= :data:`FACTORY_CELL_TTR`): FCFS misses
    the ``axis-setpoint`` deadline (eq. (11) gives 3·Tcycle ≈ 18 ms
    against D = 15 ms) while DM and EDF meet every deadline.
    """
    phy = PhyParameters(baud_rate=1_500_000)
    ms = _MS_1M5
    m1 = Master(1, (
        MessageStream("axis-setpoint", T=50 * ms, D=15 * ms,
                      spec=MessageCycleSpec(req_payload=8, resp_payload=0,
                                            short_ack=True)),
        MessageStream("alarm-poll", T=80 * ms, D=30 * ms,
                      spec=MessageCycleSpec(req_payload=0, resp_payload=4)),
        MessageStream("cell-status", T=100 * ms, D=100 * ms,
                      spec=MessageCycleSpec(req_payload=16, resp_payload=16)),
    ), name="cell")
    m2 = Master(2, (
        MessageStream("io-scan-a", T=60 * ms, D=60 * ms,
                      spec=MessageCycleSpec(req_payload=0, resp_payload=16)),
        MessageStream("io-scan-b", T=60 * ms, D=60 * ms,
                      spec=MessageCycleSpec(req_payload=0, resp_payload=16)),
        MessageStream("io-cmd", T=80 * ms, D=25 * ms,
                      spec=MessageCycleSpec(req_payload=8, resp_payload=0,
                                            short_ack=True)),
    ), name="plc")
    m3 = Master(3, (
        MessageStream("pose-update", T=40 * ms, D=40 * ms,
                      spec=MessageCycleSpec(req_payload=24, resp_payload=4)),
        MessageStream("grip-cmd", T=90 * ms, D=20 * ms,
                      spec=MessageCycleSpec(req_payload=4, resp_payload=0,
                                            short_ack=True)),
    ), name="robot")
    m4 = Master(4, (
        MessageStream("trend", T=200 * ms, D=200 * ms,
                      spec=MessageCycleSpec(req_payload=0, resp_payload=64)),
        MessageStream("log-upload", T=500 * ms, D=500 * ms, high_priority=False,
                      spec=MessageCycleSpec(req_payload=128, resp_payload=8)),
    ), name="supervisor")
    net = Network(masters=(m1, m2, m3, m4),
                  slaves=tuple(Slave(20 + i) for i in range(6)),
                  phy=phy)
    if ttr is not None:
        net = net.with_ttr(ttr)
    return net


def single_master_network(n_streams: int = 5, ttr: int = 500) -> Network:
    """One master at 500 kbit/s with a 1:5 deadline spread — isolates the
    queueing-policy effect (no multi-master token dynamics).

    Defaults put the tightest stream between ``2·Tcycle`` (DM/EDF bound)
    and ``nh·Tcycle`` (FCFS bound), so the policies separate cleanly.
    """
    ms = _MS_500K
    streams = tuple(
        MessageStream(
            f"s{i}",
            T=(20 + 10 * i) * ms,
            D=(5 + 5 * i) * ms,
            spec=MessageCycleSpec(req_payload=8, resp_payload=8),
        )
        for i in range(n_streams)
    )
    return Network(
        masters=(Master(1, streams),),
        phy=PhyParameters(baud_rate=500_000),
        ttr=ttr,
    )
