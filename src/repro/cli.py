"""Command-line interface.

Subcommands::

    profibus-rt analyse  --scenario factory-cell --policy dm [--ttr N]
    profibus-rt ttr      --scenario factory-cell
    profibus-rt simulate --scenario factory-cell --policy edf --horizon-ms 4000
    profibus-rt monitor  --scenario factory-cell --trace run.jsonl
    profibus-rt report   --scenario factory-cell
    profibus-rt fuzz     --budget 200 --seed 0
    profibus-rt serve    --port 7532 --workers 4

``analyse`` prints per-stream worst-case response times (eqs. 11/16/17);
``ttr`` prints the maximum feasible TTR per policy (eq. 15 +
generalisation); ``simulate`` runs the token-bus simulator and compares
observed responses against the analytic bounds (``--export-trace``
records the run as a ``profibus-rt/trace/v1`` JSONL file); ``monitor``
checks a recorded frame log — exported or foreign — against the same
bounds (:mod:`repro.monitor`), from a file or following stdin;
``report`` prints the token-cycle breakdown (eqs. 13–14); ``serve``
runs the resident analysis service (:mod:`repro.service`).

``analyse``, ``sweep`` and ``serve`` are all thin transports over the
one typed entrypoint in :mod:`repro.api` — same request, same result
document, whichever way it arrives.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .profibus.timing import token_cycle_report
from .profibus.ttr import ttr_advantage
from .scenarios import (
    factory_cell_network,
    paper_illustration_network,
    single_master_network,
)
from .sim.validate import validate_network

_SCENARIOS: Dict[str, Callable] = {
    "factory-cell": factory_cell_network,
    "paper-illustration": lambda: paper_illustration_network().with_ttr(3000),
    "single-master": single_master_network,
}


def _load_network(args):
    # An unknown --scenario is reported (with the valid choices) before
    # any other argument is processed — in particular before a --file is
    # opened, so a typo'd scenario never turns into a confusing
    # file-related error downstream.
    scenario = getattr(args, "scenario", None)
    if scenario is not None and scenario not in _SCENARIOS:
        raise SystemExit(
            f"unknown scenario {scenario!r}; pick from {sorted(_SCENARIOS)}"
        )
    if getattr(args, "file", None):
        from .profibus.serialization import ScenarioFormatError, load_network

        try:
            net = load_network(args.file)
        except OSError as exc:
            raise SystemExit(f"cannot read scenario file {args.file}: {exc}")
        except ScenarioFormatError as exc:
            raise SystemExit(f"bad scenario file {args.file}: {exc}")
    else:
        if scenario is None:
            raise SystemExit(
                f"need --scenario or --file; scenarios: {sorted(_SCENARIOS)}"
            )
        net = _SCENARIOS[scenario]()
    if getattr(args, "ttr", None):
        net = net.with_ttr(args.ttr)
    return net


def _cmd_analyse(args) -> int:
    from . import api

    net = _load_network(args)
    payload = api.analyse_network(net, policy=args.policy,
                                  refined=args.refined,
                                  mode=args.mode).payload
    phy = net.phy
    print(f"scenario={args.scenario} policy={args.policy} "
          f"TTR={payload['ttr']} ({phy.ms(payload['ttr']):.2f} ms) "
          f"Tcycle={payload['tcycle']} ({phy.ms(payload['tcycle']):.2f} ms)")
    print(f"{'stream':<28}{'R (bits)':>10}{'R (ms)':>9}{'D (ms)':>9}  verdict")
    for row in payload["streams"]:
        r = row["R"] if row["R"] is not None else float("inf")
        print(f"{row['master'] + '/' + row['stream']:<28}"
              f"{row['R'] if row['R'] is not None else '∞':>10}"
              f"{phy.ms(r):>9.2f}{phy.ms(row['D']):>9.2f}  "
              f"{'ok' if row['schedulable'] else 'MISS'}")
    print(f"schedulable: {payload['schedulable']}")
    return 0 if payload["schedulable"] else 1


def _cmd_ttr(args) -> int:
    net = _load_network(args)
    adv = ttr_advantage(net, refined=args.refined)
    phy = net.phy
    print(f"scenario={args.scenario} — maximum feasible TTR per policy")
    for policy, val in adv.items():
        if val is None:
            print(f"  {policy:<5} infeasible at any TTR")
        else:
            print(f"  {policy:<5} TTR ≤ {val} bits ({phy.ms(val):.2f} ms)")
    return 0


def _cmd_simulate(args) -> int:
    net = _load_network(args)
    horizon = int(args.horizon_ms * net.phy.baud_rate / 1000)
    config = None
    tracer = None
    if getattr(args, "export_trace", None):
        from .sim.token import TokenBusConfig
        from .sim.trace import BusTrace

        policy = {"fcfs": "stock-fcfs", "dm": "ap-dm",
                  "edf": "ap-edf"}[args.policy]
        tracer = BusTrace(max_events=args.trace_events)
        config = TokenBusConfig(policy=policy, tracer=tracer)
    report = validate_network(net, args.policy, horizon, config=config)
    if tracer is not None:
        from .monitor import write_trace_jsonl

        write_trace_jsonl(tracer, args.export_trace, horizon=horizon)
        print(f"wrote {args.export_trace} ({len(tracer.events)} events"
              f"{', truncated' if tracer.truncated else ''})")
    print(f"scenario={args.scenario} policy={args.policy} "
          f"horizon={args.horizon_ms} ms  (events={report.detail['events']})")
    print(f"{'stream':<28}{'bound':>10}{'observed':>10}{'jobs':>10}  verdict")
    for row in report.rows:
        jobs = f"{row.completed}/{row.released}"
        print(f"{row.name:<28}{row.bound if row.bound is not None else '∞':>10}"
              f"{row.effective_observed:>10}{jobs:>10}  {row.verdict}")
    print(f"max TRR observed: {report.detail['max_trr_observed']} "
          f"(Tcycle bound {report.detail['tcycle_bound']})")
    print(f"all bounds sound: {report.all_sound}")
    return 0 if report.all_sound else 1


def _cmd_report(args) -> int:
    net = _load_network(args)
    rep = token_cycle_report(net)
    phy = net.phy
    print(f"scenario={args.scenario}")
    print(f"  ring latency     : {rep.ring_latency} bits")
    print(f"  TTR              : {rep.ttr} bits ({phy.ms(rep.ttr):.2f} ms)")
    print(f"  Tdel (eq. 13)    : {rep.tdel_aggregate} bits")
    print(f"  Tdel (refined)   : {rep.tdel_refined} bits")
    print(f"  Tcycle (eq. 14)  : {rep.tcycle_aggregate} bits "
          f"({phy.ms(rep.tcycle_aggregate):.2f} ms)")
    print(f"  Tcycle (refined) : {rep.tcycle_refined} bits")
    print("  per-master longest cycles (any / high-priority):")
    for name in rep.per_master_cm:
        print(f"    {name:<12} {rep.per_master_cm[name]:>6} / "
              f"{rep.per_master_chm[name]:>6}")
    return 0


def _cmd_sweep(args) -> int:
    from . import api

    net = _load_network(args)
    if args.param == "ttr":
        values = tuple(range(args.start, args.stop + 1, args.step))
    elif args.param == "deadline-scale":
        n = max(2, (args.stop - args.start) // max(1, args.step) + 1)
        values = tuple(args.start / 100.0 + i * args.step / 100.0
                       for i in range(n)
                       if args.start + i * args.step <= args.stop)
    elif args.param == "baud":
        values = ()  # empty = the standard rates
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown sweep parameter {args.param!r}")
    try:
        result = api.sweep_network(net, args.param, values,
                                   workers=args.workers, mode=args.mode)
    except api.ApiError as exc:
        raise SystemExit(str(exc))
    print(result.payload["csv"], end="")
    return 0


def _cmd_trace(args) -> int:
    from .sim.token import TokenBusConfig, simulate_token_bus
    from .sim.trace import BusTrace, render_timeline

    net = _load_network(args)
    horizon = int(args.horizon_ms * net.phy.baud_rate / 1000)
    trace = BusTrace()
    policy = {"fcfs": "stock-fcfs", "dm": "ap-dm", "edf": "ap-edf"}[args.policy]
    simulate_token_bus(net, horizon,
                       config=TokenBusConfig(policy=policy, tracer=trace))
    window = int(args.window_ms * net.phy.baud_rate / 1000)
    # render_timeline itself annotates a truncated trace
    print(render_timeline(trace, 0, min(window, horizon), width=args.width))
    print(f"\nbus utilisation over trace: {trace.bus_utilisation() * 100:.1f}%")
    return 0


def _print_monitor_report(doc) -> None:
    """Text rendering of a ``profibus-rt/monitor/v1`` document (same
    columns as ``simulate``, plus the per-master rotation checks)."""
    detail = doc["detail"]
    print(f"policy={detail['policy']} horizon={detail['horizon']} "
          f"events={detail['events']} source={detail['source_format']}")
    print(f"{'stream':<28}{'bound':>10}{'observed':>10}{'jobs':>10}  verdict")
    for row in doc["rows"]:
        jobs = f"{row['completed']}/{row['released']}"
        bound = row["bound"] if row["bound"] is not None else "∞"
        print(f"{row['name']:<28}{bound:>10}"
              f"{row['effective_observed']:>10}{jobs:>10}  {row['verdict']}")
    print(f"{'master':<28}{'Tcycle':>10}{'max TRR':>10}{'visits':>10}  verdict")
    for name, m in doc["masters"].items():
        print(f"{name:<28}{m['trr_bound']:>10}{m['max_trr']:>10}"
              f"{m['token_visits']:>10}  {m['verdict']}")
    if detail.get("truncated"):
        print(f"(trace truncated: {detail['dropped']} events dropped — "
              "positive verdicts degraded)")
    if detail.get("unmatched_cycle_ends"):
        print(f"(unmatched cycle ends: {detail['unmatched_cycle_ends']} — "
              "affected streams degraded)")


def _cmd_monitor(args) -> int:
    import json as json_mod

    from . import api
    from .monitor import TraceFormatError

    net = _load_network(args)

    if args.follow:
        # Incremental mode: feed stdin line by line, snapshot as JSON
        # lines every --every events and once at EOF.  The native header
        # line (if present) seeds horizon/dropped metadata.
        from .monitor.engine import TraceMonitor
        from .monitor.trace_io import parse_event_line, parse_header_line

        mon = TraceMonitor(net, args.policy, refined=args.refined,
                           stats_after=args.stats_after)
        horizon = args.horizon
        try:
            for i, raw in enumerate(sys.stdin):
                line = raw.strip()
                if not line:
                    continue
                if i == 0 and line.startswith("{"):
                    header = parse_header_line(line)
                    if header is not None:
                        if header["dropped"]:
                            mon.note_dropped(header["dropped"])
                        if horizon is None:
                            horizon = header["horizon"]
                        continue
                mon.feed(parse_event_line(line, where=f"stdin line {i + 1}"))
                if args.every and mon.events_seen % args.every == 0:
                    print(json_mod.dumps(mon.report(horizon=None).to_dict()),
                          flush=True)
        except TraceFormatError as exc:
            raise SystemExit(f"monitor: {exc}")
        report = mon.report(horizon=horizon)
        print(json_mod.dumps(report.to_dict()), flush=True)
        return 0 if report.all_clear else 1

    # File mode: ingest the whole log, then route through the same typed
    # facade the service uses — one request, one result document.
    from .monitor import read_trace

    try:
        if args.trace == "-":
            ingested = read_trace(sys.stdin, fmt=args.trace_format)
        else:
            ingested = read_trace(args.trace, fmt=args.trace_format)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.trace}: {exc}")
    except TraceFormatError as exc:
        raise SystemExit(f"bad trace {args.trace}: {exc}")
    if args.horizon is not None:
        ingested.horizon = args.horizon
    try:
        result = api.monitor_check(
            net, ingested.to_doc(), policy=args.policy,
            refined=args.refined, stats_after=args.stats_after,
        )
    except api.ApiError as exc:
        raise SystemExit(f"monitor: {exc}")
    doc = result.payload["report"]
    if args.json:
        print(json_mod.dumps(doc, indent=2, sort_keys=True))
    else:
        _print_monitor_report(doc)
        print(f"all clear: {result.payload['all_clear']}")
    return 0 if result.payload["all_clear"] else 1


def _cmd_bandwidth(args) -> int:
    from .profibus.bandwidth import bandwidth_advantage, low_priority_bandwidth
    from .profibus.ttr import max_feasible_ttr

    net = _load_network(args)
    phy = net.phy
    print(f"scenario={args.file or args.scenario} — guaranteed low-priority "
          "bandwidth at each policy's maximum feasible TTR")
    for policy in ("fcfs", "dm", "edf"):
        best = max_feasible_ttr(net, policy, refined=args.refined)
        if best is None:
            print(f"  {policy:<5} infeasible at any TTR")
            continue
        rep = low_priority_bandwidth(net, best, refined=args.refined)
        print(f"  {policy:<5} TTR={best} ({phy.ms(best):.2f} ms)  "
              f"low budget {rep.low_budget_per_rotation:.0f} bits/rotation  "
              f"= {rep.low_fraction * 100:.1f}% of bus time")
    return 0


def _cmd_bench(args) -> int:
    from .perf.bench import format_report, run_benchmark, write_benchmark

    if args.networks < 1:
        raise SystemExit("bench: --networks must be >= 1")
    report = run_benchmark(
        n_networks=args.networks,
        workers=args.workers,
        seed=args.seed,
        rounds=args.rounds,
        check=not args.no_check,
        modes=tuple(args.mode) if args.mode else None,
    )
    for line in format_report(report):
        print(line)
    path = write_benchmark(report, args.out)
    print(f"wrote {path}")
    # Non-zero only on an actual mismatch (None = check skipped).
    return 1 if report["consistent"] is False else 0


def _cmd_fuzz(args) -> int:
    from .fuzz import CampaignConfig, FAMILIES, run_campaign, write_report

    families = tuple(args.families) if args.families else tuple(FAMILIES)
    config = CampaignConfig(
        budget=args.budget,
        seed=args.seed,
        families=families,
        workers=args.workers,
        horizon_cap=args.horizon_cap,
        max_horizon_extensions=args.max_extensions,
        horizon_extension_factor=args.extension_factor,
        checkpoint=args.checkpoint,
        max_counterexamples=args.max_counterexamples,
        shrink=not args.no_shrink,
        corpus_dir=args.promote_corpus,
    )
    result = run_campaign(config)
    t = result.timings
    print(f"fuzz: {result.instances} instances, seed {config.seed}, "
          f"{len(config.families)} families "
          f"({result.elapsed_seconds:.1f}s: "
          f"kernel grid {t.get('kernel_grid_seconds', 0.0):.1f}s, "
          f"instance oracles {t.get('instance_oracles_seconds', 0.0):.1f}s, "
          f"shrink {t.get('shrink_seconds', 0.0):.1f}s)")
    if result.resumed_instances:
        print(f"  resumed {result.resumed_instances} instance(s) from "
              f"checkpoint {config.checkpoint}")
    for name, row in result.oracle_stats.items():
        line = f"  {name:<20} checked={row['checked']} failed={row['failed']}"
        if row["skipped"]:
            line += f" skipped={row['skipped']}"
        if row["extended"]:
            line += f" extended={row['extended']}"
        print(line)
    failing_families = {
        family: {o: row["failed"] for o, row in per_oracle.items()
                 if row["failed"]}
        for family, per_oracle in result.family_oracle_stats.items()
        if any(row["failed"] for row in per_oracle.values())
    }
    for family, per_oracle in sorted(failing_families.items()):
        breakdown = ", ".join(f"{o}={n}" for o, n in sorted(per_oracle.items()))
        print(f"  family {family}: {breakdown}")
    for ce in result.counterexamples:
        masters = len(ce.shrunk.masters)
        streams = sum(len(m.streams) for m in ce.shrunk.masters)
        print(f"  COUNTEREXAMPLE [{ce.oracle}] {ce.family}#{ce.index}: "
              f"{ce.detail}")
        print(f"    shrunk to {masters} master(s) / {streams} stream(s): "
              f"{ce.shrunk_detail}")
    for entry_id in result.promoted_entries:
        print(f"  promoted to corpus: {entry_id}")
    for entry_id in result.promotion_skipped:
        print(f"  already in corpus: {entry_id}")
    for entry_id, error in result.promotion_errors:
        print(f"  NOT PROMOTABLE {entry_id}: {error}")
    path = write_report(result, args.out)
    print(f"wrote {path}")
    # A counterexample that cannot be frozen into the corpus is its own
    # failure: the regression would be lost the moment the seed moves.
    return 0 if result.ok and not result.promotion_errors else 1


def _cmd_lint(args) -> int:
    from .lint import LintUsageError, render_json, render_text, run_lint

    try:
        result = run_lint(
            args.paths,
            rule_ids=args.rules or None,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            flow=args.flow,
            include_fixtures=args.include_fixtures,
            changed_only=args.changed_only,
            changed_base=args.base,
            dump_graph=args.dump_graph,
        )
    except LintUsageError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    for warning in result.warnings:
        print(f"lint: warning: {warning}", file=sys.stderr)
    doc = result.to_doc()
    if args.format == "json":
        print(render_json(doc), end="")
    else:
        print(render_text(doc), end="")
    return result.exit_code


def _cmd_serve(args) -> int:
    import asyncio

    from .service import AnalysisServer

    if args.workers < 1:
        raise SystemExit("serve: --workers must be >= 1")
    if args.cache_capacity < 1:
        raise SystemExit("serve: --cache-capacity must be >= 1")
    server = AnalysisServer(host=args.host, port=args.port,
                            workers=args.workers,
                            cache_capacity=args.cache_capacity)

    async def main() -> None:
        host, port = await server.start()
        # flushed immediately: scripts (and the CI smoke job) wait for
        # this line to learn the kernel-assigned port when --port 0
        print(f"listening on {host}:{port}", flush=True)
        await server.serve_until_stopped()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_export(args) -> int:
    from .profibus.serialization import save_network

    net = _load_network(args)
    save_network(net, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_corpus_record(args) -> int:
    from .corpus import store

    if args.seed_defaults:
        if (args.update or args.scenario or args.file or args.id
                or args.ttr or args.corpus_file):
            # refusing beats half-executing: "--seed-defaults --update"
            # would rewrite the seed files and silently leave e.g.
            # promoted.jsonl unrefrozen while exiting 0, and a --ttr
            # override is never applied to the seeds
            raise SystemExit(
                "corpus record: --seed-defaults cannot be combined with "
                "--update/--scenario/--file/--id/--ttr/--corpus-file"
            )
        try:
            ids = store.write_seed_corpus(args.dir)
        except ValueError as exc:
            raise SystemExit(str(exc))
        for entry_id in ids:
            print(f"  recorded {entry_id}")
        print(f"wrote {len(ids)} seeded entries under {args.dir}/")
        return 0
    if args.file or args.scenario:
        net = _load_network(args)
        if args.id:
            entry_id = args.id
        elif args.scenario:
            entry_id = f"scenario:{args.scenario}"
        else:
            from pathlib import Path

            entry_id = f"file:{Path(args.file).stem}"
        provenance = {
            "source": "scenario" if args.scenario else "file",
            "scenario": args.scenario,
            "file": args.file,
        }
        config = None
        if args.update:
            # refreezing an existing entry keeps its pinned config and
            # provenance (a short-horizon entry must not silently revert
            # to derived defaults and stop testing what it pins)
            try:
                existing = {e.entry_id: e
                            for e in store.load_corpus(args.dir)}
            except ValueError:
                existing = {}
            old = existing.get(entry_id)
            if old is not None:
                config = old.config
                provenance = old.provenance
        filename = args.corpus_file or "local.jsonl"
        try:
            entry = store.record_network(net, entry_id, provenance,
                                         config=config)
            store.append_entry(args.dir, filename, entry,
                               update=args.update)
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(f"recorded {entry_id} -> {args.dir}/{filename}")
        return 0
    if args.update:
        if args.id or args.ttr or args.corpus_file:
            raise SystemExit(
                "corpus record: --update without --scenario/--file "
                "refreezes the whole corpus and takes no "
                "--id/--ttr/--corpus-file; to refreeze one entry, name "
                "its source: --update --scenario X --id ID"
            )
        try:
            ids = store.refreeze_corpus(args.dir)
        except ValueError as exc:
            raise SystemExit(str(exc))
        for entry_id in ids:
            print(f"  refroze {entry_id}")
        print(f"refroze {len(ids)} entries under {args.dir}/")
        return 0
    raise SystemExit(
        "corpus record: pass --seed-defaults, --scenario/--file, or "
        "--update (refreeze all)"
    )


def _cmd_corpus_check(args) -> int:
    from .corpus import store

    try:
        report = store.check_corpus(args.dir, entry_ids=args.entry or None,
                                    workers=args.workers)
    except ValueError as exc:
        raise SystemExit(str(exc))
    for line in report.format_lines(verbose=args.verbose):
        print(line)
    return 0 if report.ok else 1


def _cmd_corpus_promote(args) -> int:
    import json as json_mod
    from pathlib import Path

    from .corpus import store

    try:
        doc = json_mod.loads(Path(args.report).read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read fuzz report {args.report}: {exc}")
    except json_mod.JSONDecodeError as exc:
        raise SystemExit(f"bad fuzz report {args.report}: {exc}")
    try:
        result = store.promote_report_doc(doc, args.dir)
    except ValueError as exc:
        raise SystemExit(f"bad fuzz report {args.report}: {exc}")
    for entry_id in result.added:
        print(f"  promoted {entry_id}")
    for entry_id in result.skipped:
        print(f"  already present {entry_id}")
    for entry_id, error in result.errors:
        print(f"  NOT PROMOTABLE {entry_id}: {error}")
    print(f"corpus promote: {len(result.added)} added, "
          f"{len(result.skipped)} skipped, {len(result.errors)} errors")
    return 0 if result.ok else 1


def _cmd_corpus_mutants(args) -> int:
    from .corpus import mutants as mutants_mod

    try:
        report = mutants_mod.run_mutation_harness(
            args.dir, mutant_names=args.mutant or None
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    for line in report.format_lines():
        print(line)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="profibus-rt",
        description="PROFIBUS real-time message schedulability toolbox "
        "(Tovar & Vasques, IPPS/WPDRTS 1999 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, policy=True):
        source = p.add_mutually_exclusive_group()
        source.add_argument("--scenario", default="factory-cell",
                            choices=sorted(_SCENARIOS))
        source.add_argument("--file", default=None, metavar="SCENARIO.json",
                            help="load the network from a scenario file "
                                 "instead of --scenario")
        p.add_argument("--ttr", type=int, default=None,
                       help="override the scenario TTR (bit times)")
        p.add_argument("--refined", action="store_true",
                       help="use the refined per-master Tdel bound")
        if policy:
            p.add_argument("--policy", default="dm",
                           choices=("fcfs", "dm", "edf"))

    def add_mode(p):
        p.add_argument("--mode", default=None,
                       choices=("generic", "fast", "vectorized"),
                       help="analysis mode override; every mode answers "
                            "bit-identically (default: process default)")

    p = sub.add_parser("analyse", help="per-stream worst-case response times")
    add_common(p)
    add_mode(p)
    p.set_defaults(func=_cmd_analyse)

    p = sub.add_parser("ttr", help="maximum feasible TTR per policy")
    add_common(p, policy=False)
    p.set_defaults(func=_cmd_ttr)

    p = sub.add_parser("simulate", help="token-bus simulation vs bounds")
    add_common(p)
    p.add_argument("--horizon-ms", type=float, default=2000.0)
    p.add_argument("--export-trace", default=None, metavar="TRACE.jsonl",
                   help="record the run and export it as a native "
                        "profibus-rt/trace/v1 JSONL file (see 'monitor')")
    p.add_argument("--trace-events", type=int, default=100_000,
                   help="recorder buffer cap; a longer run is truncated "
                        "and the export says so")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("report", help="token-cycle breakdown (eqs. 13-14)")
    add_common(p, policy=False)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "bandwidth",
        help="guaranteed low-priority bandwidth at each policy's max TTR",
    )
    add_common(p, policy=False)
    p.set_defaults(func=_cmd_bandwidth)

    p = sub.add_parser("export", help="write the scenario to a JSON file")
    add_common(p, policy=False)
    p.add_argument("output", help="path of the scenario file to write")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "sweep",
        help="CSV parameter sweep (TTR / deadline scale / baud rate)",
    )
    add_common(p, policy=False)
    p.add_argument("--param", default="ttr",
                   choices=("ttr", "deadline-scale", "baud"))
    p.add_argument("--start", type=int, default=500,
                   help="first value (TTR bits, or percent for "
                        "deadline-scale)")
    p.add_argument("--stop", type=int, default=8000)
    p.add_argument("--step", type=int, default=500)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size for the sweep grid "
                        "(default: serial)")
    add_mode(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "bench",
        help="batch-analysis throughput benchmark -> BENCH_batch.json",
    )
    p.add_argument("--networks", type=int, default=500,
                   help="number of random networks in the workload")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: cpu count)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rounds", type=int, default=3,
                   help="timed repetitions per mode (best is reported)")
    p.add_argument("--out", default="BENCH_batch.json",
                   help="output JSON path")
    p.add_argument("--no-check", action="store_true",
                   help="skip the cross-mode result-equality check")
    p.add_argument("--mode", nargs="*", default=None,
                   choices=("generic", "fast", "vectorized"),
                   help="restrict the benchmark to these analysis modes "
                        "(default: all; parallel rows always use the "
                        "process default)")
    p.set_defaults(func=_cmd_bench)

    from .fuzz.families import FAMILIES

    def positive_int(value: str) -> int:
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return n

    p = sub.add_parser(
        "fuzz",
        help="differential soundness-fuzzing campaign -> FUZZ_report.json",
    )
    p.add_argument("--budget", type=positive_int, default=200,
                   help="number of random network instances")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (instances are a pure function of "
                        "seed, family, index)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size for the kernel-equivalence grid "
                        "and the per-instance oracles, including the "
                        "soundness simulations (default: serial)")
    p.add_argument("--families", nargs="*", default=None, metavar="FAMILY",
                   choices=sorted(FAMILIES),
                   help="restrict to these network families "
                        f"(default: all; choices: {', '.join(sorted(FAMILIES))})")
    p.add_argument("--horizon-cap", type=int, default=3_000_000,
                   help="initial soundness-simulation horizon budget in bit "
                        "times; larger needs start capped here and rely on "
                        "the auto-extender")
    p.add_argument("--max-extensions", type=int, default=4,
                   help="geometric horizon retries before an incomplete "
                        "soundness run is recorded as a skip (0 disables "
                        "the auto-extender)")
    p.add_argument("--extension-factor", type=float, default=2.0,
                   help="horizon multiplier per auto-extension retry")
    p.add_argument("--checkpoint", default=None, metavar="STATE.jsonl",
                   help="stream per-instance results to this JSONL file; "
                        "rerunning with the same file resumes an "
                        "interrupted campaign")
    p.add_argument("--max-counterexamples", type=positive_int, default=10,
                   help="stop collecting/shrinking after this many failures")
    p.add_argument("--no-shrink", action="store_true",
                   help="report raw counterexamples without minimisation")
    p.add_argument("--promote-corpus", default=None, metavar="DIR",
                   help="promote every shrunk counterexample into this "
                        "golden-corpus directory at campaign end")
    p.add_argument("--out", default="FUZZ_report.json",
                   help="output JSON path")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "corpus",
        help="golden regression corpus: record/check/diff/promote/mutants",
    )
    csub = p.add_subparsers(dest="corpus_command", required=True)

    def add_corpus_dir(cp):
        cp.add_argument("--dir", default="corpus",
                        help="corpus directory of *.jsonl entry files "
                             "(default: corpus/)")

    cp = csub.add_parser(
        "record",
        help="freeze golden results (seed defaults, one network, or "
             "refreeze all)",
    )
    add_corpus_dir(cp)
    cp.add_argument("--seed-defaults", action="store_true",
                    help="(re)write the seeded corpus: built-in scenarios "
                         "+ one exemplar per fuzz family")
    cp.add_argument("--update", action="store_true",
                    help="refreeze existing entries (after an intentional "
                         "analytic change)")
    source = cp.add_mutually_exclusive_group()
    source.add_argument("--scenario", default=None,
                        choices=sorted(_SCENARIOS))
    source.add_argument("--file", default=None, metavar="SCENARIO.json")
    cp.add_argument("--ttr", type=int, default=None)
    cp.add_argument("--id", default=None,
                    help="entry id (default: derived from the source)")
    cp.add_argument("--corpus-file", default=None, metavar="NAME.jsonl",
                    help="corpus file new entries are appended to "
                         "(default: local.jsonl)")
    cp.set_defaults(func=_cmd_corpus_record)

    cp = csub.add_parser(
        "check",
        help="recompute every golden section and compare bit-exactly",
    )
    add_corpus_dir(cp)
    cp.add_argument("--entry", nargs="*", default=None, metavar="ID",
                    help="restrict to these entry ids")
    cp.add_argument("--verbose", action="store_true",
                    help="print the first diverging value per mismatch")
    cp.add_argument("--workers", type=int, default=1,
                    help="process-pool size for the per-entry oracle "
                         "recomputation (default: serial)")
    cp.set_defaults(func=_cmd_corpus_check)

    cp = csub.add_parser(
        "diff",
        help="corpus check with full per-section divergence details",
    )
    add_corpus_dir(cp)
    cp.add_argument("--entry", nargs="*", default=None, metavar="ID")
    cp.add_argument("--workers", type=int, default=1,
                    help="process-pool size for the per-entry oracle "
                         "recomputation (default: serial)")
    # diff IS check with the divergence details always on
    cp.set_defaults(func=_cmd_corpus_check, verbose=True)

    cp = csub.add_parser(
        "promote",
        help="freeze every shrunk counterexample of a FUZZ_report.json "
             "into the corpus",
    )
    add_corpus_dir(cp)
    cp.add_argument("--report", default="FUZZ_report.json",
                    help="fuzz report to promote counterexamples from")
    cp.set_defaults(func=_cmd_corpus_promote)

    cp = csub.add_parser(
        "mutants",
        help="mutation-strength harness: inject known-bad analysis "
             "variants, assert corpus check kills each",
    )
    add_corpus_dir(cp)
    cp.add_argument("--mutant", nargs="*", default=None, metavar="NAME",
                    help="restrict to these mutants (default: all)")
    cp.set_defaults(func=_cmd_corpus_mutants)

    p = sub.add_parser(
        "lint",
        help="static invariant checks (bit-exactness, determinism, "
             "schema contracts) -> exit 1 on findings",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files/directories to lint (default: src)")
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="report format (json follows schema "
                        "profibus-rt/lint/v2)")
    p.add_argument("--rules", nargs="*", default=None, metavar="REPxxx",
                   help="restrict to these rule ids (default: all)")
    p.add_argument("--baseline", default=None, metavar="BASELINE.jsonl",
                   help="JSONL baseline: existing findings listed there "
                        "are subtracted from the report")
    p.add_argument("--update-baseline", action="store_true",
                   help="freeze the current findings into --baseline "
                        "and report clean")
    p.add_argument("--flow", dest="flow", action="store_true",
                   default=True,
                   help="run the interprocedural call-graph passes "
                        "REP010-REP013 (default: on)")
    p.add_argument("--no-flow", dest="flow", action="store_false",
                   help="per-file rules only; skip call-graph "
                        "construction")
    p.add_argument("--dump-graph", default=None, metavar="GRAPH.json",
                   help="also write the deterministic call-graph "
                        "artifact (schema profibus-rt/callgraph/v1)")
    p.add_argument("--changed-only", action="store_true",
                   help="lint only files changed vs --base per git "
                        "diff; full run with a warning outside git")
    p.add_argument("--base", default="HEAD", metavar="REF",
                   help="git base for --changed-only (default: HEAD)")
    p.add_argument("--include-fixtures", action="store_true",
                   help="also lint tests/lint_fixtures/** "
                        "(intentionally-bad trees, skipped by default)")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "serve",
        help="run the resident analysis service (JSON lines over TCP)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback only)")
    p.add_argument("--port", type=int, default=7532,
                   help="TCP port; 0 asks the kernel for a free one "
                        "(reported on the 'listening on' line)")
    p.add_argument("--workers", type=int, default=1,
                   help="analysis process-pool size; 1 computes on a "
                        "thread off the accept loop (default)")
    p.add_argument("--cache-capacity", type=int, default=4096,
                   help="shared result-cache capacity (LRU entries)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "monitor",
        help="check a recorded frame log against the analytic bounds",
    )
    add_common(p)
    p.add_argument("--trace", default="-", metavar="TRACE",
                   help="frame log to ingest: native/external JSONL or "
                        "CSV ('-' = stdin; default)")
    p.add_argument("--trace-format", default="auto",
                   choices=("auto", "jsonl", "csv"),
                   help="ingest format (default: sniff from the first line)")
    p.add_argument("--horizon", type=int, default=None,
                   help="end of the observation window (bit times); "
                        "default: the trace's own horizon, else the last "
                        "event time")
    p.add_argument("--stats-after", type=int, default=0,
                   help="ignore responses of releases before this time "
                        "(bit times) — steady-state filter")
    p.add_argument("--follow", action="store_true",
                   help="incremental mode: feed events from stdin as they "
                        "arrive, emit monitor reports as JSON lines")
    p.add_argument("--every", type=int, default=0, metavar="N",
                   help="with --follow: emit a snapshot every N events "
                        "(default: only the final one)")
    p.add_argument("--json", action="store_true",
                   help="print the profibus-rt/monitor/v1 document instead "
                        "of the text table")
    p.set_defaults(func=_cmd_monitor)

    p = sub.add_parser("trace", help="simulate and render an ASCII bus timeline")
    add_common(p)
    p.add_argument("--horizon-ms", type=float, default=200.0)
    p.add_argument("--window-ms", type=float, default=50.0,
                   help="timeline window rendered from t=0")
    p.add_argument("--width", type=int, default=100)
    p.set_defaults(func=_cmd_trace)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
