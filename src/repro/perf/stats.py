"""Fixed-point iteration accounting.

Both drivers — the generic :func:`repro.core.timeops.fixed_point` and the
integer kernels — add their iteration counts here at *call* granularity
(one integer add per solved recursion, nothing per step), so the bench
can report how many iterations each path actually executed for the same
workload.  The split shows where the seed jump pays off: the fast path
solves the same fixed points in fewer steps.
"""

from __future__ import annotations


class IterationCounters:
    """Process-wide iteration tallies, separated by driver."""

    __slots__ = ("generic", "fast")

    def __init__(self) -> None:
        self.generic = 0
        self.fast = 0

    def reset(self) -> "IterationCounters":
        self.generic = 0
        self.fast = 0
        return self

    def snapshot(self) -> dict:
        return {"generic": self.generic, "fast": self.fast,
                "total": self.generic + self.fast}


#: The process-wide tally (workers report theirs back through the batch
#: driver's chunk results).
counters = IterationCounters()
