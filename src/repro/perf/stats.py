"""Fixed-point iteration accounting.

All three drivers — the generic :func:`repro.core.timeops.fixed_point`,
the integer kernels, and the vector engine — add their iteration counts
here at *call* granularity (one integer add per solved recursion or per
lane sweep batch, nothing per step), so the bench can report how many
iterations each path actually executed for the same workload.  The
split shows where each acceleration pays off: the fast path solves the
same fixed points in fewer steps (seed jump), the vectorized path
spends the same lane-iterations but amortises them across a whole batch
per sweep.
"""

from __future__ import annotations


class IterationCounters:
    """Process-wide iteration tallies, separated by driver."""

    __slots__ = ("generic", "fast", "vectorized")

    def __init__(self) -> None:
        self.generic = 0
        self.fast = 0
        self.vectorized = 0

    def reset(self) -> "IterationCounters":
        self.generic = 0
        self.fast = 0
        self.vectorized = 0
        return self

    def snapshot(self) -> dict:
        return {"generic": self.generic, "fast": self.fast,
                "vectorized": self.vectorized,
                "total": self.generic + self.fast + self.vectorized}


#: The process-wide tally (workers report theirs back through the batch
#: driver's chunk results).
counters = IterationCounters()
